"""Shared lightweight types used across substrates and policies."""

from __future__ import annotations

import enum
from typing import NamedTuple


class ExpertId(NamedTuple):
    """Identifies one expert: layer index and expert index within the layer."""

    layer: int
    expert: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"E[{self.layer},{self.expert}]"


class Stage(enum.Enum):
    """LLM serving stage of an inference iteration."""

    PREFILL = "prefill"
    DECODE = "decode"


GiB = 1024**3
MiB = 1024**2
