"""Cluster resilience mechanisms: admission, degradation, breakers, budgets.

The paper's tail-latency claims (TTFT/TPOT, §6) are exactly what overload
and partial failure destroy first, so the cluster driver threads four
classic serving-fleet defenses through its dispatch loop.  This module
holds the mechanisms; the policy knobs live in
:class:`~repro.cluster.config.ResilienceConfig` and the threading in
:class:`~repro.cluster.driver.ClusterDriver`:

- :class:`TokenBucket` — virtual-clock admission control.  Refills are a
  pure function of elapsed virtual time, so admission decisions replay
  byte-for-byte at a fixed seed.
- :class:`DegradationLadder` — maps fleet health (mean queue depth, open
  breaker fraction) to a service rung: *full → prefetch-off → expert
  substitution → shed*.  The SMoE-style nearest-resident substitution
  becomes a measured degradation rung instead of a hidden fault fallback.
- :class:`CircuitBreaker` — per-replica closed/open/half-open state over
  a rolling outcome window; open replicas leave the router's candidate
  set and a half-open replica earns its way back via probe requests.
- :class:`DispatchBudget` — global retry/hedge budgets expressed as a
  fraction of routed requests, so re-dispatch can never storm: the grant
  count is monotone in the routed total, which guarantees
  ``used <= floor(fraction * routed_final)`` at run end.

Everything here is driven exclusively by the driver's virtual clock and
counters — no wall time, no hidden randomness — which is what lets the
validate monitors replay a run's breaker timeline from its logs.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.cluster.config import ResilienceConfig

#: Degradation-ladder rungs, best to worst.
RUNG_FULL = 0
RUNG_NO_PREFETCH = 1
RUNG_SUBSTITUTE = 2
RUNG_SHED = 3

#: Human-readable rung names (reports, demos, docs).
RUNG_NAMES: tuple[str, ...] = (
    "full",
    "prefetch-off",
    "substitution",
    "shed",
)

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


class TokenBucket:
    """Virtual-time token bucket: ``rate`` tokens/second, ``burst`` cap.

    ``allow(now)`` refills from the elapsed virtual time since the last
    query and spends one token when available.  Queries must be issued in
    non-decreasing time order (the driver dispatches in arrival order);
    an out-of-order query simply skips the refill rather than rewinding.
    """

    def __init__(self, rate: float, burst: int) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = float(burst)
        self._last = 0.0

    def allow(self, now: float) -> bool:
        """Spend one token at virtual ``now``; False means rate-limited."""
        if now > self._last:
            self.tokens = min(
                float(self.burst),
                self.tokens + (now - self._last) * self.rate,
            )
            self._last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class DegradationLadder:
    """Fleet health in, service rung out (pure, stateless decision)."""

    def __init__(self, config: ResilienceConfig) -> None:
        self.config = config

    def rung(self, mean_depth: float, open_fraction: float) -> int:
        """The rung for a fleet at ``mean_depth`` outstanding requests.

        Depth thresholds drive the ladder monotonically; losing half or
        more of the fleet to open breakers forces at least the
        substitution rung — surviving replicas are about to absorb the
        displaced load, so blocking on-demand loads would stack stalls
        exactly when capacity is scarcest.
        """
        cfg = self.config
        rung = RUNG_FULL
        if (
            cfg.prefetch_off_depth is not None
            and mean_depth >= cfg.prefetch_off_depth
        ):
            rung = RUNG_NO_PREFETCH
        if (
            cfg.substitution_depth is not None
            and mean_depth >= cfg.substitution_depth
        ):
            rung = RUNG_SUBSTITUTE
        if cfg.shed_depth is not None and mean_depth >= cfg.shed_depth:
            rung = RUNG_SHED
        if open_fraction >= 0.5 and rung < RUNG_SUBSTITUTE:
            rung = RUNG_SUBSTITUTE
        return rung


class CircuitBreaker:
    """Closed/open/half-open breaker over a rolling outcome window.

    State machine (classic three-state breaker):

    - **closed** — outcomes accumulate in a ``window``-sized deque; once
      ``min_samples`` are present and the failure rate reaches
      ``failure_threshold``, the breaker opens (window cleared).
    - **open** — the replica is excluded from routing.  After
      ``open_seconds`` of virtual time the next state query promotes the
      breaker to half-open (the promotion is timestamped at the moment
      the cool-down elapsed, not the query time).
    - **half-open** — dispatches are probes: one success closes the
      breaker, one failure re-opens it for another full cool-down.

    ``on_transition(time, state)`` fires on every state change so the
    driver can journal an auditable breaker timeline.
    """

    def __init__(
        self,
        config: ResilienceConfig,
        on_transition: Callable[[float, str], None] | None = None,
    ) -> None:
        self.config = config
        self.on_transition = on_transition
        self._window: deque[bool] = deque(maxlen=config.breaker_window)
        self._state = BREAKER_CLOSED
        self._opened_at = 0.0

    def _transition(self, state: str, now: float) -> None:
        self._state = state
        if self.on_transition is not None:
            self.on_transition(now, state)

    def state(self, now: float) -> str:
        """Current state at virtual ``now`` (promotes open → half-open)."""
        if self._state == BREAKER_OPEN:
            reopens = self._opened_at + self.config.breaker_open_seconds
            if now >= reopens:
                self._transition(BREAKER_HALF_OPEN, reopens)
        return self._state

    def peek(self, now: float) -> str:
        """The state :meth:`state` would report, without transitioning.

        Pure read for samplers: an elapsed cool-down shows as half-open
        but the promotion (and its ``on_transition`` journal entry) is
        left for the next real :meth:`state` query, so observing the
        breaker never perturbs the run.
        """
        if self._state == BREAKER_OPEN:
            if now >= self._opened_at + self.config.breaker_open_seconds:
                return BREAKER_HALF_OPEN
        return self._state

    def record(self, success: bool, now: float) -> None:
        """Feed one dispatch outcome observed at virtual ``now``."""
        state = self.state(now)
        if state == BREAKER_HALF_OPEN:
            if success:
                self._window.clear()
                self._transition(BREAKER_CLOSED, now)
            else:
                self._opened_at = now
                self._transition(BREAKER_OPEN, now)
            return
        if state == BREAKER_OPEN:  # pragma: no cover - defensive
            return
        self._window.append(success)
        if len(self._window) < self.config.breaker_min_samples:
            return
        failures = sum(1 for ok in self._window if not ok)
        if failures / len(self._window) >= self.config.breaker_failure_threshold:
            self._opened_at = now
            self._window.clear()
            self._transition(BREAKER_OPEN, now)


class DispatchBudget:
    """A global grant budget: at most ``fraction`` of routed requests.

    ``try_take(routed)`` grants while ``used < floor(fraction * routed)``.
    The routed total only grows over a run, so every grant also satisfies
    the final budget — the validate monitors assert exactly
    ``used <= floor(fraction * routed_final)``.
    """

    def __init__(self, fraction: float) -> None:
        self.fraction = fraction
        self.used = 0
        self.denied = 0

    def limit(self, routed: int) -> int:
        """The grant ceiling once ``routed`` requests have been seen."""
        return int(self.fraction * routed)

    def try_take(self, routed: int) -> bool:
        """Take one grant against the current routed total."""
        if self.used < self.limit(routed):
            self.used += 1
            return True
        self.denied += 1
        return False
