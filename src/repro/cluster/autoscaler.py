"""Virtual-clock autoscaler: queue- and tail-latency-driven fleet sizing.

The autoscaler is a pure decision function evaluated at request-dispatch
points on the cluster's shared virtual clock.  It never creates or
destroys replicas itself — it tells the driver to *grow* (add one
replica) or *shrink* (mark the least-loaded replica draining), and the
driver owns the mechanics, including drain-before-kill: a draining
replica receives no new work and is retired only once its last in-flight
request has finished.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.cluster.config import AutoscalerConfig
from repro.cluster.replica import Replica


class Autoscaler:
    """Decide scale-up/scale-down actions from fleet load signals.

    Signals, evaluated over the *routable* fleet (draining and retired
    replicas excluded):

    - mean outstanding requests per replica vs. the configured queue-depth
      thresholds, and
    - optionally, the p95 TTFT over a sliding window of recently finished
      requests.

    Actions respect a cooldown so one burst cannot thrash the fleet.
    """

    def __init__(self, config: AutoscalerConfig) -> None:
        self.config = config
        self._ttfts: deque[float] = deque(maxlen=config.ttft_window)
        self._replica_ttfts: dict[int, deque[float]] = {}
        self._last_action_at: float | None = None

    def observe_ttft(self, ttft: float, replica_id: int | None = None) -> None:
        """Feed one finished request's TTFT into the sliding window(s).

        ``replica_id`` additionally files the sample under that replica's
        private window, which the price-aware drain policy scores."""
        self._ttfts.append(ttft)
        if replica_id is not None:
            window = self._replica_ttfts.get(replica_id)
            if window is None:
                window = deque(maxlen=self.config.ttft_window)
                self._replica_ttfts[replica_id] = window
            window.append(ttft)

    def _in_cooldown(self, now: float) -> bool:
        """Whether a recent action still blocks the next one."""
        return (
            self._last_action_at is not None
            and now - self._last_action_at < self.config.cooldown_seconds
        )

    def window_p95_ttft(self) -> float:
        """p95 TTFT over the recent window (0 when nothing finished yet)."""
        if not self._ttfts:
            return 0.0
        return float(np.percentile(list(self._ttfts), 95))

    def decide(self, now: float, routable: list[Replica]) -> str | None:
        """``"up"``, ``"down"``, or ``None`` for the fleet at ``now``.

        ``routable`` is the set of replicas currently accepting work; its
        size bounds the decision against ``min_replicas``/``max_replicas``.
        """
        if not routable or self._in_cooldown(now):
            return None
        cfg = self.config
        mean_depth = float(
            np.mean([r.outstanding_requests(now) for r in routable])
        )
        tail = self.window_p95_ttft()
        wants_up = mean_depth > cfg.scale_up_queue_depth or (
            cfg.scale_up_p95_ttft_seconds is not None
            and tail > cfg.scale_up_p95_ttft_seconds
        )
        if wants_up and len(routable) < cfg.max_replicas:
            self._last_action_at = now
            return "up"
        if (
            mean_depth < cfg.scale_down_queue_depth
            and len(routable) > cfg.min_replicas
        ):
            self._last_action_at = now
            return "down"
        return None

    def slo_per_dollar(self, replica: Replica) -> float:
        """Observed SLO-goodness of one replica divided by its $/hour.

        Goodness is the fraction of the replica's recent TTFT window at
        or under ``ttft_good_seconds`` (1.0 when the threshold is unset,
        and as an optimistic prior when the replica has served nothing
        yet — a fresh replica should not be first against the wall)."""
        window = self._replica_ttfts.get(replica.replica_id)
        good = self.config.ttft_good_seconds
        if good is None or not window:
            fraction = 1.0
        else:
            fraction = sum(1 for t in window if t <= good) / len(window)
        return fraction / replica.profile.dollars_per_hour

    def pick_drain_target(
        self, now: float, routable: list[Replica]
    ) -> Replica:
        """The replica a scale-down should drain.

        Default policy: least loaded, replica id breaks ties.  Price-aware
        policy: worst observed SLO-per-dollar, spot replicas break ties
        first (they are the capacity you planned to give back), then
        replica id — so a cheap slow box only survives a fast expensive
        one if it is actually delivering latency per dollar."""
        if self.config.price_aware:
            return min(
                routable,
                key=lambda r: (
                    self.slo_per_dollar(r),
                    0 if r.profile.spot else 1,
                    r.replica_id,
                ),
            )
        return min(
            routable,
            key=lambda r: (r.outstanding_tokens(now), r.replica_id),
        )
