"""The cluster driver: N engine replicas on one shared virtual clock.

Requests are dispatched in arrival order (stable for ties).  At each
dispatch point the driver retires fully drained replicas, lets the
autoscaler act, filters the routable fleet (draining replicas and — under
failover — replicas that lost a device are excluded), asks the router for
a placement, and hands the request to the chosen replica's engine, which
serves it to completion on its private timeline.  Eager per-request
serving is sound because replicas are independent machines: a routing
decision at time ``t`` only observes work dispatched at earlier arrival
times, never the future of any replica.

A 1-replica round-robin cluster is *the same machine* as a bare
:func:`~repro.experiments.common.run_system` run: engines come from the
shared :func:`~repro.experiments.common.make_engine` path and requests
flow through the same :meth:`ServingEngine.serve_step` /
:meth:`ServingEngine.finalize_report` calls, so the reports are
byte-identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.config import ClusterSpec
from repro.cluster.metrics import (
    ClusterReport,
    ReplicaSummary,
    ScaleEvent,
)
from repro.cluster.replica import Replica
from repro.cluster.router import make_router
from repro.core.policy import FMoEPolicy
from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.experiments.common import World, make_engine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CLUSTER_LANE, Tracer, replica_lane
from repro.serving.faults import FaultConfig, FaultSchedule, SLOConfig
from repro.serving.metrics import ServingReport
from repro.serving.request import Request


class ClusterDriver:
    """Drives one multi-replica serving simulation to completion."""

    def __init__(
        self,
        world: World,
        system: str,
        spec: ClusterSpec,
        fault_config: FaultConfig | None = None,
        slo: SLOConfig | None = None,
        cache_budget_bytes: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        validate: bool = False,
    ) -> None:
        if spec.shared_store and system != "fmoe":
            raise ConfigError(
                "shared_store only applies to the fmoe system "
                f"(got {system!r})"
            )
        self.world = world
        self.system = system
        self.spec = spec
        self.fault_config = fault_config
        self.slo = slo
        self.cache_budget_bytes = cache_budget_bytes
        self.tracer = tracer
        self.metrics = metrics
        self.validate = validate
        self._suites: dict[int, object] = {}
        self.violations: list = []
        self.router = make_router(spec.router)
        self.autoscaler = (
            Autoscaler(spec.autoscaler) if spec.autoscaler else None
        )
        self._shared_store = self._build_shared_store() if (
            spec.shared_store
        ) else None
        self._store_warmed = False
        # The probe model peeks request embeddings for affinity routing
        # without touching any replica: a session's embedding is a pure
        # function of (model seed, cluster, request seed).
        self._probe = world.fresh_model()
        self.replicas: list[Replica] = []
        self.report = ClusterReport(system=system, router=spec.router)
        for _ in range(spec.replicas):
            self._spawn(now=0.0)

    # ------------------------------------------------------------------ #
    # Fleet construction
    # ------------------------------------------------------------------ #

    def _build_shared_store(self) -> ExpertMapStore:
        """One expert-map store every fMoE replica learns into."""
        config = self.world.config
        model = self.world.model_config
        return ExpertMapStore(
            capacity=config.store_capacity,
            num_layers=model.num_layers,
            num_experts=model.experts_per_layer,
            embedding_dim=model.embedding_dim,
            prefetch_distance=min(
                config.prefetch_distance, model.num_layers
            ),
        )

    def _replica_faults(self, replica_id: int) -> FaultSchedule | None:
        """This replica's fault oracle (None when it lives fault-free)."""
        if self.fault_config is None:
            return None
        if (
            self.spec.fault_replica is not None
            and self.spec.fault_replica != replica_id
        ):
            return None
        return FaultSchedule(self.fault_config)

    def _spawn(self, now: float) -> Replica:
        """Add one replica to the fleet at virtual time ``now``."""
        replica_id = len(self.replicas)
        policy = None
        if self._shared_store is not None:
            config = self.world.config
            policy = FMoEPolicy(
                prefetch_distance=config.prefetch_distance,
                store_capacity=config.store_capacity,
                shared_store=self._shared_store,
            )
        engine = make_engine(
            self.world,
            self.system,
            policy=policy,
            cache_budget_bytes=self.cache_budget_bytes,
            faults=self._replica_faults(replica_id),
            slo=self.slo,
        )
        if self.spec.warm:
            if self._shared_store is None:
                engine.policy.warm(self.world.warm_traces)
            elif not self._store_warmed:
                # A shared store is warmed exactly once: every replica
                # searches the same rows, so re-warming would duplicate.
                engine.policy.warm(self.world.warm_traces)
                self._store_warmed = True
        if self.validate:
            # Every replica engine gets its own invariant monitors; the
            # suite rides the recorder plumbing and only observes, so a
            # validated cluster run stays byte-identical to a plain one.
            from repro.validate.monitors import MonitorSuite

            self._suites[replica_id] = MonitorSuite().bind(engine)
        replica = Replica(replica_id, engine)
        replica.spawned_at = now
        self.replicas.append(replica)
        if self.tracer is not None:
            self.tracer.set_lane_name(
                replica_lane(replica_id), f"replica {replica_id}"
            )
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_cluster_replicas",
                "Replicas currently accepting work",
            ).set(len(self._accepting()))
        return replica

    # ------------------------------------------------------------------ #
    # Fleet state
    # ------------------------------------------------------------------ #

    def _accepting(self) -> list[Replica]:
        """Replicas currently accepting new work."""
        return [
            r for r in self.replicas if not r.draining and not r.retired
        ]

    def _routable(self, now: float) -> list[Replica]:
        """The accepting fleet minus device-loss casualties (failover).

        When every accepting replica has lost a device the filter is
        waived — degraded service beats no service.
        """
        accepting = self._accepting()
        if not self.spec.route_around_device_loss:
            return accepting
        healthy = [r for r in accepting if r.device_failures == 0]
        if healthy and len(healthy) < len(accepting):
            self.report.routed_around_failures += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_cluster_failover_routes_total",
                    "Routing decisions that excluded a failed replica",
                ).inc()
        return healthy or accepting

    def _record_scale(
        self, now: float, action: str, replica: Replica, outstanding: int
    ) -> None:
        """Append one scale event (and mirror it to trace/metrics)."""
        self.report.scale_events.append(
            ScaleEvent(now, action, replica.replica_id, outstanding)
        )
        if self.tracer is not None:
            self.tracer.instant(
                f"scale:{action}",
                now,
                tid=CLUSTER_LANE,
                category="cluster",
                replica=replica.replica_id,
                outstanding=outstanding,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_scale_actions_total",
                "Autoscaler actions by kind",
            ).inc(action=action)
            self.metrics.gauge(
                "repro_cluster_replicas",
                "Replicas currently accepting work",
            ).set(len(self._accepting()))

    def _retire_drained(self, now: float) -> None:
        """Retire draining replicas whose last in-flight work finished."""
        for replica in self.replicas:
            if replica.draining and not replica.retired:
                outstanding = replica.outstanding_requests(now)
                if outstanding == 0:
                    replica.retired = True
                    self._record_scale(now, "retire", replica, outstanding)

    def _autoscale(self, now: float) -> None:
        """Apply at most one autoscaler action at this dispatch point."""
        if self.autoscaler is None:
            return
        accepting = self._accepting()
        action = self.autoscaler.decide(now, accepting)
        if action == "up":
            replica = self._spawn(now)
            self.report.scale_ups += 1
            self._record_scale(now, "up", replica, 0)
        elif action == "down":
            target = self.autoscaler.pick_drain_target(now, accepting)
            target.draining = True
            self.report.scale_downs += 1
            self._record_scale(
                now, "drain", target, target.outstanding_requests(now)
            )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _embedding(self, request: Request):
        """Peek the request's embedding via the probe model."""
        session = self._probe.start_session(
            request.cluster,
            request.input_tokens,
            request.output_tokens,
            seed=request.seed,
        )
        return session.embedding

    def _dispatch(self, request: Request) -> None:
        """Route and serve one request at its arrival time."""
        now = request.arrival_time
        self._retire_drained(now)
        self._autoscale(now)
        routable = self._routable(now)
        decision = self.router.select(
            request, self._embedding(request), routable, now
        )
        replica = decision.replica
        self.report.routed += 1
        if decision.reason == "affinity":
            self.report.affinity_routed += 1
        elif decision.reason == "fallback":
            self.report.fallback_routed += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_routed_total",
                "Requests dispatched, by replica and decision reason",
            ).inc(replica=str(replica.replica_id), reason=decision.reason)
        if self.tracer is not None:
            self.tracer.instant(
                "route",
                now,
                tid=CLUSTER_LANE,
                category="cluster",
                request=request.request_id,
                replica=replica.replica_id,
                reason=decision.reason,
                score=round(decision.score, 4),
            )
        finish = replica.serve(request)
        if finish is None:
            return
        served = replica.report.requests[-1]
        if self.tracer is not None:
            self.tracer.complete(
                f"request {request.request_id}",
                served.start_time,
                served.finish_time,
                tid=replica_lane(replica.replica_id),
                category="cluster",
                ttft=round(served.ttft, 6),
            )
        if self.autoscaler is not None:
            self.autoscaler.observe_ttft(served.ttft)

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #

    def run(self, requests: Sequence[Request]) -> ClusterReport:
        """Serve ``requests`` across the fleet; returns the full report."""
        # Stable sort: ties keep the caller's order, so a 1-replica
        # cluster serves exactly the sequence a bare engine run would.
        ordered = sorted(requests, key=lambda r: r.arrival_time)
        tracing = self.tracer is not None and bool(ordered)
        if tracing:
            self.tracer.set_lane_name(CLUSTER_LANE, "cluster")
            self.tracer.begin(
                "cluster",
                ordered[0].arrival_time,
                tid=CLUSTER_LANE,
                category="cluster",
                router=self.spec.router,
            )
        for request in ordered:
            self._dispatch(request)
        self._finalize()
        if self.validate and self.violations:
            from repro.errors import ValidationError

            preview = "\n".join(str(v) for v in self.violations[:5])
            raise ValidationError(
                f"cluster run violated {len(self.violations)} "
                f"invariant(s)\n{preview}"
            )
        if tracing:
            end_ts = max(
                [ordered[0].arrival_time]
                + [r.engine.now for r in self.replicas]
            )
            self.tracer.end(
                end_ts, tid=CLUSTER_LANE, replicas=len(self.replicas)
            )
        return self.report

    def _finalize(self) -> None:
        """Fold per-replica reports into summaries and the aggregate."""
        aggregate = ServingReport()
        names = set()
        for replica in self.replicas:
            replica_report = replica.finalize()
            if replica_report.policy_name:
                names.add(replica_report.policy_name)
            self.report.replica_reports.append(replica_report)
            self.report.replicas.append(
                ReplicaSummary(
                    replica_id=replica.replica_id,
                    assigned=replica.assigned,
                    served=len(replica_report.requests),
                    shed_requests=replica_report.shed_requests,
                    hit_rate=replica_report.hit_rate,
                    mean_ttft_seconds=replica_report.mean_ttft(),
                    p95_e2e_seconds=replica_report.percentile_latency(95),
                    device_failures=replica_report.device_failures,
                    draining=replica.draining,
                    retired=replica.retired,
                    spawned_at=replica.spawned_at,
                )
            )
            # Each replica engine owns its own sink: drop counters add.
            aggregate.absorb(replica_report, distinct_sinks=True)
        if len(names) == 1:
            aggregate.policy_name = names.pop()
        self.report.aggregate = aggregate
        self.report.final_replicas = len(self._accepting())
        if self.validate:
            from repro.validate.monitors import check_cluster_report

            for replica in self.replicas:
                suite = self._suites.get(replica.replica_id)
                if suite is not None:
                    self.violations.extend(
                        suite.finish(
                            replica.report, admitted=replica.assigned
                        )
                    )
            self.violations.extend(check_cluster_report(self.report))


def run_cluster(
    world: World,
    system: str,
    spec: ClusterSpec,
    requests: Sequence[Request] | None = None,
    fault_config: FaultConfig | None = None,
    slo: SLOConfig | None = None,
    cache_budget_bytes: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    validate: bool = False,
) -> ClusterReport:
    """Serve a request trace on a simulated multi-replica cluster.

    ``requests`` defaults to the world's test split.  ``fault_config`` is
    instantiated into an independent (pure, seeded) fault oracle per
    replica — or only on ``spec.fault_replica`` when set.  ``tracer`` and
    ``metrics`` attach cluster-level observability (routing instants and
    scale events on the cluster lane, per-replica serve spans, and
    ``repro_cluster_*`` instruments).  ``validate`` attaches invariant
    monitors to every replica engine plus fleet-level conservation
    checks, raising :class:`~repro.errors.ValidationError` on any breach
    (the monitors only observe — results are unchanged).
    """
    driver = ClusterDriver(
        world,
        system,
        spec,
        fault_config=fault_config,
        slo=slo,
        cache_budget_bytes=cache_budget_bytes,
        tracer=tracer,
        metrics=metrics,
        validate=validate,
    )
    return driver.run(
        list(requests) if requests is not None else world.test_requests
    )
