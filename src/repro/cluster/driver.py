"""The cluster driver: N engine replicas on one shared virtual clock.

Requests are dispatched in arrival order (stable for ties).  At each
dispatch point the driver retires fully drained replicas, lets the
autoscaler act, filters the routable fleet (draining replicas and — under
failover — replicas that lost a device are excluded), asks the router for
a placement, and hands the request to the chosen replica's engine, which
serves it to completion on its private timeline.  Eager per-request
serving is sound because replicas are independent machines: a routing
decision at time ``t`` only observes work dispatched at earlier arrival
times, never the future of any replica.

A 1-replica round-robin cluster is *the same machine* as a bare
:func:`~repro.experiments.common.run_system` run: engines come from the
shared :func:`~repro.experiments.common.make_engine` path and requests
flow through the same :meth:`ServingEngine.serve_step` /
:meth:`ServingEngine.finalize_report` calls, so the reports are
byte-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import replace
from typing import Iterable, Sequence

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.config import ClusterSpec
from repro.cluster.metrics import (
    BreakerTransition,
    ClusterReport,
    DispatchRecord,
    FleetReport,
    RecoveryEvent,
    ReplicaSummary,
    RequestOutcome,
    ResilienceReport,
    ScaleEvent,
    TenancyReport,
    TenantReport,
    TierReport,
    _percentile,
)
from repro.cluster.placement import build_plan, demand_from_traces
from repro.cluster.replica import Replica
from repro.cluster.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    RUNG_FULL,
    RUNG_NAMES,
    RUNG_NO_PREFETCH,
    RUNG_SHED,
    RUNG_SUBSTITUTE,
    CircuitBreaker,
    DegradationLadder,
    DispatchBudget,
    TokenBucket,
)
from repro.cluster.router import make_router, pick_secondary
from repro.core.policy import FMoEPolicy
from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.experiments.common import World, make_engine
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CLUSTER_LANE, Tracer, replica_lane
from repro.serving.faults import (
    ClusterFaultConfig,
    FaultConfig,
    FaultSchedule,
    ReplicaCrash,
    SLOConfig,
)
from repro.serving.metrics import ServingReport
from repro.serving.request import Request

#: Breaker state → numeric gauge value (closed < half-open < open).
_BREAKER_STATE_VALUES = {
    BREAKER_CLOSED: 0.0,
    BREAKER_HALF_OPEN: 1.0,
    BREAKER_OPEN: 2.0,
}

#: Outcome ``reason`` → :class:`ResilienceReport` shed-counter field.
_SHED_FIELDS = {
    "admission": "shed_admission",
    "ladder": "shed_ladder",
    "breaker": "shed_breaker",
    "no-capacity": "shed_no_capacity",
    "replica": "shed_replica",
}


class ClusterDriver:
    """Drives one multi-replica serving simulation to completion."""

    def __init__(
        self,
        world: World,
        system: str,
        spec: ClusterSpec,
        fault_config: FaultConfig | None = None,
        cluster_faults: ClusterFaultConfig | None = None,
        slo: SLOConfig | None = None,
        cache_budget_bytes: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        validate: bool = False,
        journeys=None,
        fleet_series=None,
        slo_tracker=None,
    ) -> None:
        if spec.shared_store and system != "fmoe":
            raise ConfigError(
                "shared_store only applies to the fmoe system "
                f"(got {system!r})"
            )
        self.world = world
        self.system = system
        self.spec = spec
        self.fault_config = fault_config
        self.slo = slo
        self.cache_budget_bytes = cache_budget_bytes
        self.tracer = tracer
        self.metrics = metrics
        self.validate = validate
        # Observability-plane riders (all pure observers of the virtual
        # clock: attaching any of them leaves the report byte-identical).
        self.journeys = journeys
        self.fleet_series = fleet_series
        self.slo_tracker = slo_tracker
        self._suites: dict[int, object] = {}
        self.violations: list = []
        # Heterogeneous-fleet mode: per-replica profiles and/or an expert
        # placement plan.  When both are absent every branch below takes
        # the legacy path and the run stays byte-identical.
        self.fleet_active = (
            spec.profiles is not None or spec.placement is not None
        )
        self._base_budget = (
            cache_budget_bytes
            if cache_budget_bytes is not None
            else world.config.resolve_budget(world.model_config)
        )
        self.plan = None
        demand_map = None
        if spec.placement is not None or spec.router == "cost-aware":
            demands = demand_from_traces(world.warm_traces)
            demand_map = {
                d.cluster: tuple(e for e, _ in d.weights) for d in demands
            }
            if spec.placement is not None:
                self.plan = build_plan(
                    spec.placement,
                    world.warm_traces,
                    spec,
                    world.model_config,
                    world.config.hardware,
                    self._base_budget,
                )
        self.router = make_router(spec.router, demand=demand_map)
        self.autoscaler = (
            Autoscaler(spec.autoscaler) if spec.autoscaler else None
        )
        self._shared_store = self._build_shared_store() if (
            spec.shared_store
        ) else None
        self._store_warmed = False
        # The probe model peeks request embeddings for affinity routing
        # without touching any replica: a session's embedding is a pure
        # function of (model seed, cluster, request seed).
        self._probe = world.fresh_model()
        self.replicas: list[Replica] = []
        self.report = ClusterReport(system=system, router=spec.router)
        if self.fleet_active:
            fleet = FleetReport(placement=spec.placement)
            if self.plan is not None:
                fleet.placement_cost = self.plan.cost
                fleet.placement_seed_cost = self.plan.seed_cost
                fleet.residency_sizes = [
                    len(r) for r in self.plan.residency
                ]
                fleet.unplaced_experts = len(self.plan.unplaced)
            self.report.fleet = fleet
        # Resilience layer.  ``tracked`` turns on outcome accounting and
        # the resilient dispatch path; it engages when either resilience
        # features or cluster-scope faults are present, so a no-resilience
        # baseline under a fault schedule still produces comparable
        # request-level outcomes.  When both are absent the driver takes
        # exactly the legacy code path (byte-identical reports).
        self.resilience = spec.resilience
        self.cluster_faults = (
            cluster_faults
            if cluster_faults is not None and not cluster_faults.is_zero
            else None
        )
        self.tracked = (
            self.resilience is not None or self.cluster_faults is not None
        )
        self._seq = 0
        self._fault_order = 0
        self._last_rung = RUNG_FULL
        self._outcomes: dict[int, RequestOutcome] = {}
        self._tenancy_tags: dict[int, tuple[str, str]] = {}
        self._breakers: dict[int, CircuitBreaker] = {}
        self._fault_events: list[tuple[float, int, str, ReplicaCrash]] = []
        self._bucket: TokenBucket | None = None
        self._ladder: DegradationLadder | None = None
        self._retry_budget = DispatchBudget(0.0)
        self._hedge_budget = DispatchBudget(0.0)
        if self.tracked:
            self.report.resilience = ResilienceReport()
            cfg = self.resilience
            if cfg is not None:
                if cfg.admission_rate is not None:
                    self._bucket = TokenBucket(
                        cfg.admission_rate, cfg.admission_burst
                    )
                self._ladder = DegradationLadder(cfg)
                self._retry_budget = DispatchBudget(
                    cfg.retry_budget_fraction
                )
                self._hedge_budget = DispatchBudget(
                    cfg.hedge_budget_fraction
                )
            if self.cluster_faults is not None:
                for crash in self.cluster_faults.expand_crashes():
                    self._fault_order += 1
                    heapq.heappush(
                        self._fault_events,
                        (crash.time, self._fault_order, "crash", crash),
                    )
        for _ in range(spec.replicas):
            self._spawn(now=0.0)

    # ------------------------------------------------------------------ #
    # Fleet construction
    # ------------------------------------------------------------------ #

    def _build_shared_store(self) -> ExpertMapStore:
        """One expert-map store every fMoE replica learns into."""
        config = self.world.config
        model = self.world.model_config
        return ExpertMapStore(
            capacity=config.store_capacity,
            num_layers=model.num_layers,
            num_experts=model.experts_per_layer,
            embedding_dim=model.embedding_dim,
            prefetch_distance=min(
                config.prefetch_distance, model.num_layers
            ),
        )

    def _replica_faults(self, replica_id: int) -> FaultSchedule | None:
        """This replica's fault oracle (None when it lives fault-free)."""
        if self.fault_config is None:
            return None
        if (
            self.spec.fault_replica is not None
            and self.spec.fault_replica != replica_id
        ):
            return None
        return FaultSchedule(self.fault_config)

    def _spawn(self, now: float, restart: bool = False) -> Replica:
        """Add one replica to the fleet at virtual time ``now``.

        ``restart`` spawns a crash replacement: it rejoins *cold* — no
        warm traces, an empty expert pool — and must measurably re-warm,
        except that under ``restart_warm_from_store`` a shared-store
        fleet lets the replacement search the surviving store (the store
        outlives its replicas, which is the point of sharing it).
        """
        replica_id = len(self.replicas)
        policy = None
        use_shared = self._shared_store is not None
        if restart:
            cfg = self.resilience
            use_shared = use_shared and (
                cfg is not None and cfg.restart_warm_from_store
            )
        if use_shared:
            config = self.world.config
            policy = FMoEPolicy(
                prefetch_distance=config.prefetch_distance,
                store_capacity=config.store_capacity,
                shared_store=self._shared_store,
            )
        profile = self.spec.profile_for(replica_id)
        replica_hardware = None
        replica_budget = self.cache_budget_bytes
        if self.fleet_active:
            # Each replica derives its own latency constants and expert
            # cache from its profile.  A default profile reproduces the
            # base hardware and budget exactly (x * 1.0 == x), which is
            # what keeps homogeneous fleets byte-identical to legacy.
            replica_hardware = profile.apply(self.world.config.hardware)
            # Same floor resolve_budget applies: the pool needs at least
            # one expert per GPU even on a VRAM-scaled-down replica.
            model = self.world.model_config
            replica_budget = max(
                profile.scale_budget(self._base_budget),
                replica_hardware.num_gpus * model.expert_bytes,
            )
        engine = make_engine(
            self.world,
            self.system,
            policy=policy,
            cache_budget_bytes=replica_budget,
            faults=self._replica_faults(replica_id),
            slo=self.slo,
            hardware=replica_hardware,
        )
        if self.spec.warm and not restart:
            if self._shared_store is None:
                engine.policy.warm(self.world.warm_traces)
            elif not self._store_warmed:
                # A shared store is warmed exactly once: every replica
                # searches the same rows, so re-warming would duplicate.
                engine.policy.warm(self.world.warm_traces)
                self._store_warmed = True
        preloaded = 0
        if self.plan is not None:
            residency = self.plan.residency[
                replica_id % len(self.plan.residency)
            ]
            preloaded = len(engine.pool.preload_fit(residency))
        if self.journeys is not None:
            # Journey capture rides the recorder plumbing ahead of any
            # monitor suite (which tees with whatever is attached).
            engine.set_recorder(self.journeys.replica_sink(replica_id))
        if self.validate:
            # Every replica engine gets its own invariant monitors; the
            # suite rides the recorder plumbing and only observes, so a
            # validated cluster run stays byte-identical to a plain one.
            from repro.validate.monitors import MonitorSuite

            self._suites[replica_id] = MonitorSuite().bind(engine)
        replica = Replica(
            replica_id,
            engine,
            profile=profile if self.fleet_active else None,
        )
        replica.spawned_at = now
        self.replicas.append(replica)
        if self.report.fleet is not None:
            self.report.fleet.profiles.append(
                {
                    "replica_id": replica_id,
                    "profile": profile.name,
                    "dollars_per_hour": profile.dollars_per_hour,
                    "spot": profile.spot,
                    "preloaded": preloaded,
                }
            )
            self.report.fleet.dollars_per_hour += profile.dollars_per_hour
        cfg = self.resilience
        if cfg is not None and cfg.breakers_enabled:
            self._breakers[replica_id] = CircuitBreaker(
                cfg,
                on_transition=lambda time, state, rid=replica_id: (
                    self._note_breaker(rid, time, state)
                ),
            )
        if self.tracer is not None:
            self.tracer.set_lane_name(
                replica_lane(replica_id), f"replica {replica_id}"
            )
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_cluster_replicas",
                "Replicas currently accepting work",
            ).set(len(self._accepting()))
        return replica

    # ------------------------------------------------------------------ #
    # Fleet state
    # ------------------------------------------------------------------ #

    def _accepting(self) -> list[Replica]:
        """Replicas currently accepting new work."""
        return [
            r for r in self.replicas if not r.draining and not r.retired
        ]

    def _routable(self, now: float) -> list[Replica]:
        """The accepting fleet minus device-loss casualties (failover).

        When every accepting replica has lost a device the filter is
        waived — degraded service beats no service.
        """
        accepting = self._accepting()
        if not self.spec.route_around_device_loss:
            return accepting
        healthy = [r for r in accepting if r.device_failures == 0]
        if healthy and len(healthy) < len(accepting):
            self.report.routed_around_failures += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_cluster_failover_routes_total",
                    "Routing decisions that excluded a failed replica",
                ).inc()
        return healthy or accepting

    def _record_scale(
        self, now: float, action: str, replica: Replica, outstanding: int
    ) -> None:
        """Append one scale event (and mirror it to trace/metrics)."""
        self.report.scale_events.append(
            ScaleEvent(now, action, replica.replica_id, outstanding)
        )
        if self.tracer is not None:
            self.tracer.instant(
                f"scale:{action}",
                now,
                tid=CLUSTER_LANE,
                category="cluster",
                replica=replica.replica_id,
                outstanding=outstanding,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_scale_actions_total",
                "Autoscaler actions by kind",
            ).inc(action=action)
            self.metrics.gauge(
                "repro_cluster_replicas",
                "Replicas currently accepting work",
            ).set(len(self._accepting()))

    def _retire_drained(self, now: float) -> None:
        """Retire draining replicas whose last in-flight work finished."""
        for replica in self.replicas:
            if replica.draining and not replica.retired:
                outstanding = replica.outstanding_requests(now)
                if outstanding == 0:
                    replica.retired = True
                    self._record_scale(now, "retire", replica, outstanding)

    def _autoscale(self, now: float) -> None:
        """Apply at most one autoscaler action at this dispatch point."""
        if self.autoscaler is None:
            return
        accepting = self._accepting()
        action = self.autoscaler.decide(now, accepting)
        if action == "up":
            replica = self._spawn(now)
            self.report.scale_ups += 1
            self._record_scale(now, "up", replica, 0)
        elif action == "down":
            target = self.autoscaler.pick_drain_target(now, accepting)
            target.draining = True
            self.report.scale_downs += 1
            self._record_scale(
                now, "drain", target, target.outstanding_requests(now)
            )

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #

    def _embedding(self, request: Request):
        """Peek the request's embedding via the probe model."""
        session = self._probe.start_session(
            request.cluster,
            request.input_tokens,
            request.output_tokens,
            seed=request.seed,
        )
        return session.embedding

    def _dispatch(self, request: Request) -> None:
        """Route and serve one request at its arrival time."""
        if self.fleet_series is not None:
            self.fleet_series.maybe_sample(request.arrival_time, self)
        if self.tracked:
            self._dispatch_resilient(request)
            return
        now = request.arrival_time
        self._retire_drained(now)
        self._autoscale(now)
        if self.journeys is not None:
            self.journeys.begin_request(request.request_id, now)
        routable = self._routable(now)
        decision = self.router.select(
            request, self._embedding(request), routable, now
        )
        replica = decision.replica
        self.report.routed += 1
        if decision.reason == "affinity":
            self.report.affinity_routed += 1
        elif decision.reason == "fallback":
            self.report.fallback_routed += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_routed_total",
                "Requests dispatched, by replica and decision reason",
            ).inc(replica=str(replica.replica_id), reason=decision.reason)
        if self.tracer is not None:
            self.tracer.instant(
                "route",
                now,
                tid=CLUSTER_LANE,
                category="cluster",
                request=request.request_id,
                replica=replica.replica_id,
                reason=decision.reason,
                score=round(decision.score, 4),
            )
        if self.journeys is not None:
            self.journeys.begin_attempt(
                request.request_id, "primary", replica.replica_id, now
            )
        finish = replica.serve(request)
        if finish is None:
            if self.journeys is not None:
                self.journeys.end_attempt("shed")
                self.journeys.resolve_shed(request.request_id, "replica")
            return
        served = replica.report.requests[-1]
        if self.journeys is not None:
            self.journeys.end_attempt("served", served)
            self.journeys.resolve_served(
                request.request_id,
                replica.replica_id,
                served.e2e_latency,
                served.ttft,
                served.finish_time,
            )
        if self.tracer is not None:
            self.tracer.complete(
                f"request {request.request_id}",
                served.start_time,
                served.finish_time,
                tid=replica_lane(replica.replica_id),
                category="cluster",
                ttft=round(served.ttft, 6),
            )
        if self.autoscaler is not None:
            self.autoscaler.observe_ttft(served.ttft, replica.replica_id)

    # ------------------------------------------------------------------ #
    # Resilient dispatch
    # ------------------------------------------------------------------ #

    def _note_breaker(self, replica_id: int, time: float, state: str) -> None:
        """Journal one breaker transition (sequenced against dispatches)."""
        res = self.report.resilience
        if state == BREAKER_OPEN:
            res.breaker_opens += 1
        elif state == "closed":
            res.breaker_closes += 1
        self._seq += 1
        self.report.breaker_transitions.append(
            BreakerTransition(self._seq, time, replica_id, state)
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_breaker_transitions_total",
                "Circuit-breaker state changes by replica and new state",
            ).inc(replica=str(replica_id), state=state)
            self.metrics.gauge(
                "repro_cluster_breaker_state",
                "Circuit-breaker state by replica "
                "(0 closed, 1 half-open, 2 open)",
            ).set(_BREAKER_STATE_VALUES[state], replica=str(replica_id))

    def _apply_due_cluster_faults(self, now: float) -> None:
        """Apply scripted crashes/restarts whose virtual time has come."""
        while self._fault_events and self._fault_events[0][0] <= now:
            time, _, kind, crash = heapq.heappop(self._fault_events)
            if kind == "crash":
                self._apply_crash(time, crash)
            else:
                self._apply_restart(time, crash)

    def _apply_crash(self, time: float, crash: ReplicaCrash) -> None:
        """Kill one replica; failover re-dispatch of its in-flight work."""
        if crash.replica >= len(self.replicas):
            return
        replica = self.replicas[crash.replica]
        if replica.retired or replica.crashed:
            return
        lost = replica.crash(time)
        res = self.report.resilience
        res.crashes += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_crashes_total",
                "Replica crashes applied from the fault script",
            ).inc(replica=str(replica.replica_id))
        self._record_scale(time, "crash", replica, len(lost))
        if crash.restart_delay is not None:
            self._fault_order += 1
            heapq.heappush(
                self._fault_events,
                (
                    time + crash.restart_delay,
                    self._fault_order,
                    "restart",
                    crash,
                ),
            )
        for request in lost:
            outcome = self._outcomes.get(request.request_id)
            if (
                outcome is None
                or outcome.outcome != "served"
                or outcome.replica_id != replica.replica_id
            ):
                # The defining serve lives elsewhere (hedge winner on a
                # surviving replica) — losing this copy costs nothing.
                continue
            res.lost_in_flight += 1
            self._redispatch_lost(request, time, replica.replica_id)

    def _apply_restart(self, time: float, crash: ReplicaCrash) -> None:
        """A crashed replica's replacement rejoins the fleet (cold)."""
        res = self.report.resilience
        replica = self._spawn(time, restart=True)
        res.restarts += 1
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_restarts_total",
                "Replacement replicas rejoining after a crash",
            ).inc(replica=str(replica.replica_id))
        restored = 0
        if replica.expert_map_store() is self._shared_store and (
            self._shared_store is not None
        ):
            restored = len(self._shared_store)
        self.report.recovery_events.append(
            RecoveryEvent(time, crash.replica, replica.replica_id, restored)
        )
        self._record_scale(time, "restart", replica, 0)

    def _redispatch_lost(
        self, request: Request, crash_time: float, crashed_id: int
    ) -> None:
        """Fail a crash-lost request over, retry budget permitting."""
        cfg = self.resilience
        res = self.report.resilience
        outcome = self._outcomes[request.request_id]
        outcome.outcome = "pending"
        outcome.replica_id = None
        outcome.latency = None
        outcome.ttft = None
        if (
            cfg is not None
            and outcome.attempts < cfg.max_attempts_per_request
            and self._retry_budget.try_take(self.report.routed)
        ):
            retry = replace(request, arrival_time=crash_time)
            self._serve_resilient(
                retry,
                outcome,
                self._current_rung(crash_time),
                excluded={crashed_id},
            )
            return
        if cfg is not None and outcome.attempts < cfg.max_attempts_per_request:
            res.retry_budget_exhausted += 1
        outcome.outcome = "failed"
        outcome.reason = "crash"
        outcome.replica_id = crashed_id
        res.failed += 1
        if self.journeys is not None:
            self.journeys.resolve_failed(request.request_id, "crash")

    def _current_rung(self, now: float) -> int:
        """The degradation-ladder rung for the fleet's health at ``now``."""
        if self._ladder is None:
            return RUNG_FULL
        accepting = self._accepting()
        if not accepting:
            return RUNG_FULL
        depth = sum(
            r.outstanding_requests(now) for r in accepting
        ) / len(accepting)
        open_fraction = 0.0
        if self._breakers:
            open_count = sum(
                1
                for r in accepting
                if self._breakers[r.replica_id].state(now) == BREAKER_OPEN
            )
            open_fraction = open_count / len(accepting)
        return self._ladder.rung(depth, open_fraction)

    def breaker_for(self, replica_id: int) -> CircuitBreaker | None:
        """This replica's circuit breaker (None when breakers are off)."""
        return self._breakers.get(replica_id)

    def peek_rung(self, now: float) -> int:
        """:meth:`_current_rung` as a pure read (for samplers).

        Uses :meth:`CircuitBreaker.peek` so observing the fleet never
        promotes a breaker (promotions journal a sequenced transition,
        which would change the report).
        """
        if self._ladder is None:
            return RUNG_FULL
        accepting = self._accepting()
        if not accepting:
            return RUNG_FULL
        depth = sum(
            r.outstanding_requests(now) for r in accepting
        ) / len(accepting)
        open_fraction = 0.0
        if self._breakers:
            open_count = sum(
                1
                for r in accepting
                if self._breakers[r.replica_id].peek(now) == BREAKER_OPEN
            )
            open_fraction = open_count / len(accepting)
        return self._ladder.rung(depth, open_fraction)

    def _shed_outcome(self, outcome: RequestOutcome, reason: str) -> None:
        """Resolve one outcome as shed and bump the matching counter."""
        res = self.report.resilience
        outcome.outcome = "shed"
        outcome.reason = reason
        field = _SHED_FIELDS[reason]
        setattr(res, field, getattr(res, field) + 1)
        if self.journeys is not None:
            self.journeys.resolve_shed(outcome.request_id, reason)
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_resilience_shed_total",
                "Requests shed by the resilience layer, by reason",
            ).inc(reason=reason)

    def _admission_bypass(self, request: Request) -> bool:
        """Whether this request's priority clears the shed/admission gates.

        The priority-scheduling seam: premium tiers map to priorities at
        or above ``priority_bypass_level``, so under overload the ladder
        and token bucket shed batch traffic first.  (The
        ``priority-inversion`` validation mutant overrides exactly this
        decision; the tier-conservation monitor must catch it.)
        """
        cfg = self.resilience
        return (
            cfg is not None
            and cfg.priority_bypass_level is not None
            and request.priority >= cfg.priority_bypass_level
        )

    def _dispatch_resilient(self, request: Request) -> None:
        """The tracked dispatch path: faults, admission, retries, hedges."""
        now = request.arrival_time
        self._apply_due_cluster_faults(now)
        self._retire_drained(now)
        self._autoscale(now)
        res = self.report.resilience
        self.report.routed += 1
        res.admitted += 1
        rung = self._current_rung(now)
        res.rung_counts[rung] = res.rung_counts.get(rung, 0) + 1
        if self.metrics is not None:
            self.metrics.gauge(
                "repro_cluster_degradation_rung",
                "Degradation-ladder rung in force at the last admission",
            ).set(float(rung))
            if rung != self._last_rung:
                self.metrics.counter(
                    "repro_cluster_rung_changes_total",
                    "Degradation-ladder rung changes, by rung entered",
                ).inc(rung=RUNG_NAMES[rung])
        self._last_rung = rung
        outcome = RequestOutcome(request_id=request.request_id, arrival=now)
        outcome.rung = rung
        self._outcomes[request.request_id] = outcome
        if request.tenant or request.tier:
            self._tenancy_tags[request.request_id] = (
                request.tenant,
                request.tier,
            )
        if self.journeys is not None:
            self.journeys.begin_request(request.request_id, now, rung)
        bypass = self._admission_bypass(request)
        if rung >= RUNG_SHED and not bypass:
            self._shed_outcome(outcome, "ladder")
            return
        if (
            self._bucket is not None
            and not bypass
            and not self._bucket.allow(now)
        ):
            self._shed_outcome(outcome, "admission")
            return
        self._serve_resilient(request, outcome, rung)

    def _serve_resilient(
        self,
        request: Request,
        outcome: RequestOutcome,
        rung: int,
        excluded: set[int] | None = None,
    ) -> None:
        """Attempt chain for one admitted request (primary + retries)."""
        cfg = self.resilience
        res = self.report.resilience
        excluded = set(excluded) if excluded else set()
        max_attempts = cfg.max_attempts_per_request if cfg is not None else 1
        while True:
            kind = "primary" if outcome.attempts == 0 else "retry"
            status, replica, served = self._attempt(
                request, excluded, kind, rung
            )
            if status in ("shed", "served"):
                outcome.attempts += 1
            if status == "no-candidates":
                self._shed_outcome(outcome, "no-capacity")
                return
            if status == "breaker":
                self._shed_outcome(outcome, "breaker")
                return
            if status == "shed":
                excluded.add(replica.replica_id)
                if (
                    cfg is not None
                    and outcome.attempts < max_attempts
                    and self._retry_budget.try_take(self.report.routed)
                ):
                    continue
                if cfg is not None and outcome.attempts < max_attempts:
                    res.retry_budget_exhausted += 1
                self._shed_outcome(outcome, "replica")
                return
            self._finish_served(request, outcome, replica, served, rung)
            return

    def _attempt(
        self,
        request: Request,
        excluded: set[int],
        kind: str,
        rung: int,
    ):
        """One dispatch: pick a replica, serve, feed its breaker.

        Returns ``(status, replica, metrics)`` where status is
        ``served`` / ``shed`` (replica queue-delay shed) /
        ``breaker`` (every live candidate's breaker is open) /
        ``no-candidates`` (no live replica, or no hedge target).
        """
        now = request.arrival_time
        cfg = self.resilience
        res = self.report.resilience
        candidates = self._routable(now)
        if not candidates:
            return ("no-candidates", None, None)
        if self._breakers:
            closed = [
                r
                for r in candidates
                if self._breakers[r.replica_id].state(now) != BREAKER_OPEN
            ]
            if len(closed) < len(candidates):
                res.breaker_filtered_routes += 1
            if not closed:
                # Never dispatch to an open breaker — shedding here is
                # what keeps the invariant absolute.
                return ("breaker", None, None)
            candidates = closed
        if kind == "hedge":
            primary_id = next(iter(excluded))
            replica = pick_secondary(candidates, primary_id, now)
            if replica is None:
                return ("no-candidates", None, None)
            reason, score = "hedge", 0.0
        else:
            pool = [
                r for r in candidates if r.replica_id not in excluded
            ] or candidates
            decision = self.router.select(
                request, self._embedding(request), pool, now
            )
            replica, reason, score = (
                decision.replica,
                decision.reason,
                decision.score,
            )
        breaker = self._breakers.get(replica.replica_id)
        probe = breaker is not None and breaker.state(now) == BREAKER_HALF_OPEN
        if probe:
            res.breaker_probes += 1
        if kind == "primary":
            res.primary_dispatches += 1
            if reason == "affinity":
                self.report.affinity_routed += 1
            elif reason == "fallback":
                self.report.fallback_routed += 1
        elif kind == "retry":
            res.retry_dispatches += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "repro_cluster_retry_dispatches_total",
                    "Retry dispatches after sheds or crash failover, "
                    "by replica",
                ).inc(replica=str(replica.replica_id))
        self._seq += 1
        self.report.dispatch_log.append(
            DispatchRecord(
                self._seq,
                now,
                request.request_id,
                replica.replica_id,
                kind,
                probe,
            )
        )
        if self.metrics is not None:
            self.metrics.counter(
                "repro_cluster_routed_total",
                "Requests dispatched, by replica and decision reason",
            ).inc(replica=str(replica.replica_id), reason=reason)
        if self.tracer is not None:
            self.tracer.instant(
                "route",
                now,
                tid=CLUSTER_LANE,
                category="cluster",
                request=request.request_id,
                replica=replica.replica_id,
                reason=reason,
                kind=kind,
                score=round(score, 4),
            )
        serve_request = request
        if self.cluster_faults is not None:
            link = self.cluster_faults.link_delay(replica.replica_id, now)
            if link > 0.0:
                res.link_delays += 1
                res.link_delay_seconds += link
                serve_request = replace(
                    request, arrival_time=request.arrival_time + link
                )
        engine = replica.engine
        saved = (engine.prefetch_enabled, engine.force_substitution)
        if cfg is not None:
            if rung >= RUNG_NO_PREFETCH:
                engine.prefetch_enabled = False
            if rung >= RUNG_SUBSTITUTE:
                engine.force_substitution = True
        if self.journeys is not None:
            self.journeys.begin_attempt(
                request.request_id, kind, replica.replica_id, now
            )
        try:
            finish = replica.serve(serve_request)
        finally:
            engine.prefetch_enabled, engine.force_substitution = saved
        if finish is None:
            if self.journeys is not None:
                self.journeys.end_attempt("shed")
            if breaker is not None:
                breaker.record(False, now)
            return ("shed", replica, None)
        served = replica.report.requests[-1]
        if self.journeys is not None:
            self.journeys.end_attempt("served", served)
        success = True
        if (
            cfg is not None
            and cfg.breaker_failure_ttft_seconds is not None
            and served.ttft > cfg.breaker_failure_ttft_seconds
        ):
            success = False
        if breaker is not None:
            breaker.record(success, now)
        return ("served", replica, served)

    def _finish_served(
        self,
        request: Request,
        outcome: RequestOutcome,
        replica: Replica,
        served,
        rung: int,
    ) -> None:
        """Resolve a served outcome; hedge the primary if it straggles."""
        cfg = self.resilience
        res = self.report.resilience
        winner = served
        winner_replica = replica
        first_token_at = served.arrival_time + served.ttft
        h_status = h_replica = h_served = None
        if (
            cfg is not None
            and cfg.hedge_after_seconds is not None
            and first_token_at - request.arrival_time
            > cfg.hedge_after_seconds
            and self._hedge_budget.try_take(self.report.routed)
        ):
            res.hedges += 1
            outcome.hedged = True
            hedge_time = request.arrival_time + cfg.hedge_after_seconds
            hedge_request = replace(request, arrival_time=hedge_time)
            h_status, h_replica, h_served = self._attempt(
                hedge_request, {replica.replica_id}, "hedge", rung
            )
            hedge_result = None
            if h_status == "served":
                # First response wins; the loser is cancelled and its
                # service time is accounted as wasted hedge work.
                res.hedges_cancelled += 1
                first_token_at = min(
                    first_token_at,
                    h_served.arrival_time + h_served.ttft,
                )
                if h_served.finish_time < served.finish_time:
                    res.hedge_wins += 1
                    outcome.hedge_won = True
                    res.hedge_wasted_seconds += (
                        served.finish_time - served.start_time
                    )
                    winner, winner_replica = h_served, h_replica
                    hedge_result = "win"
                else:
                    res.hedge_wasted_seconds += (
                        h_served.finish_time - h_served.start_time
                    )
                    hedge_result = "loss"
            elif h_status == "shed":
                # The speculative copy was shed on arrival: the hedge
                # is cancelled without ever producing a token.
                res.hedges_cancelled += 1
                hedge_result = "cancelled"
            if self.metrics is not None and hedge_result is not None:
                self.metrics.counter(
                    "repro_cluster_hedges_total",
                    "Hedged dispatches by primary replica and result "
                    "(win: hedge finished first, loss: primary held, "
                    "cancelled: hedge shed on arrival)",
                ).inc(
                    replica=str(replica.replica_id), result=hedge_result
                )
        outcome.outcome = "served"
        outcome.replica_id = winner_replica.replica_id
        outcome.latency = winner.finish_time - outcome.arrival
        outcome.ttft = first_token_at - outcome.arrival
        if self.journeys is not None:
            self.journeys.resolve_served(
                request.request_id,
                winner_replica.replica_id,
                outcome.latency,
                outcome.ttft,
                winner.finish_time,
                hedged=outcome.hedged,
                hedge_won=outcome.hedge_won,
            )
        if self.tracer is not None:
            self.tracer.complete(
                f"request {request.request_id}",
                winner.start_time,
                winner.finish_time,
                tid=replica_lane(winner_replica.replica_id),
                category="cluster",
                ttft=round(outcome.ttft, 6),
            )
            if h_status == "served":
                # Both copies ran: draw the cancelled loser too, linked
                # to the winner with a flow arrow across replica lanes.
                loser, loser_replica = (
                    (served, replica)
                    if outcome.hedge_won
                    else (h_served, h_replica)
                )
                self.tracer.complete(
                    f"request {request.request_id} (hedge loser)",
                    loser.start_time,
                    loser.finish_time,
                    tid=replica_lane(loser_replica.replica_id),
                    category="cluster",
                    role="cancelled",
                )
                self.tracer.flow(
                    "hedge",
                    request.request_id,
                    served.start_time,
                    replica_lane(replica.replica_id),
                    h_served.start_time,
                    replica_lane(h_replica.replica_id),
                )
        if self.autoscaler is not None:
            self.autoscaler.observe_ttft(
                outcome.ttft, winner_replica.replica_id
            )

    # ------------------------------------------------------------------ #
    # Run
    # ------------------------------------------------------------------ #

    def run(self, requests: Sequence[Request]) -> ClusterReport:
        """Serve ``requests`` across the fleet; returns the full report."""
        # Stable sort: ties keep the caller's order, so a 1-replica
        # cluster serves exactly the sequence a bare engine run would.
        return self._run_ordered(
            sorted(requests, key=lambda r: r.arrival_time)
        )

    def run_stream(self, arrivals: Iterable[Request]) -> ClusterReport:
        """Serve an arrival-ordered stream without materializing it.

        The big-traffic entry point: the lazy heap-merged streams from
        :mod:`repro.workloads.traffic` are already sorted, so requests
        dispatch straight off the iterator and the driver never holds
        the full day in memory.  Raises :class:`ConfigError` on an
        out-of-order arrival (callers own the sort contract here).
        """
        return self._run_ordered(arrivals, streaming=True)

    def _run_ordered(
        self, ordered: Iterable[Request], streaming: bool = False
    ) -> ClusterReport:
        tracing = False
        first_arrival: float | None = None
        last_arrival: float | None = None
        for request in ordered:
            if first_arrival is None:
                first_arrival = request.arrival_time
                if self.tracer is not None:
                    tracing = True
                    self.tracer.set_lane_name(CLUSTER_LANE, "cluster")
                    self.tracer.begin(
                        "cluster",
                        request.arrival_time,
                        tid=CLUSTER_LANE,
                        category="cluster",
                        router=self.spec.router,
                    )
            elif streaming and request.arrival_time < last_arrival:
                raise ConfigError(
                    "run_stream requires non-decreasing arrival times; "
                    f"request {request.request_id} arrived at "
                    f"{request.arrival_time} after {last_arrival}"
                )
            last_arrival = request.arrival_time
            self._dispatch(request)
        if self.tracked:
            # Scripted faults landing after the last arrival still
            # happen: drain them so late crashes retract in-flight work
            # and scheduled restarts are journaled.
            self._apply_due_cluster_faults(float("inf"))
        if self.fleet_series is not None and last_arrival is not None:
            # One closing snapshot at the fleet's quiesce time, so the
            # series always covers the full run window.
            quiesce = max(
                [last_arrival] + [r.engine.now for r in self.replicas]
            )
            self.fleet_series.sample(quiesce, self)
        self._finalize()
        if self.validate and self.violations:
            from repro.errors import ValidationError

            preview = "\n".join(str(v) for v in self.violations[:5])
            raise ValidationError(
                f"cluster run violated {len(self.violations)} "
                f"invariant(s)\n{preview}"
            )
        if tracing:
            end_ts = max(
                [first_arrival] + [r.engine.now for r in self.replicas]
            )
            self.tracer.end(
                end_ts, tid=CLUSTER_LANE, replicas=len(self.replicas)
            )
        return self.report

    def _build_tenancy(self) -> None:
        """Fold tagged outcomes into per-tier / per-tenant sections.

        Only tracked runs build this (client-perceived outcomes are the
        source of truth for tier accounting); untagged runs leave
        ``report.tenancy`` as None so their JSON form is unchanged.
        """
        if not self._tenancy_tags:
            return
        cfg = self.resilience
        tenancy = TenancyReport(
            priority_aware=(
                cfg is not None and cfg.priority_bypass_level is not None
            )
        )
        deadline = (
            self.slo_tracker.deadline_seconds
            if self.slo_tracker is not None
            else None
        )
        tier_ttfts: dict[str, list[float]] = {}
        tier_latencies: dict[str, list[float]] = {}
        tenant_ttfts: dict[str, list[float]] = {}
        for outcome in self.report.outcomes:
            tags = self._tenancy_tags.get(outcome.request_id)
            if tags is None:
                continue
            tenant_name, tier_name = tags
            tier = tenancy.tiers.setdefault(
                tier_name, TierReport(tier=tier_name)
            )
            tenant = tenancy.tenants.setdefault(
                tenant_name,
                TenantReport(tenant=tenant_name, tier=tier_name),
            )
            tier.offered += 1
            tenant.offered += 1
            if outcome.outcome == "served":
                tier.served += 1
                tenant.served += 1
                if outcome.ttft is not None:
                    tier_ttfts.setdefault(tier_name, []).append(
                        outcome.ttft
                    )
                    tenant_ttfts.setdefault(tenant_name, []).append(
                        outcome.ttft
                    )
                if outcome.latency is not None:
                    tier_latencies.setdefault(tier_name, []).append(
                        outcome.latency
                    )
            elif outcome.outcome == "shed":
                tier.shed += 1
                tenant.shed += 1
            elif outcome.outcome == "failed":
                tier.failed += 1
                tenant.failed += 1
        for name, tier in tenancy.tiers.items():
            ttfts = tier_ttfts.get(name, [])
            tier.ttft_p50 = _percentile(ttfts, 50)
            tier.ttft_p95 = _percentile(ttfts, 95)
            tier.ttft_p99 = _percentile(ttfts, 99)
            tier.latency_p95 = _percentile(tier_latencies.get(name, []), 95)
            if deadline is not None and tier.offered > 0:
                good = sum(
                    1
                    for latency in tier_latencies.get(name, [])
                    if latency <= deadline
                )
                tier.slo_attainment = good / tier.offered
        # Per-tenant cache behavior comes from the machine-work metrics:
        # every serve a tenant's requests triggered (retries, hedges,
        # crash partials included) counts toward its hit rate, which is
        # exactly the shared-store footprint the noisy-neighbor metric
        # compares against a solo run.
        tenant_hits: dict[str, int] = {}
        tenant_misses: dict[str, int] = {}
        for served in self.report.aggregate.requests:
            tags = self._tenancy_tags.get(served.request_id)
            if tags is None:
                continue
            tenant_name = tags[0]
            tenant_hits[tenant_name] = (
                tenant_hits.get(tenant_name, 0) + served.hits
            )
            tenant_misses[tenant_name] = (
                tenant_misses.get(tenant_name, 0) + served.misses
            )
        for name, tenant in tenancy.tenants.items():
            tenant.ttft_p95 = _percentile(tenant_ttfts.get(name, []), 95)
            total = tenant_hits.get(name, 0) + tenant_misses.get(name, 0)
            if total > 0:
                tenant.hit_rate = tenant_hits.get(name, 0) / total
        self.report.tenancy = tenancy

    def _finalize(self) -> None:
        """Fold per-replica reports into summaries and the aggregate."""
        aggregate = ServingReport()
        names = set()
        for replica in self.replicas:
            replica_report = replica.finalize()
            if replica_report.policy_name:
                names.add(replica_report.policy_name)
            self.report.replica_reports.append(replica_report)
            self.report.replicas.append(
                ReplicaSummary(
                    replica_id=replica.replica_id,
                    assigned=replica.assigned,
                    served=len(replica_report.requests),
                    shed_requests=replica_report.shed_requests,
                    hit_rate=replica_report.hit_rate,
                    mean_ttft_seconds=replica_report.mean_ttft(),
                    p95_e2e_seconds=replica_report.percentile_latency(95),
                    device_failures=replica_report.device_failures,
                    draining=replica.draining,
                    retired=replica.retired,
                    spawned_at=replica.spawned_at,
                    crashed=replica.crashed,
                )
            )
            # Each replica engine owns its own sink: drop counters add.
            aggregate.absorb(replica_report, distinct_sinks=True)
        if len(names) == 1:
            aggregate.policy_name = names.pop()
        self.report.aggregate = aggregate
        self.report.final_replicas = len(self._accepting())
        if self.tracked:
            res = self.report.resilience
            res.retry_budget_limit = self._retry_budget.limit(
                self.report.routed
            )
            res.hedge_budget_limit = self._hedge_budget.limit(
                self.report.routed
            )
            self.report.outcomes = list(self._outcomes.values())
            self._build_tenancy()
        if self.slo_tracker is not None:
            # Replay resolutions at finalize time: the outcome set is
            # final here, so crash retractions can never double-count.
            tracker = self.slo_tracker
            if self.report.outcomes:
                tracker.observe_outcomes(self.report.outcomes)
            else:
                rows = sorted(
                    (r.finish_time, r.e2e_latency)
                    for r in self.report.aggregate.requests
                )
                for when, latency in rows:
                    tracker.observe(
                        when, latency <= tracker.deadline_seconds
                    )
            self.report.slo_summary = tracker.to_dict()
        if self.validate:
            from repro.validate.monitors import check_cluster_report

            for replica in self.replicas:
                suite = self._suites.get(replica.replica_id)
                if suite is not None:
                    self.violations.extend(
                        suite.finish(
                            replica.report, admitted=replica.assigned
                        )
                    )
            self.violations.extend(check_cluster_report(self.report))


def run_cluster(
    world: World,
    system: str,
    spec: ClusterSpec,
    requests: Sequence[Request] | None = None,
    fault_config: FaultConfig | None = None,
    cluster_faults: ClusterFaultConfig | None = None,
    slo: SLOConfig | None = None,
    cache_budget_bytes: int | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    validate: bool = False,
    journeys=None,
    fleet_series=None,
    slo_tracker=None,
) -> ClusterReport:
    """Serve a request trace on a simulated multi-replica cluster.

    ``requests`` defaults to the world's test split.  ``fault_config`` is
    instantiated into an independent (pure, seeded) fault oracle per
    replica — or only on ``spec.fault_replica`` when set.
    ``cluster_faults`` scripts cluster-scope chaos (replica crashes,
    zone outages, link degradation); supplying it — or setting
    ``spec.resilience`` — switches the driver to the tracked dispatch
    path with per-request outcome accounting.  With neither present the
    run is byte-identical to the legacy driver.  ``tracer`` and
    ``metrics`` attach cluster-level observability (routing instants and
    scale events on the cluster lane, per-replica serve spans, and
    ``repro_cluster_*`` instruments).  ``validate`` attaches invariant
    monitors to every replica engine plus fleet-level conservation
    checks, raising :class:`~repro.errors.ValidationError` on any breach
    (the monitors only observe — results are unchanged).

    The observability plane attaches the same way: ``journeys`` (a
    :class:`repro.obs.journey.JourneyRecorder`) assembles per-request
    phase records, ``fleet_series`` (a
    :class:`repro.obs.timeseries.FleetSeries`) snapshots per-replica
    health on its cadence, and ``slo_tracker`` (a
    :class:`repro.obs.slo.SLOTracker`) runs burn-rate alerting over the
    outcome stream, landing its summary on ``report.slo_summary``.  All
    three are pure observers of the virtual clock.
    """
    driver = ClusterDriver(
        world,
        system,
        spec,
        fault_config=fault_config,
        cluster_faults=cluster_faults,
        slo=slo,
        cache_budget_bytes=cache_budget_bytes,
        tracer=tracer,
        metrics=metrics,
        validate=validate,
        journeys=journeys,
        fleet_series=fleet_series,
        slo_tracker=slo_tracker,
    )
    return driver.run(
        list(requests) if requests is not None else world.test_requests
    )
