"""Cluster-level metrics: per-replica summaries plus fleet aggregates.

A :class:`ClusterReport` carries one :class:`ServingReport` per replica,
the fleet aggregate (the same :meth:`ServingReport.absorb` fold the
parallel runner uses), the routing/scaling counters, and the scale-event
timeline.  It quacks like a :class:`ServingReport` for the chaos matrix
(``percentile_latency``, ``hit_rate``, the fault counters), so existing
fault tooling accepts cluster cells unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.serving.metrics import ServingReport


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action on the cluster's virtual timeline."""

    time: float
    action: str
    """``up`` (replica added), ``drain`` (replica stops taking work), or
    ``retire`` (a drained replica leaves the fleet)."""

    replica_id: int
    outstanding: int
    """In-flight requests on the affected replica at event time (retire
    events must always record 0 — drain-before-kill)."""


@dataclass(frozen=True)
class ReplicaSummary:
    """Routing-level outcome of one replica's run."""

    replica_id: int
    assigned: int
    """Requests the router dispatched to this replica."""

    served: int
    shed_requests: int
    hit_rate: float
    mean_ttft_seconds: float
    p95_e2e_seconds: float
    device_failures: int
    draining: bool
    retired: bool
    spawned_at: float


@dataclass
class ClusterReport:
    """Aggregated outcome of one multi-replica cluster run."""

    system: str = ""
    router: str = ""
    replicas: list[ReplicaSummary] = field(default_factory=list)
    replica_reports: list[ServingReport] = field(default_factory=list)
    aggregate: ServingReport = field(default_factory=ServingReport)
    """Fleet-wide fold of the per-replica reports (replica-id order,
    ``distinct_sinks=True`` — each replica engine owns its own sink)."""

    scale_events: list[ScaleEvent] = field(default_factory=list)
    routed: int = 0
    affinity_routed: int = 0
    """Requests placed by a semantic-affinity store match (0 under the
    load-only routers)."""

    fallback_routed: int = 0
    """Affinity-router requests that fell back to least-outstanding."""

    routed_around_failures: int = 0
    """Routing decisions that excluded at least one replica because it
    had lost a device (router failover)."""

    scale_ups: int = 0
    scale_downs: int = 0
    final_replicas: int = 0
    """Replicas still accepting work when the run ended."""

    # ------------------------------------------------------------------ #
    # Fleet-level derived metrics
    # ------------------------------------------------------------------ #

    @property
    def affinity_hit_rate(self) -> float:
        """Fraction of routed requests placed by store affinity."""
        if self.routed == 0:
            return 0.0
        return self.affinity_routed / self.routed

    def load_imbalance(self) -> float:
        """Coefficient of variation of per-replica assignment counts.

        0 means perfectly even; higher means the router concentrated
        load.  Affinity routing *buys* locality with imbalance, so this
        is reported alongside hit rate rather than minimized.
        """
        counts = np.array([r.assigned for r in self.replicas], dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 0.0
        return float(counts.std() / counts.mean())

    def slo_attainment(self, deadline_seconds: float) -> float:
        """Fraction of *admitted* requests finishing within the deadline.

        Shed requests count as missed — dropping work must not improve
        the attainment number.
        """
        served = self.aggregate.e2e_latencies()
        admitted = served.size + self.aggregate.shed_requests
        if admitted == 0:
            return 0.0
        return float((served <= deadline_seconds).sum()) / admitted

    # ------------------------------------------------------------------ #
    # ServingReport-compatible surface (chaos matrix, exporters)
    # ------------------------------------------------------------------ #

    @property
    def hit_rate(self) -> float:
        """Fleet-wide expert hit rate (aggregate report)."""
        return self.aggregate.hit_rate

    def percentile_latency(self, q: float) -> float:
        """Fleet-wide ``q``-th percentile end-to-end latency."""
        return self.aggregate.percentile_latency(q)

    def mean_ttft(self) -> float:
        """Fleet-wide mean Time-To-First-Token."""
        return self.aggregate.mean_ttft()

    @property
    def retries(self) -> int:
        """Fleet-wide transfer retries (aggregate report)."""
        return self.aggregate.retries

    @property
    def failovers(self) -> int:
        """Fleet-wide expert re-placements (aggregate report)."""
        return self.aggregate.failovers

    @property
    def device_failures(self) -> int:
        """Fleet-wide whole-GPU losses (aggregate report)."""
        return self.aggregate.device_failures

    @property
    def shed_requests(self) -> int:
        """Fleet-wide SLO-shed requests (aggregate report)."""
        return self.aggregate.shed_requests

    @property
    def degraded_tokens(self) -> int:
        """Fleet-wide degraded activations (aggregate report)."""
        return self.aggregate.degraded_tokens

    @property
    def recovery_seconds(self) -> float:
        """Fleet-wide failure-recovery seconds (aggregate report)."""
        return self.aggregate.recovery_seconds

    @property
    def slo_violations(self) -> int:
        """Fleet-wide SLO violations (aggregate report)."""
        return self.aggregate.slo_violations


def cluster_report_to_dict(report: ClusterReport) -> dict:
    """A JSON-serializable summary of one cluster run."""
    return {
        "system": report.system,
        "router": report.router,
        "routed": report.routed,
        "served": len(report.aggregate.requests),
        "affinity_routed": report.affinity_routed,
        "fallback_routed": report.fallback_routed,
        "affinity_hit_rate": report.affinity_hit_rate,
        "routed_around_failures": report.routed_around_failures,
        "scale_ups": report.scale_ups,
        "scale_downs": report.scale_downs,
        "final_replicas": report.final_replicas,
        "load_imbalance": report.load_imbalance(),
        "hit_rate": report.hit_rate,
        "mean_ttft_seconds": report.mean_ttft(),
        "p95_e2e_seconds": report.percentile_latency(95),
        "shed_requests": report.shed_requests,
        "device_failures": report.device_failures,
        "scale_events": [
            {
                "time": e.time,
                "action": e.action,
                "replica_id": e.replica_id,
                "outstanding": e.outstanding,
            }
            for e in report.scale_events
        ],
        "replicas": [
            {
                "replica_id": r.replica_id,
                "assigned": r.assigned,
                "served": r.served,
                "shed_requests": r.shed_requests,
                "hit_rate": r.hit_rate,
                "mean_ttft_seconds": r.mean_ttft_seconds,
                "p95_e2e_seconds": r.p95_e2e_seconds,
                "device_failures": r.device_failures,
                "draining": r.draining,
                "retired": r.retired,
                "spawned_at": r.spawned_at,
            }
            for r in report.replicas
        ],
    }


def cluster_report_to_json(
    report: ClusterReport, path: str | Path | None = None
) -> str:
    """Serialize a cluster report to JSON; optionally write to ``path``."""
    text = json.dumps(cluster_report_to_dict(report), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
