"""Cluster-level metrics: per-replica summaries plus fleet aggregates.

A :class:`ClusterReport` carries one :class:`ServingReport` per replica,
the fleet aggregate (the same :meth:`ServingReport.absorb` fold the
parallel runner uses), the routing/scaling counters, and the scale-event
timeline.  It quacks like a :class:`ServingReport` for the chaos matrix
(``percentile_latency``, ``hit_rate``, the fault counters), so existing
fault tooling accepts cluster cells unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.serving.metrics import ServingReport


@dataclass
class FleetReport:
    """Heterogeneous-fleet accounting (profiles, pricing, placement).

    Present on a :class:`ClusterReport` only when the spec carried
    replica profiles or a placement strategy; legacy runs keep the key
    out of the JSON form entirely, preserving byte parity.
    """

    profiles: list[dict] = field(default_factory=list)
    """Per-replica ``{replica_id, profile, dollars_per_hour, spot,
    preloaded}`` rows in spawn order (``preloaded`` counts plan experts
    actually made resident)."""

    placement: str | None = None
    placement_cost: float = 0.0
    placement_seed_cost: float = 0.0
    residency_sizes: list[int] = field(default_factory=list)
    unplaced_experts: int = 0
    dollars_per_hour: float = 0.0
    """Fleet price: sum of every spawned replica's $/hour."""


@dataclass(frozen=True)
class ScaleEvent:
    """One autoscaler action on the cluster's virtual timeline."""

    time: float
    action: str
    """``up`` (replica added), ``drain`` (replica stops taking work), or
    ``retire`` (a drained replica leaves the fleet)."""

    replica_id: int
    outstanding: int
    """In-flight requests on the affected replica at event time (retire
    events must always record 0 — drain-before-kill)."""


@dataclass(frozen=True)
class ReplicaSummary:
    """Routing-level outcome of one replica's run."""

    replica_id: int
    assigned: int
    """Requests the router dispatched to this replica."""

    served: int
    shed_requests: int
    hit_rate: float
    mean_ttft_seconds: float
    p95_e2e_seconds: float
    device_failures: int
    draining: bool
    retired: bool
    spawned_at: float
    crashed: bool = False
    """Whether a scripted cluster fault killed this replica mid-run."""


@dataclass(frozen=True)
class DispatchRecord:
    """One request hand-off from the driver to a replica.

    ``seq`` is the driver's global event sequence number; breaker
    transitions carry the same counter, so the validate monitors can
    replay the exact interleaving of dispatches and state changes even
    when virtual timestamps tie.
    """

    seq: int
    time: float
    request_id: int
    replica_id: int
    kind: str
    """``primary`` (first placement), ``retry`` (re-dispatch after a shed
    or crash), or ``hedge`` (speculative second copy of a straggler)."""

    probe: bool = False
    """True when the target's breaker was half-open — this dispatch is
    the probe deciding whether the breaker closes or re-opens."""


@dataclass(frozen=True)
class BreakerTransition:
    """One circuit-breaker state change on a replica."""

    seq: int
    time: float
    replica_id: int
    state: str
    """``closed`` / ``open`` / ``half-open``."""


@dataclass(frozen=True)
class RecoveryEvent:
    """A crashed replica's replacement rejoining the fleet."""

    time: float
    crashed_replica: int
    new_replica: int
    restored_experts: int
    """Expert-map rows the replacement inherited from the shared store
    (0 for a fully cold rejoin)."""


@dataclass
class RequestOutcome:
    """Request-level truth of one routed request under resilience.

    Replica reports account for *machine work* (a crashed replica's
    partial serves, a cancelled hedge's compute all stay visible in the
    aggregate); outcomes account for what the *client* experienced.
    Every request presented to the cluster resolves to exactly one
    outcome — hedges and retries never add entries.
    """

    request_id: int
    arrival: float
    outcome: str = "pending"
    """``served`` / ``shed`` / ``failed`` (``pending`` only mid-run)."""

    replica_id: int | None = None
    """The replica whose serve defined this outcome (hedge winner)."""

    latency: float | None = None
    """Client-perceived end-to-end seconds from ``arrival`` (served only)."""

    ttft: float | None = None
    """Client-perceived first-token seconds from ``arrival`` — under
    hedging, the earlier of the two copies' first tokens."""

    attempts: int = 0
    """Primary + retry dispatches (hedges are tracked separately)."""

    hedged: bool = False
    hedge_won: bool = False
    rung: int = 0
    """Degradation-ladder rung in force when the request was admitted."""

    reason: str = ""
    """Why a request was shed/failed: ``admission`` (token bucket),
    ``ladder`` (shed rung), ``breaker`` (all candidates open),
    ``no-capacity`` (no live replica), ``replica`` (queue-delay shed,
    retries exhausted), or ``crash`` (lost in flight, not recovered)."""


def _percentile(values: list[float], q: float) -> float | None:
    """``q``-th percentile of ``values`` (None when empty)."""
    if not values:
        return None
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass
class TierReport:
    """Client-perceived outcome of one SLO tier's requests."""

    tier: str
    offered: int = 0
    """Requests presented to the cluster at this tier."""

    served: int = 0
    shed: int = 0
    failed: int = 0
    ttft_p50: float | None = None
    ttft_p95: float | None = None
    ttft_p99: float | None = None
    latency_p95: float | None = None
    slo_attainment: float | None = None
    """Fraction of *offered* requests served within the attached SLO
    tracker's deadline (None when no tracker rode the run)."""

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests shed (0 when nothing offered)."""
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered


@dataclass
class TenantReport:
    """One tenant's slice of a multi-tenant cluster run."""

    tenant: str
    tier: str = ""
    offered: int = 0
    served: int = 0
    shed: int = 0
    failed: int = 0
    ttft_p95: float | None = None
    hit_rate: float | None = None
    """This tenant's expert-cache hit rate inside the mixed run — the
    basis of the noisy-neighbor pollution metric (compare against the
    tenant's solo-run hit rate under the same spec)."""


@dataclass
class TenancyReport:
    """Per-tier / per-tenant sections of a multi-tenant cluster run.

    Present on a :class:`ClusterReport` only when tracked requests
    carried tenant/tier tags; untagged runs keep the ``tenancy`` key out
    of the JSON form entirely, preserving byte parity.
    """

    priority_aware: bool = False
    """Whether a ``priority_bypass_level`` protected high tiers — the
    tier-conservation monitor only enforces the premium-sheds-less
    ordering when this is set (tier-blind shedding has no ordering)."""

    tiers: dict[str, TierReport] = field(default_factory=dict)
    tenants: dict[str, TenantReport] = field(default_factory=dict)


@dataclass
class ResilienceReport:
    """Fleet-level resilience counters for one cluster run.

    Present on the :class:`ClusterReport` whenever resilience features or
    cluster-scope faults were active; ``None`` means the run took the
    legacy dispatch path and its serialization is byte-identical to a
    pre-resilience build.
    """

    admitted: int = 0
    """Requests presented to the cluster (equals ``ClusterReport.routed``)."""

    shed_admission: int = 0
    shed_ladder: int = 0
    shed_breaker: int = 0
    shed_no_capacity: int = 0
    shed_replica: int = 0
    failed: int = 0
    """Requests lost in a crash and not recovered within budget."""

    primary_dispatches: int = 0
    retry_dispatches: int = 0
    retry_budget_limit: int = 0
    """Final retry ceiling, ``floor(retry_budget_fraction * routed)``."""

    retry_budget_exhausted: int = 0
    """Re-dispatches that were wanted but denied by the budget."""

    hedges: int = 0
    hedge_wins: int = 0
    hedges_cancelled: int = 0
    """Losing copies (one per hedge: either the straggling primary or
    the speculative secondary is always cancelled/wasted)."""

    hedge_budget_limit: int = 0
    hedge_wasted_seconds: float = 0.0
    """Service seconds spent on cancelled hedge copies."""

    breaker_opens: int = 0
    breaker_closes: int = 0
    breaker_probes: int = 0
    breaker_filtered_routes: int = 0
    """Routing decisions that excluded at least one open breaker."""

    crashes: int = 0
    restarts: int = 0
    lost_in_flight: int = 0
    """In-flight requests whose defining serve died with a replica."""

    link_delays: int = 0
    link_delay_seconds: float = 0.0
    rung_counts: dict[int, int] = field(default_factory=dict)
    """Admissions per degradation-ladder rung (0 = full service)."""

    @property
    def total_shed(self) -> int:
        """Requests the cluster shed across every mechanism."""
        return (
            self.shed_admission
            + self.shed_ladder
            + self.shed_breaker
            + self.shed_no_capacity
            + self.shed_replica
        )


@dataclass
class ClusterReport:
    """Aggregated outcome of one multi-replica cluster run."""

    system: str = ""
    router: str = ""
    replicas: list[ReplicaSummary] = field(default_factory=list)
    replica_reports: list[ServingReport] = field(default_factory=list)
    aggregate: ServingReport = field(default_factory=ServingReport)
    """Fleet-wide fold of the per-replica reports (replica-id order,
    ``distinct_sinks=True`` — each replica engine owns its own sink)."""

    scale_events: list[ScaleEvent] = field(default_factory=list)
    routed: int = 0
    affinity_routed: int = 0
    """Requests placed by a semantic-affinity store match (0 under the
    load-only routers)."""

    fallback_routed: int = 0
    """Affinity-router requests that fell back to least-outstanding."""

    routed_around_failures: int = 0
    """Routing decisions that excluded at least one replica because it
    had lost a device (router failover)."""

    scale_ups: int = 0
    scale_downs: int = 0
    final_replicas: int = 0
    """Replicas still accepting work when the run ended."""

    resilience: ResilienceReport | None = None
    """Resilience counters; ``None`` on legacy (pre-resilience) runs."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    """One request-level outcome per routed request (resilient runs)."""

    dispatch_log: list[DispatchRecord] = field(default_factory=list)
    breaker_transitions: list[BreakerTransition] = field(default_factory=list)
    recovery_events: list[RecoveryEvent] = field(default_factory=list)

    slo_summary: dict | None = None
    """Burn-rate alerting summary (:meth:`repro.obs.slo.SLOTracker.to_dict`)
    when an SLO tracker rode the run; ``None`` otherwise — the key is
    omitted from the JSON form so untracked runs stay byte-identical."""

    fleet: FleetReport | None = None
    """Heterogeneous-fleet accounting; ``None`` on homogeneous legacy
    runs — the JSON key is omitted so their serialization is unchanged."""

    tenancy: TenancyReport | None = None
    """Per-tier / per-tenant accounting; ``None`` unless tracked requests
    carried tenant tags — the JSON key is omitted otherwise."""

    # ------------------------------------------------------------------ #
    # Fleet-level derived metrics
    # ------------------------------------------------------------------ #

    @property
    def affinity_hit_rate(self) -> float:
        """Fraction of routed requests placed by store affinity."""
        if self.routed == 0:
            return 0.0
        return self.affinity_routed / self.routed

    def load_imbalance(self) -> float:
        """Coefficient of variation of per-replica assignment counts.

        0 means perfectly even; higher means the router concentrated
        load.  Affinity routing *buys* locality with imbalance, so this
        is reported alongside hit rate rather than minimized.
        """
        counts = np.array([r.assigned for r in self.replicas], dtype=float)
        if counts.size == 0 or counts.mean() == 0:
            return 0.0
        return float(counts.std() / counts.mean())

    def slo_attainment(self, deadline_seconds: float) -> float:
        """Fraction of *admitted* requests finishing within the deadline.

        Denominator contract: every request presented to the cluster
        counts exactly once — shed and failed-over requests included, so
        dropping or losing work can never improve the attainment number.

        When request-level ``outcomes`` are present (any run with
        resilience features or cluster-scope faults), they are the
        source of truth: a request attains the SLO iff its single
        outcome is ``served`` within the deadline.  This is what keeps
        the accounting consistent under retries and hedging, where the
        per-replica reports contain duplicate serves (cancelled hedge
        copies, crash-lost partials) that must not inflate either side
        of the ratio.  Legacy runs fall back to the aggregate report,
        where served + shed partitions the admitted set exactly.
        """
        if self.outcomes:
            good = sum(
                1
                for o in self.outcomes
                if o.outcome == "served"
                and o.latency is not None
                and o.latency <= deadline_seconds
            )
            return good / len(self.outcomes)
        served = self.aggregate.e2e_latencies()
        admitted = served.size + self.aggregate.shed_requests
        if admitted == 0:
            return 0.0
        return float((served <= deadline_seconds).sum()) / admitted

    def slo_per_dollar(self, deadline_seconds: float) -> float:
        """SLO attainment divided by the fleet's $/hour price.

        The heterogeneous-fleet figure of merit: a cheap slow fleet and
        an expensive fast fleet are only comparable once attainment is
        normalized by what the capacity costs.  Requires a
        :class:`FleetReport` (0.0 without one — an unpriced fleet has no
        dollar axis)."""
        if self.fleet is None or self.fleet.dollars_per_hour <= 0:
            return 0.0
        return (
            self.slo_attainment(deadline_seconds)
            / self.fleet.dollars_per_hour
        )

    # ------------------------------------------------------------------ #
    # ServingReport-compatible surface (chaos matrix, exporters)
    # ------------------------------------------------------------------ #

    @property
    def hit_rate(self) -> float:
        """Fleet-wide expert hit rate (aggregate report)."""
        return self.aggregate.hit_rate

    def percentile_latency(self, q: float) -> float:
        """Fleet-wide ``q``-th percentile end-to-end latency."""
        return self.aggregate.percentile_latency(q)

    def mean_ttft(self) -> float:
        """Fleet-wide mean Time-To-First-Token."""
        return self.aggregate.mean_ttft()

    @property
    def retries(self) -> int:
        """Fleet-wide transfer retries (aggregate report)."""
        return self.aggregate.retries

    @property
    def failovers(self) -> int:
        """Fleet-wide expert re-placements (aggregate report)."""
        return self.aggregate.failovers

    @property
    def device_failures(self) -> int:
        """Fleet-wide whole-GPU losses (aggregate report)."""
        return self.aggregate.device_failures

    @property
    def shed_requests(self) -> int:
        """Fleet-wide SLO-shed requests (aggregate report)."""
        return self.aggregate.shed_requests

    @property
    def degraded_tokens(self) -> int:
        """Fleet-wide degraded activations (aggregate report)."""
        return self.aggregate.degraded_tokens

    @property
    def recovery_seconds(self) -> float:
        """Fleet-wide failure-recovery seconds (aggregate report)."""
        return self.aggregate.recovery_seconds

    @property
    def slo_violations(self) -> int:
        """Fleet-wide SLO violations (aggregate report)."""
        return self.aggregate.slo_violations


def _resilience_to_dict(report: ClusterReport) -> dict:
    """The resilience section of a cluster report's JSON form."""
    res = report.resilience
    assert res is not None
    return {
        "admitted": res.admitted,
        "shed_admission": res.shed_admission,
        "shed_ladder": res.shed_ladder,
        "shed_breaker": res.shed_breaker,
        "shed_no_capacity": res.shed_no_capacity,
        "shed_replica": res.shed_replica,
        "total_shed": res.total_shed,
        "failed": res.failed,
        "primary_dispatches": res.primary_dispatches,
        "retry_dispatches": res.retry_dispatches,
        "retry_budget_limit": res.retry_budget_limit,
        "retry_budget_exhausted": res.retry_budget_exhausted,
        "hedges": res.hedges,
        "hedge_wins": res.hedge_wins,
        "hedges_cancelled": res.hedges_cancelled,
        "hedge_budget_limit": res.hedge_budget_limit,
        "hedge_wasted_seconds": res.hedge_wasted_seconds,
        "breaker_opens": res.breaker_opens,
        "breaker_closes": res.breaker_closes,
        "breaker_probes": res.breaker_probes,
        "breaker_filtered_routes": res.breaker_filtered_routes,
        "crashes": res.crashes,
        "restarts": res.restarts,
        "lost_in_flight": res.lost_in_flight,
        "link_delays": res.link_delays,
        "link_delay_seconds": res.link_delay_seconds,
        "rung_counts": {
            str(rung): count
            for rung, count in sorted(res.rung_counts.items())
        },
        "outcomes": [
            {
                "request_id": o.request_id,
                "arrival": o.arrival,
                "outcome": o.outcome,
                "replica_id": o.replica_id,
                "latency": o.latency,
                "ttft": o.ttft,
                "attempts": o.attempts,
                "hedged": o.hedged,
                "hedge_won": o.hedge_won,
                "rung": o.rung,
                "reason": o.reason,
            }
            for o in report.outcomes
        ],
        "dispatches": [
            {
                "seq": d.seq,
                "time": d.time,
                "request_id": d.request_id,
                "replica_id": d.replica_id,
                "kind": d.kind,
                "probe": d.probe,
            }
            for d in report.dispatch_log
        ],
        "breaker_transitions": [
            {
                "seq": t.seq,
                "time": t.time,
                "replica_id": t.replica_id,
                "state": t.state,
            }
            for t in report.breaker_transitions
        ],
        "recovery_events": [
            {
                "time": e.time,
                "crashed_replica": e.crashed_replica,
                "new_replica": e.new_replica,
                "restored_experts": e.restored_experts,
            }
            for e in report.recovery_events
        ],
    }


def _tenancy_to_dict(tenancy: TenancyReport) -> dict:
    """The tenancy section of a cluster report's JSON form."""
    return {
        "priority_aware": tenancy.priority_aware,
        "tiers": {
            name: {
                "offered": t.offered,
                "served": t.served,
                "shed": t.shed,
                "failed": t.failed,
                "shed_rate": t.shed_rate,
                "ttft_p50": t.ttft_p50,
                "ttft_p95": t.ttft_p95,
                "ttft_p99": t.ttft_p99,
                "latency_p95": t.latency_p95,
                "slo_attainment": t.slo_attainment,
            }
            for name, t in sorted(tenancy.tiers.items())
        },
        "tenants": {
            name: {
                "tier": t.tier,
                "offered": t.offered,
                "served": t.served,
                "shed": t.shed,
                "failed": t.failed,
                "ttft_p95": t.ttft_p95,
                "hit_rate": t.hit_rate,
            }
            for name, t in sorted(tenancy.tenants.items())
        },
    }


def cluster_report_to_dict(report: ClusterReport) -> dict:
    """A JSON-serializable summary of one cluster run.

    Resilience keys (the ``resilience`` section and per-replica
    ``crashed`` flags) appear only when the run actually tracked
    outcomes, so a legacy run's serialization stays byte-identical to a
    pre-resilience build.
    """
    resilient = report.resilience is not None
    summary = {
        "system": report.system,
        "router": report.router,
        "routed": report.routed,
        "served": len(report.aggregate.requests),
        "affinity_routed": report.affinity_routed,
        "fallback_routed": report.fallback_routed,
        "affinity_hit_rate": report.affinity_hit_rate,
        "routed_around_failures": report.routed_around_failures,
        "scale_ups": report.scale_ups,
        "scale_downs": report.scale_downs,
        "final_replicas": report.final_replicas,
        "load_imbalance": report.load_imbalance(),
        "hit_rate": report.hit_rate,
        "mean_ttft_seconds": report.mean_ttft(),
        "p95_e2e_seconds": report.percentile_latency(95),
        "shed_requests": report.shed_requests,
        "device_failures": report.device_failures,
        "scale_events": [
            {
                "time": e.time,
                "action": e.action,
                "replica_id": e.replica_id,
                "outstanding": e.outstanding,
            }
            for e in report.scale_events
        ],
        "replicas": [
            {
                "replica_id": r.replica_id,
                "assigned": r.assigned,
                "served": r.served,
                "shed_requests": r.shed_requests,
                "hit_rate": r.hit_rate,
                "mean_ttft_seconds": r.mean_ttft_seconds,
                "p95_e2e_seconds": r.p95_e2e_seconds,
                "device_failures": r.device_failures,
                "draining": r.draining,
                "retired": r.retired,
                "spawned_at": r.spawned_at,
                **({"crashed": r.crashed} if resilient else {}),
            }
            for r in report.replicas
        ],
    }
    if resilient:
        summary["resilience"] = _resilience_to_dict(report)
    if report.slo_summary is not None:
        summary["slo"] = report.slo_summary
    if report.tenancy is not None:
        summary["tenancy"] = _tenancy_to_dict(report.tenancy)
    if report.fleet is not None:
        fleet = report.fleet
        summary["fleet"] = {
            "profiles": fleet.profiles,
            "placement": fleet.placement,
            "placement_cost": fleet.placement_cost,
            "placement_seed_cost": fleet.placement_seed_cost,
            "residency_sizes": fleet.residency_sizes,
            "unplaced_experts": fleet.unplaced_experts,
            "dollars_per_hour": fleet.dollars_per_hour,
        }
    return summary


def cluster_report_to_json(
    report: ClusterReport, path: str | Path | None = None
) -> str:
    """Serialize a cluster report to JSON; optionally write to ``path``."""
    text = json.dumps(cluster_report_to_dict(report), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text
