"""Cluster-level configuration: replica fleet shape and autoscaling knobs.

Kept dependency-light on purpose: :class:`ClusterSpec` rides inside the
parallel runner's picklable :class:`~repro.experiments.runner.SimCell`, so
this module must be importable without pulling in the serving stack.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.serving.hardware import HardwareConfig

#: Pluggable routing policies the cluster driver knows how to build.
ROUTER_NAMES: tuple[str, ...] = (
    "round-robin",
    "least-outstanding",
    "semantic-affinity",
    "cost-aware",
)

#: Expert-placement strategies the cluster driver knows how to build.
PLACEMENT_NAMES: tuple[str, ...] = (
    "uniform",
    "cost-aware",
)


@dataclass(frozen=True)
class ReplicaProfile:
    """Per-replica hardware description, expressed as deltas.

    A profile scales the world's base :class:`HardwareConfig` rather than
    replacing it, so fleet shapes stay portable across models and testbeds.
    Every scale defaults to ``1.0`` — and because ``x * 1.0 == x`` exactly
    in IEEE-754, a default profile derives a hardware config that is
    *equal* to the base, which is what keeps a homogeneous-profile fleet
    byte-identical to the legacy identical-replica cluster by construction.

    ``dollars_per_hour`` and ``spot`` feed the price-aware autoscaler and
    the SLO-per-dollar fleet benchmark; they never touch latency.
    """

    name: str = "baseline"
    pcie_scale: float = 1.0
    """Host-to-device interconnect bandwidth multiplier (NVLink-class
    hosts raise it; PCIe 3.0-era boxes lower it)."""

    vram_scale: float = 1.0
    """Per-GPU memory multiplier; also scales the replica's expert-cache
    budget."""

    flops_scale: float = 1.0
    membw_scale: float = 1.0
    dollars_per_hour: float = 1.0
    spot: bool = False
    """Spot-preemptible capacity: cheaper, first in line for retirement
    when the price-aware autoscaler scales down."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("profile name must be non-empty")
        for field_name in (
            "pcie_scale",
            "vram_scale",
            "flops_scale",
            "membw_scale",
            "dollars_per_hour",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")

    @property
    def is_default(self) -> bool:
        """True when the profile leaves the base hardware untouched."""
        return (
            self.pcie_scale == 1.0
            and self.vram_scale == 1.0
            and self.flops_scale == 1.0
            and self.membw_scale == 1.0
        )

    def apply(self, base: "HardwareConfig") -> "HardwareConfig":
        """Derive this replica's hardware from the fleet's base config."""
        if self.is_default:
            return base
        return replace(
            base,
            pcie_bandwidth_bps=base.pcie_bandwidth_bps * self.pcie_scale,
            gpu_memory_bytes=int(base.gpu_memory_bytes * self.vram_scale),
            gpu_flops=base.gpu_flops * self.flops_scale,
            gpu_memory_bandwidth_bps=(
                base.gpu_memory_bandwidth_bps * self.membw_scale
            ),
        )

    def scale_budget(self, cache_budget_bytes: int) -> int:
        """Scale the fleet-wide expert-cache budget to this replica."""
        if self.vram_scale == 1.0:
            return cache_budget_bytes
        return int(cache_budget_bytes * self.vram_scale)


#: Named fleet building blocks used by the CLI, tests, and benchmarks.
REPLICA_PROFILES: dict[str, ReplicaProfile] = {
    "baseline": ReplicaProfile(),
    "fast-nvlink": ReplicaProfile(
        name="fast-nvlink",
        pcie_scale=4.0,
        flops_scale=1.5,
        membw_scale=1.2,
        dollars_per_hour=3.2,
    ),
    "slow-pcie3": ReplicaProfile(
        name="slow-pcie3",
        pcie_scale=0.5,
        flops_scale=0.8,
        dollars_per_hour=0.6,
    ),
    "spot-small": ReplicaProfile(
        name="spot-small",
        pcie_scale=0.5,
        vram_scale=0.5,
        flops_scale=0.7,
        dollars_per_hour=0.35,
        spot=True,
    ),
    "big-vram": ReplicaProfile(
        name="big-vram",
        vram_scale=2.0,
        dollars_per_hour=2.0,
    ),
}


def get_profile(name: str) -> ReplicaProfile:
    """Look up a named replica profile (:data:`REPLICA_PROFILES`)."""
    try:
        return REPLICA_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown replica profile {name!r}; "
            f"choose from: {', '.join(sorted(REPLICA_PROFILES))}"
        ) from None


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the virtual-clock autoscaler (queue + tail-latency driven).

    The autoscaler evaluates at request-dispatch points: it adds a replica
    when the fleet-mean outstanding request count (or the recent p95 TTFT)
    crosses the scale-up thresholds, and marks the least-loaded replica
    *draining* when load falls below the scale-down threshold.  A draining
    replica receives no new requests and is retired only once its last
    in-flight request has finished — drain-before-kill.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_queue_depth: float = 4.0
    """Fleet-mean outstanding requests per replica that triggers a new
    replica."""

    scale_up_p95_ttft_seconds: float | None = None
    """Recent-window p95 TTFT that triggers a new replica (None: queue
    depth only)."""

    scale_down_queue_depth: float = 1.0
    """Fleet-mean outstanding requests per replica below which one replica
    starts draining."""

    cooldown_seconds: float = 10.0
    """Minimum virtual time between scaling actions."""

    ttft_window: int = 16
    """Recently finished requests the p95-TTFT signal is computed over."""

    price_aware: bool = False
    """Retire the worst SLO-per-dollar replica instead of the least
    loaded one when scaling down (spot replicas break ties first), using
    per-replica TTFT windows scored against ``ttft_good_seconds``."""

    ttft_good_seconds: float | None = None
    """TTFT at or below which a request counts as *good* for the
    price-aware SLO-per-dollar score (None: every served request is
    good, so the score reduces to 1 / dollars-per-hour)."""

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigError("max_replicas must be >= min_replicas")
        if self.scale_up_queue_depth <= self.scale_down_queue_depth:
            raise ConfigError(
                "scale_up_queue_depth must exceed scale_down_queue_depth"
            )
        if (
            self.scale_up_p95_ttft_seconds is not None
            and self.scale_up_p95_ttft_seconds <= 0
        ):
            raise ConfigError("scale_up_p95_ttft_seconds must be > 0")
        if self.cooldown_seconds < 0:
            raise ConfigError("cooldown_seconds must be >= 0")
        if self.ttft_window < 1:
            raise ConfigError("ttft_window must be >= 1")
        if self.ttft_good_seconds is not None and self.ttft_good_seconds <= 0:
            raise ConfigError("ttft_good_seconds must be > 0 (or None)")


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the cluster resilience layer (all features opt-in).

    Attached to :class:`ClusterSpec`; ``None`` on the spec means the
    driver takes exactly the legacy dispatch path and reports stay
    byte-identical to a pre-resilience run.  Each feature degrades to
    off when its knob is ``None``:

    - **admission control** — a token bucket (``admission_rate`` /
      ``admission_burst``) plus the degradation ladder's shed rung;
      requests with ``priority >= priority_bypass_level`` are never shed
      at admission.
    - **degradation ladder** — fleet-mean queue depth drives service
      down the rungs *full → prefetch-off → expert-substitution → shed*
      (the SMoE-style nearest-resident substitution becomes a measured
      rung instead of a hidden fault fallback).
    - **retry budget** — cross-replica re-dispatch of shed or
      crash-lost requests, globally capped at
      ``retry_budget_fraction`` of routed requests so retries can never
      storm.
    - **hedged dispatch** — a request whose primary TTFT exceeds
      ``hedge_after_seconds`` is re-dispatched to a second replica;
      first response wins, the loser is counted as cancelled work.
    - **circuit breakers** — per-replica closed/open/half-open state on
      a rolling failure window; open replicas leave the router's
      candidate set, half-open replicas receive probe requests.
    """

    admission_rate: float | None = None
    """Token-bucket admission rate in requests per virtual second
    (None: no rate limit)."""

    admission_burst: int = 8
    priority_bypass_level: int | None = None
    """Requests with ``priority`` at or above this are never shed by
    admission control (None: no bypass)."""

    prefetch_off_depth: float | None = 6.0
    """Fleet-mean outstanding requests per replica at which prefetching
    is switched off (ladder rung 1; None disables the rung)."""

    substitution_depth: float | None = 10.0
    """Queue depth at which misses are served by nearest-resident
    substitution instead of blocking loads (rung 2; None disables)."""

    shed_depth: float | None = 14.0
    """Queue depth at which new arrivals are shed outright (rung 3;
    None disables)."""

    retry_budget_fraction: float = 0.25
    """Global retry budget: re-dispatches may never exceed this fraction
    of routed requests."""

    max_attempts_per_request: int = 2
    hedge_after_seconds: float | None = None
    """Hedge a request whose primary TTFT exceeds this (None: hedging
    off)."""

    hedge_budget_fraction: float = 0.1
    """Hedges may never exceed this fraction of routed requests."""

    breakers_enabled: bool = True
    breaker_window: int = 8
    """Rolling per-replica outcome window the failure rate is computed
    over."""

    breaker_min_samples: int = 4
    breaker_failure_threshold: float = 0.5
    """Failure rate at which a closed breaker opens."""

    breaker_open_seconds: float = 20.0
    """Seconds an open breaker waits before allowing a half-open probe."""

    breaker_failure_ttft_seconds: float | None = None
    """Count a served request as a breaker *failure* when its TTFT
    exceeds this (None: only sheds and crashes count)."""

    restart_warm_from_store: bool = True
    """Restarted replicas share the cluster's shared expert-map store
    when one exists (their ExpertPool still rejoins cold)."""

    def __post_init__(self) -> None:
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ConfigError("admission_rate must be > 0 (or None)")
        if self.admission_burst < 1:
            raise ConfigError("admission_burst must be >= 1")
        depths = [
            ("prefetch_off_depth", self.prefetch_off_depth),
            ("substitution_depth", self.substitution_depth),
            ("shed_depth", self.shed_depth),
        ]
        for name, value in depths:
            if value is not None and value <= 0:
                raise ConfigError(f"{name} must be > 0 (or None)")
        ordered = [v for _, v in depths if v is not None]
        if ordered != sorted(ordered):
            raise ConfigError(
                "degradation depths must be non-decreasing: "
                "prefetch_off <= substitution <= shed"
            )
        for name in ("retry_budget_fraction", "hedge_budget_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if self.max_attempts_per_request < 1:
            raise ConfigError("max_attempts_per_request must be >= 1")
        if self.hedge_after_seconds is not None and (
            self.hedge_after_seconds <= 0
        ):
            raise ConfigError("hedge_after_seconds must be > 0 (or None)")
        if self.breaker_window < 1:
            raise ConfigError("breaker_window must be >= 1")
        if self.breaker_min_samples < 1:
            raise ConfigError("breaker_min_samples must be >= 1")
        if self.breaker_min_samples > self.breaker_window:
            raise ConfigError(
                "breaker_min_samples must be <= breaker_window"
            )
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ConfigError(
                "breaker_failure_threshold must be in (0, 1]"
            )
        if self.breaker_open_seconds <= 0:
            raise ConfigError("breaker_open_seconds must be > 0")
        if self.breaker_failure_ttft_seconds is not None and (
            self.breaker_failure_ttft_seconds <= 0
        ):
            raise ConfigError(
                "breaker_failure_ttft_seconds must be > 0 (or None)"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of one simulated cluster: replicas, router, store topology.

    Fully picklable — a cluster cell is one
    :class:`~repro.experiments.runner.SimCell` unit, so every field here
    must survive a trip through a process pool.
    """

    replicas: int = 2
    router: str = "round-robin"
    shared_store: bool = False
    """Share one expert-map store across every fMoE replica instead of
    giving each replica a private store."""

    warm: bool = True
    """Warm each replica's policy with the world's profiled traces (a
    cold start lets per-replica stores diverge, which is what
    semantic-affinity routing exploits)."""

    autoscaler: AutoscalerConfig | None = None
    fault_replica: int | None = None
    """Apply the cell's fault schedule to this replica only (None: every
    replica lives on the same degrading fleet)."""

    route_around_device_loss: bool = True
    """Stop routing new requests to a replica that has lost a device
    (router failover); the replica still finishes what it already holds."""

    resilience: ResilienceConfig | None = None
    """Cluster resilience layer (admission control, degradation ladder,
    retry budgets, hedged dispatch, circuit breakers).  ``None`` keeps
    the legacy dispatch path and byte-identical reports."""

    profiles: tuple[ReplicaProfile, ...] | None = None
    """Per-replica hardware profiles; replica ``i`` (including replicas
    spawned later by the autoscaler) uses ``profiles[i % len(profiles)]``.
    ``None`` keeps every replica on the world's base hardware and the
    legacy byte-identical report shape."""

    placement: str | None = None
    """Expert-placement strategy pre-warming each replica's cache from a
    :class:`~repro.cluster.placement.PlacementPlan` (``None``: no plan,
    legacy behaviour)."""

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if self.router not in ROUTER_NAMES:
            raise ConfigError(
                f"unknown router {self.router!r}; "
                f"choose from: {', '.join(ROUTER_NAMES)}"
            )
        if self.fault_replica is not None and self.fault_replica < 0:
            raise ConfigError("fault_replica must be >= 0")
        if self.profiles is not None and len(self.profiles) == 0:
            raise ConfigError("profiles must be non-empty (or None)")
        if (
            self.placement is not None
            and self.placement not in PLACEMENT_NAMES
        ):
            raise ConfigError(
                f"unknown placement {self.placement!r}; "
                f"choose from: {', '.join(PLACEMENT_NAMES)}"
            )

    def profile_for(self, replica_id: int) -> ReplicaProfile:
        """Profile of replica ``replica_id`` (baseline when unset)."""
        if self.profiles is None:
            return REPLICA_PROFILES["baseline"]
        return self.profiles[replica_id % len(self.profiles)]
