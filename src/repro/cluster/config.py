"""Cluster-level configuration: replica fleet shape and autoscaling knobs.

Kept dependency-light on purpose: :class:`ClusterSpec` rides inside the
parallel runner's picklable :class:`~repro.experiments.runner.SimCell`, so
this module must be importable without pulling in the serving stack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: Pluggable routing policies the cluster driver knows how to build.
ROUTER_NAMES: tuple[str, ...] = (
    "round-robin",
    "least-outstanding",
    "semantic-affinity",
)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the virtual-clock autoscaler (queue + tail-latency driven).

    The autoscaler evaluates at request-dispatch points: it adds a replica
    when the fleet-mean outstanding request count (or the recent p95 TTFT)
    crosses the scale-up thresholds, and marks the least-loaded replica
    *draining* when load falls below the scale-down threshold.  A draining
    replica receives no new requests and is retired only once its last
    in-flight request has finished — drain-before-kill.
    """

    min_replicas: int = 1
    max_replicas: int = 8
    scale_up_queue_depth: float = 4.0
    """Fleet-mean outstanding requests per replica that triggers a new
    replica."""

    scale_up_p95_ttft_seconds: float | None = None
    """Recent-window p95 TTFT that triggers a new replica (None: queue
    depth only)."""

    scale_down_queue_depth: float = 1.0
    """Fleet-mean outstanding requests per replica below which one replica
    starts draining."""

    cooldown_seconds: float = 10.0
    """Minimum virtual time between scaling actions."""

    ttft_window: int = 16
    """Recently finished requests the p95-TTFT signal is computed over."""

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigError("max_replicas must be >= min_replicas")
        if self.scale_up_queue_depth <= self.scale_down_queue_depth:
            raise ConfigError(
                "scale_up_queue_depth must exceed scale_down_queue_depth"
            )
        if (
            self.scale_up_p95_ttft_seconds is not None
            and self.scale_up_p95_ttft_seconds <= 0
        ):
            raise ConfigError("scale_up_p95_ttft_seconds must be > 0")
        if self.cooldown_seconds < 0:
            raise ConfigError("cooldown_seconds must be >= 0")
        if self.ttft_window < 1:
            raise ConfigError("ttft_window must be >= 1")


@dataclass(frozen=True)
class ClusterSpec:
    """Shape of one simulated cluster: replicas, router, store topology.

    Fully picklable — a cluster cell is one
    :class:`~repro.experiments.runner.SimCell` unit, so every field here
    must survive a trip through a process pool.
    """

    replicas: int = 2
    router: str = "round-robin"
    shared_store: bool = False
    """Share one expert-map store across every fMoE replica instead of
    giving each replica a private store."""

    warm: bool = True
    """Warm each replica's policy with the world's profiled traces (a
    cold start lets per-replica stores diverge, which is what
    semantic-affinity routing exploits)."""

    autoscaler: AutoscalerConfig | None = None
    fault_replica: int | None = None
    """Apply the cell's fault schedule to this replica only (None: every
    replica lives on the same degrading fleet)."""

    route_around_device_loss: bool = True
    """Stop routing new requests to a replica that has lost a device
    (router failover); the replica still finishes what it already holds."""

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError("replicas must be >= 1")
        if self.router not in ROUTER_NAMES:
            raise ConfigError(
                f"unknown router {self.router!r}; "
                f"choose from: {', '.join(ROUTER_NAMES)}"
            )
        if self.fault_replica is not None and self.fault_replica < 0:
            raise ConfigError("fault_replica must be >= 0")
