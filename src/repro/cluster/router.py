"""Pluggable request routers for the cluster driver.

Four policies, all pure functions of the routable replica set and the
virtual clock (so a fixed seed replays the same assignment):

- :class:`RoundRobinRouter` — rotate through the routable replicas.
- :class:`LeastOutstandingRouter` — fewest outstanding output tokens wins
  (replica id breaks ties).
- :class:`SemanticAffinityRouter` — fMoE's §5/Fig. 8 insight lifted to
  the fleet: semantically similar prompts activate similar experts, so a
  request embedding is searched against each replica's expert-map store
  and the request lands on the replica that has already seen its semantic
  neighborhood.  Replicas whose stores are empty (or whose policies carry
  no store at all) contribute no signal; when nobody has evidence, or the
  best match is weaker than ``min_score``, routing degrades to
  least-outstanding.
- :class:`CostAwareRouter` — the heterogeneous-fleet router co-designed
  with :mod:`repro.cluster.placement`: each candidate replica is scored
  as estimated fetch-stall (the request's predicted experts that are not
  live-resident in that replica's pool, charged at that replica's
  host-to-device copy time) plus estimated queue wait (outstanding
  tokens x that replica's decode service time); the cheapest estimate
  wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

import numpy as np

from repro.cluster.config import ROUTER_NAMES
from repro.cluster.replica import Replica
from repro.errors import ConfigError
from repro.serving.request import Request
from repro.types import ExpertId


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of one routing choice (replica + why it was picked)."""

    replica: Replica
    reason: str
    """``round-robin`` / ``least-outstanding`` / ``affinity`` /
    ``fallback`` (affinity router with no usable store signal)."""

    score: float = 0.0
    """Best semantic-affinity score (affinity decisions only)."""


class Router(Protocol):
    """Structural interface every cluster routing policy implements."""

    name: str

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """Pick the replica ``request`` is dispatched to at time ``now``."""
        ...


def _least_outstanding(
    replicas: Sequence[Replica], now: float
) -> Replica:
    """Fewest outstanding output tokens; replica id breaks ties."""
    return min(
        replicas,
        key=lambda r: (r.outstanding_tokens(now), r.replica_id),
    )


class RoundRobinRouter:
    """Rotate through the routable replicas in dispatch order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """The next replica in rotation (a pure counter, seed-free)."""
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return RouteDecision(replica, self.name)


class LeastOutstandingRouter:
    """Route to the replica with the fewest outstanding output tokens."""

    name = "least-outstanding"

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """The least-loaded replica at ``now`` (id breaks ties)."""
        return RouteDecision(_least_outstanding(replicas, now), self.name)


class SemanticAffinityRouter:
    """Steer similar prompts to replicas holding their expert maps."""

    name = "semantic-affinity"

    def __init__(self, min_score: float = 0.0) -> None:
        self.min_score = min_score
        self.affinity_decisions = 0
        self.fallback_decisions = 0

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """Best store match above ``min_score``, else least-outstanding.

        Candidates are ranked by (score desc, outstanding asc, id asc),
        so equal evidence falls back to load — affinity concentrates
        locality without starving the rest of the fleet on ties.
        """
        scored: list[tuple[float, int, int, Replica]] = []
        for replica in replicas:
            store = replica.expert_map_store()
            if store is None or len(store) == 0:
                continue
            score = store.best_semantic_score(embedding)
            scored.append(
                (
                    score,
                    replica.outstanding_tokens(now),
                    replica.replica_id,
                    replica,
                )
            )
        if scored:
            scored.sort(key=lambda item: (-item[0], item[1], item[2]))
            best_score, _, _, best = scored[0]
            if best_score >= self.min_score:
                self.affinity_decisions += 1
                return RouteDecision(best, "affinity", float(best_score))
        self.fallback_decisions += 1
        return RouteDecision(
            _least_outstanding(replicas, now), "fallback"
        )


class CostAwareRouter:
    """Score replicas by estimated fetch-stall + queue wait, cheapest wins.

    The demand map (semantic cluster id -> predicted experts, built from
    the same profiled traces the placement optimizer consumed) names what
    the request will likely activate; each replica's *live* pool answers
    what is already resident; the replica's own profile-derived hardware
    prices the difference.  On a heterogeneous fleet this is what sends
    cache-missing work to NVLink-class boxes and keeps slow-PCIe boxes
    on traffic their residency already covers.
    """

    name = "cost-aware"

    def __init__(
        self,
        demand: Mapping[int, Sequence[ExpertId]] | None = None,
    ) -> None:
        self.demand = dict(demand) if demand else {}
        self.cost_decisions = 0
        self.fallback_decisions = 0

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """Cheapest estimated completion start; replica id breaks ties.

        A request whose semantic cluster was never profiled has no
        predicted experts: its stall estimate is zero everywhere and the
        choice degrades to queue wait priced by per-replica decode speed
        (still hardware-aware, unlike plain least-outstanding).
        """
        predicted = self.demand.get(request.cluster, ())
        best: Replica | None = None
        best_score = 0.0
        for replica in replicas:
            pool = replica.engine.pool
            hardware = pool.hardware
            model = pool.model
            stall = 0.0
            if predicted:
                flags = pool.ready_flags(predicted, now)
                missing = sum(1 for ready in flags if not ready)
                stall = missing * hardware.expert_load_seconds(model)
            queue = replica.outstanding_tokens(
                now
            ) * hardware.decode_iteration_floor_seconds(model)
            score = stall + queue
            if best is None or score < best_score:
                best = replica
                best_score = score
        assert best is not None
        if predicted:
            self.cost_decisions += 1
            return RouteDecision(best, self.name, float(best_score))
        self.fallback_decisions += 1
        return RouteDecision(best, "fallback", float(best_score))


def pick_secondary(
    replicas: Sequence[Replica],
    exclude: int,
    now: float,
) -> Replica | None:
    """The hedge/retry target: least-outstanding among the *other* replicas.

    Hedged dispatch wants diversity, not affinity — the whole point of a
    second copy is that it does not share the straggling primary's fate,
    so the secondary always goes to the least-loaded replica that is not
    ``exclude``.  Returns ``None`` when the primary is the only candidate
    (a hedge would just double the straggler's queue).
    """
    others = [r for r in replicas if r.replica_id != exclude]
    if not others:
        return None
    return _least_outstanding(others, now)


def make_router(
    name: str,
    demand: Mapping[int, Sequence[ExpertId]] | None = None,
) -> Router:
    """Instantiate one of the cluster routing policies by name.

    ``demand`` (semantic cluster id -> predicted experts) feeds the
    cost-aware router's stall estimates; the other policies ignore it.
    """
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-outstanding":
        return LeastOutstandingRouter()
    if name == "semantic-affinity":
        return SemanticAffinityRouter()
    if name == "cost-aware":
        return CostAwareRouter(demand)
    raise ConfigError(
        f"unknown router {name!r}; choose from: {', '.join(ROUTER_NAMES)}"
    )
