"""Pluggable request routers for the cluster driver.

Three policies, all pure functions of the routable replica set and the
virtual clock (so a fixed seed replays the same assignment):

- :class:`RoundRobinRouter` — rotate through the routable replicas.
- :class:`LeastOutstandingRouter` — fewest outstanding output tokens wins
  (replica id breaks ties).
- :class:`SemanticAffinityRouter` — fMoE's §5/Fig. 8 insight lifted to
  the fleet: semantically similar prompts activate similar experts, so a
  request embedding is searched against each replica's expert-map store
  and the request lands on the replica that has already seen its semantic
  neighborhood.  Replicas whose stores are empty (or whose policies carry
  no store at all) contribute no signal; when nobody has evidence, or the
  best match is weaker than ``min_score``, routing degrades to
  least-outstanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.cluster.config import ROUTER_NAMES
from repro.cluster.replica import Replica
from repro.errors import ConfigError
from repro.serving.request import Request


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of one routing choice (replica + why it was picked)."""

    replica: Replica
    reason: str
    """``round-robin`` / ``least-outstanding`` / ``affinity`` /
    ``fallback`` (affinity router with no usable store signal)."""

    score: float = 0.0
    """Best semantic-affinity score (affinity decisions only)."""


class Router(Protocol):
    """Structural interface every cluster routing policy implements."""

    name: str

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """Pick the replica ``request`` is dispatched to at time ``now``."""
        ...


def _least_outstanding(
    replicas: Sequence[Replica], now: float
) -> Replica:
    """Fewest outstanding output tokens; replica id breaks ties."""
    return min(
        replicas,
        key=lambda r: (r.outstanding_tokens(now), r.replica_id),
    )


class RoundRobinRouter:
    """Rotate through the routable replicas in dispatch order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """The next replica in rotation (a pure counter, seed-free)."""
        replica = replicas[self._next % len(replicas)]
        self._next += 1
        return RouteDecision(replica, self.name)


class LeastOutstandingRouter:
    """Route to the replica with the fewest outstanding output tokens."""

    name = "least-outstanding"

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """The least-loaded replica at ``now`` (id breaks ties)."""
        return RouteDecision(_least_outstanding(replicas, now), self.name)


class SemanticAffinityRouter:
    """Steer similar prompts to replicas holding their expert maps."""

    name = "semantic-affinity"

    def __init__(self, min_score: float = 0.0) -> None:
        self.min_score = min_score
        self.affinity_decisions = 0
        self.fallback_decisions = 0

    def select(
        self,
        request: Request,
        embedding: np.ndarray,
        replicas: Sequence[Replica],
        now: float,
    ) -> RouteDecision:
        """Best store match above ``min_score``, else least-outstanding.

        Candidates are ranked by (score desc, outstanding asc, id asc),
        so equal evidence falls back to load — affinity concentrates
        locality without starving the rest of the fleet on ties.
        """
        scored: list[tuple[float, int, int, Replica]] = []
        for replica in replicas:
            store = replica.expert_map_store()
            if store is None or len(store) == 0:
                continue
            score = store.best_semantic_score(embedding)
            scored.append(
                (
                    score,
                    replica.outstanding_tokens(now),
                    replica.replica_id,
                    replica,
                )
            )
        if scored:
            scored.sort(key=lambda item: (-item[0], item[1], item[2]))
            best_score, _, _, best = scored[0]
            if best_score >= self.min_score:
                self.affinity_decisions += 1
                return RouteDecision(best, "affinity", float(best_score))
        self.fallback_decisions += 1
        return RouteDecision(
            _least_outstanding(replicas, now), "fallback"
        )


def pick_secondary(
    replicas: Sequence[Replica],
    exclude: int,
    now: float,
) -> Replica | None:
    """The hedge/retry target: least-outstanding among the *other* replicas.

    Hedged dispatch wants diversity, not affinity — the whole point of a
    second copy is that it does not share the straggling primary's fate,
    so the secondary always goes to the least-loaded replica that is not
    ``exclude``.  Returns ``None`` when the primary is the only candidate
    (a hedge would just double the straggler's queue).
    """
    others = [r for r in replicas if r.replica_id != exclude]
    if not others:
        return None
    return _least_outstanding(others, now)


def make_router(name: str) -> Router:
    """Instantiate one of the cluster routing policies by name."""
    if name == "round-robin":
        return RoundRobinRouter()
    if name == "least-outstanding":
        return LeastOutstandingRouter()
    if name == "semantic-affinity":
        return SemanticAffinityRouter()
    raise ConfigError(
        f"unknown router {name!r}; choose from: {', '.join(ROUTER_NAMES)}"
    )
