"""Multi-replica cluster serving simulation (fleet-level fMoE).

The paper evaluates one serving instance; this package scales the same
simulation out to a fleet: N independent engine replicas on one shared
virtual clock, pluggable routers (round-robin, least-outstanding,
semantic-affinity routing against per-replica expert-map stores, and
cost-aware routing priced by per-replica hardware), an optional
drain-before-kill autoscaler (with a price-aware SLO-per-dollar drain
policy), per-replica hardware profiles, an expert-placement layer
(:mod:`repro.cluster.placement`), and cluster-level metrics — including
the affinity hit rate, load-imbalance coefficient, and SLO-per-dollar
figures the router and fleet experiments report.
"""

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.config import (
    AutoscalerConfig,
    ClusterSpec,
    PLACEMENT_NAMES,
    REPLICA_PROFILES,
    ReplicaProfile,
    ResilienceConfig,
    ROUTER_NAMES,
    get_profile,
)
from repro.cluster.driver import ClusterDriver, run_cluster
from repro.cluster.metrics import (
    BreakerTransition,
    ClusterReport,
    DispatchRecord,
    FleetReport,
    RecoveryEvent,
    ReplicaSummary,
    RequestOutcome,
    ResilienceReport,
    ScaleEvent,
    cluster_report_to_dict,
    cluster_report_to_json,
)
from repro.cluster.placement import (
    ClusterDemand,
    PlacementPlan,
    ReplicaCost,
    build_plan,
    check_plan,
    demand_from_traces,
    replica_costs,
)
from repro.cluster.replica import Replica
from repro.cluster.resilience import (
    RUNG_NAMES,
    CircuitBreaker,
    DegradationLadder,
    DispatchBudget,
    TokenBucket,
)
from repro.cluster.router import (
    CostAwareRouter,
    LeastOutstandingRouter,
    RoundRobinRouter,
    RouteDecision,
    Router,
    SemanticAffinityRouter,
    make_router,
    pick_secondary,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "ClusterDemand",
    "ClusterDriver",
    "ClusterReport",
    "ClusterSpec",
    "CostAwareRouter",
    "DegradationLadder",
    "DispatchBudget",
    "DispatchRecord",
    "FleetReport",
    "LeastOutstandingRouter",
    "PLACEMENT_NAMES",
    "PlacementPlan",
    "RecoveryEvent",
    "ReplicaSummary",
    "Replica",
    "ReplicaCost",
    "ReplicaProfile",
    "REPLICA_PROFILES",
    "RequestOutcome",
    "ResilienceConfig",
    "ResilienceReport",
    "ROUTER_NAMES",
    "RoundRobinRouter",
    "RouteDecision",
    "Router",
    "RUNG_NAMES",
    "ScaleEvent",
    "SemanticAffinityRouter",
    "TokenBucket",
    "build_plan",
    "check_plan",
    "cluster_report_to_dict",
    "cluster_report_to_json",
    "demand_from_traces",
    "get_profile",
    "make_router",
    "pick_secondary",
    "replica_costs",
    "run_cluster",
]
