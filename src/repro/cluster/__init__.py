"""Multi-replica cluster serving simulation (fleet-level fMoE).

The paper evaluates one serving instance; this package scales the same
simulation out to a fleet: N independent engine replicas on one shared
virtual clock, pluggable routers (round-robin, least-outstanding, and
semantic-affinity routing against per-replica expert-map stores), an
optional drain-before-kill autoscaler, and cluster-level metrics —
including the affinity hit rate and load-imbalance coefficient the
router comparison experiment reports.
"""

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.config import AutoscalerConfig, ClusterSpec, ROUTER_NAMES
from repro.cluster.driver import ClusterDriver, run_cluster
from repro.cluster.metrics import (
    ClusterReport,
    ReplicaSummary,
    ScaleEvent,
    cluster_report_to_dict,
    cluster_report_to_json,
)
from repro.cluster.replica import Replica
from repro.cluster.router import (
    LeastOutstandingRouter,
    RoundRobinRouter,
    RouteDecision,
    Router,
    SemanticAffinityRouter,
    make_router,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ClusterDriver",
    "ClusterReport",
    "ClusterSpec",
    "LeastOutstandingRouter",
    "ROUTER_NAMES",
    "Replica",
    "ReplicaSummary",
    "RoundRobinRouter",
    "RouteDecision",
    "Router",
    "ScaleEvent",
    "SemanticAffinityRouter",
    "cluster_report_to_dict",
    "cluster_report_to_json",
    "make_router",
    "run_cluster",
]
