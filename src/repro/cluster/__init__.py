"""Multi-replica cluster serving simulation (fleet-level fMoE).

The paper evaluates one serving instance; this package scales the same
simulation out to a fleet: N independent engine replicas on one shared
virtual clock, pluggable routers (round-robin, least-outstanding, and
semantic-affinity routing against per-replica expert-map stores), an
optional drain-before-kill autoscaler, and cluster-level metrics —
including the affinity hit rate and load-imbalance coefficient the
router comparison experiment reports.
"""

from repro.cluster.autoscaler import Autoscaler
from repro.cluster.config import (
    AutoscalerConfig,
    ClusterSpec,
    ResilienceConfig,
    ROUTER_NAMES,
)
from repro.cluster.driver import ClusterDriver, run_cluster
from repro.cluster.metrics import (
    BreakerTransition,
    ClusterReport,
    DispatchRecord,
    RecoveryEvent,
    ReplicaSummary,
    RequestOutcome,
    ResilienceReport,
    ScaleEvent,
    cluster_report_to_dict,
    cluster_report_to_json,
)
from repro.cluster.replica import Replica
from repro.cluster.resilience import (
    RUNG_NAMES,
    CircuitBreaker,
    DegradationLadder,
    DispatchBudget,
    TokenBucket,
)
from repro.cluster.router import (
    LeastOutstandingRouter,
    RoundRobinRouter,
    RouteDecision,
    Router,
    SemanticAffinityRouter,
    make_router,
    pick_secondary,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "ClusterDriver",
    "ClusterReport",
    "ClusterSpec",
    "DegradationLadder",
    "DispatchBudget",
    "DispatchRecord",
    "LeastOutstandingRouter",
    "RecoveryEvent",
    "ReplicaSummary",
    "Replica",
    "RequestOutcome",
    "ResilienceConfig",
    "ResilienceReport",
    "ROUTER_NAMES",
    "RoundRobinRouter",
    "RouteDecision",
    "Router",
    "RUNG_NAMES",
    "ScaleEvent",
    "SemanticAffinityRouter",
    "TokenBucket",
    "cluster_report_to_dict",
    "cluster_report_to_json",
    "make_router",
    "pick_secondary",
    "run_cluster",
]
