"""Expert-placement layer: which experts live resident on which replica.

fMoE's fine-grained offloading decides *when* to move experts on one box;
on a heterogeneous fleet the dominant knob becomes *where* expert weights
start out resident.  This module turns the world's profiled routing
history into per-semantic-cluster expert demand, and builds a
:class:`PlacementPlan` — one residency set per replica, sized to that
replica's expert-cache budget — under a cost model that weighs fetch
stalls (misses x that replica's host-to-device copy time) against
queueing delay (assigned tokens x that replica's decode service time).

Two strategies:

- ``uniform`` — every replica pins the globally most popular experts, the
  natural baseline: identical caches, no coordination.
- ``cost-aware`` — greedy seeding assigns whole semantic clusters to the
  replica with the cheapest incremental cost, then hill-climb swaps move
  clusters between replicas while the total cost strictly improves.  The
  optimizer co-designs with the ``cost-aware`` router: both score a
  replica as estimated fetch-stall plus queue wait from its
  :class:`~repro.cluster.config.ReplicaProfile`-derived hardware.

Everything here is a pure function of the profiled traces, the fleet
spec, and the budgets — no RNG — so placement is deterministic at equal
seeds and the jobs=N parity law extends to fleet cells for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cluster.config import ClusterSpec
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.serving.hardware import HardwareConfig
from repro.types import ExpertId
from repro.workloads.profiler import RequestTrace

#: Hill-climb rounds are bounded at ``_MAX_ROUNDS_PER_CLUSTER x clusters``
#: so optimization cost stays linear-ish in workload size.
_MAX_ROUNDS_PER_CLUSTER = 4


@dataclass(frozen=True)
class ClusterDemand:
    """Aggregated expert demand of one semantic request cluster."""

    cluster: int
    weights: tuple[tuple[ExpertId, float], ...]
    """Per-expert activation mass, sorted by (-weight, layer, expert)."""

    tokens: float
    """Decode tokens this cluster contributed in the profiled traces."""

    requests: int

    @property
    def total_weight(self) -> float:
        return sum(w for _, w in self.weights)

    def expert_set(self) -> frozenset[ExpertId]:
        """The distinct experts this cluster's requests activated."""
        return frozenset(e for e, _ in self.weights)


def demand_from_traces(
    traces: Sequence[RequestTrace],
) -> tuple[ClusterDemand, ...]:
    """Fold profiled routing history into per-cluster expert demand.

    The ``request.cluster`` topic id is the same key the probe model's
    embeddings and the semantic-affinity router key on, so demand built
    here predicts exactly what the router will see at serve time.
    """
    weights: dict[int, dict[ExpertId, float]] = {}
    tokens: dict[int, float] = {}
    requests: dict[int, int] = {}
    for trace in traces:
        cid = trace.request.cluster
        bucket = weights.setdefault(cid, {})
        tokens[cid] = tokens.get(cid, 0.0) + float(
            trace.request.output_tokens
        )
        requests[cid] = requests.get(cid, 0) + 1
        for activated in trace.iteration_activated:
            for layer, experts in enumerate(activated):
                for expert in experts:
                    eid = ExpertId(layer, int(expert))
                    bucket[eid] = bucket.get(eid, 0.0) + 1.0
    demands = []
    for cid in sorted(weights):
        ordered = tuple(
            sorted(
                weights[cid].items(),
                key=lambda item: (-item[1], item[0].layer, item[0].expert),
            )
        )
        demands.append(
            ClusterDemand(
                cluster=cid,
                weights=ordered,
                tokens=tokens[cid],
                requests=requests[cid],
            )
        )
    return tuple(demands)


def global_popularity(
    demands: Sequence[ClusterDemand],
) -> tuple[tuple[ExpertId, float], ...]:
    """Fleet-wide expert popularity, sorted by (-weight, layer, expert)."""
    totals: dict[ExpertId, float] = {}
    for demand in demands:
        for expert, weight in demand.weights:
            totals[expert] = totals.get(expert, 0.0) + weight
    return tuple(
        sorted(
            totals.items(),
            key=lambda item: (-item[1], item[0].layer, item[0].expert),
        )
    )


@dataclass(frozen=True)
class ReplicaCost:
    """Latency constants of one replica, derived from its profile."""

    replica_id: int
    expert_load_seconds: float
    """Host-to-device copy time of one expert on this replica."""

    decode_token_seconds: float
    """All-resident decode service time per output token."""

    capacity_slots: int
    """Expert slots this replica's scaled cache budget holds."""

    dollars_per_hour: float
    spot: bool


def replica_costs(
    spec: ClusterSpec,
    model: MoEModelConfig,
    base_hardware: HardwareConfig,
    cache_budget_bytes: int,
    replicas: int | None = None,
) -> tuple[ReplicaCost, ...]:
    """Derive per-replica latency/capacity constants for the cost model."""
    count = spec.replicas if replicas is None else replicas
    costs = []
    for rid in range(count):
        profile = spec.profile_for(rid)
        hardware = profile.apply(base_hardware)
        # Mirror the driver's per-replica budget exactly (including the
        # one-expert-per-GPU floor) so plan capacities describe the pool
        # the experts will actually be preloaded into.
        budget = max(
            profile.scale_budget(cache_budget_bytes),
            hardware.num_gpus * model.expert_bytes,
        )
        per_device = budget // hardware.num_gpus
        slots = hardware.num_gpus * (per_device // model.expert_bytes)
        costs.append(
            ReplicaCost(
                replica_id=rid,
                expert_load_seconds=hardware.expert_load_seconds(model),
                decode_token_seconds=(
                    hardware.decode_iteration_floor_seconds(model)
                ),
                capacity_slots=slots,
                dollars_per_hour=profile.dollars_per_hour,
                spot=profile.spot,
            )
        )
    return tuple(costs)


@dataclass(frozen=True)
class PlacementPlan:
    """Expert -> replica residency sets plus the cost-model audit trail."""

    strategy: str
    residency: tuple[tuple[ExpertId, ...], ...]
    """Per-replica experts to pre-warm resident, each within capacity."""

    capacities: tuple[int, ...]
    """Per-replica expert-slot capacity the residency sets were sized to."""

    cluster_assignment: tuple[tuple[int, int], ...] = ()
    """(semantic cluster id, replica id) pairs chosen by the optimizer
    (empty for strategies that do not assign clusters)."""

    cost: float = 0.0
    """Modelled fetch-stall + queueing cost of this plan."""

    seed_cost: float = 0.0
    """Cost of the greedy seed before hill-climb (equals ``cost`` for
    non-optimizing strategies)."""

    unplaced: tuple[ExpertId, ...] = ()
    """Demanded experts resident on no replica; they are still servable —
    the pool fetches them on demand — but each fetch pays the full
    host-to-device stall the cost model charges."""

    def resident_anywhere(self) -> frozenset[ExpertId]:
        """Every expert resident on at least one replica under this plan."""
        out: set[ExpertId] = set()
        for experts in self.residency:
            out.update(experts)
        return frozenset(out)


def check_plan(plan: PlacementPlan) -> list[str]:
    """Validity audit: capacity and duplicate violations (empty = valid).

    This is the detector the ``placement-overcommit`` mutant screen
    relies on: a plan that ignores the per-replica VRAM budget must be
    flagged here before it ever reaches a pool preload.
    """
    violations: list[str] = []
    if len(plan.residency) != len(plan.capacities):
        violations.append(
            "residency/capacity length mismatch: "
            f"{len(plan.residency)} != {len(plan.capacities)}"
        )
        return violations
    for rid, (experts, capacity) in enumerate(
        zip(plan.residency, plan.capacities)
    ):
        if len(experts) > capacity:
            violations.append(
                f"replica {rid} overcommitted: {len(experts)} experts "
                f"placed into {capacity} slots"
            )
        if len(set(experts)) != len(experts):
            violations.append(f"replica {rid} residency has duplicates")
    return violations


# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #


def _uniform_plan(
    demands: Sequence[ClusterDemand], costs: Sequence[ReplicaCost]
) -> PlacementPlan:
    """Pin the globally most popular experts identically on every replica."""
    popularity = global_popularity(demands)
    residency = tuple(
        tuple(e for e, _ in popularity[: cost.capacity_slots])
        for cost in costs
    )
    placed = set()
    for experts in residency:
        placed.update(experts)
    unplaced = tuple(
        sorted(
            (e for e, _ in popularity if e not in placed),
            key=lambda e: (e.layer, e.expert),
        )
    )
    cost = _assignment_cost(
        _greedy_assignment(demands, costs, residency), demands, costs,
        residency,
    )
    return PlacementPlan(
        strategy="uniform",
        residency=residency,
        capacities=tuple(c.capacity_slots for c in costs),
        cost=cost,
        seed_cost=cost,
        unplaced=unplaced,
    )


@dataclass
class _Assignment:
    """Mutable optimizer state: cluster -> replica plus per-replica load."""

    replica_of: dict[int, int] = field(default_factory=dict)
    tokens: dict[int, float] = field(default_factory=dict)


def _residency_for(
    assignment: Mapping[int, int],
    demands: Sequence[ClusterDemand],
    costs: Sequence[ReplicaCost],
) -> tuple[tuple[ExpertId, ...], ...]:
    """Residency sets implied by a cluster assignment.

    Each replica pins its clusters' experts by descending weight up to
    capacity, then backfills leftover slots from global popularity — so
    a lightly loaded replica still warms the fleet-wide hot set.
    """
    by_replica: dict[int, dict[ExpertId, float]] = {
        c.replica_id: {} for c in costs
    }
    for demand in demands:
        rid = assignment.get(demand.cluster)
        if rid is None:
            continue
        bucket = by_replica[rid]
        for expert, weight in demand.weights:
            bucket[expert] = bucket.get(expert, 0.0) + weight
    popularity = global_popularity(demands)
    residency = []
    for cost in costs:
        bucket = by_replica[cost.replica_id]
        ordered = [
            e
            for e, _ in sorted(
                bucket.items(),
                key=lambda item: (-item[1], item[0].layer, item[0].expert),
            )
        ]
        chosen = ordered[: cost.capacity_slots]
        if len(chosen) < cost.capacity_slots:
            have = set(chosen)
            for expert, _ in popularity:
                if len(chosen) >= cost.capacity_slots:
                    break
                if expert not in have:
                    chosen.append(expert)
                    have.add(expert)
        residency.append(tuple(chosen))
    return tuple(residency)


def _assignment_cost(
    assignment: Mapping[int, int],
    demands: Sequence[ClusterDemand],
    costs: Sequence[ReplicaCost],
    residency: Sequence[Sequence[ExpertId]] | None = None,
) -> float:
    """Total modelled cost of an assignment.

    Fetch stalls: each cluster's activation mass on experts *not*
    resident on its replica, charged at that replica's per-expert copy
    time.  Queueing: per-replica assigned tokens x decode service time,
    squared — the convex term is what makes the hill-climb spread load
    instead of piling every cluster on the fastest box.
    """
    if residency is None:
        residency = _residency_for(assignment, demands, costs)
    resident = [set(r) for r in residency]
    stall = 0.0
    tokens = [0.0] * len(costs)
    for demand in demands:
        rid = assignment.get(demand.cluster)
        if rid is None:
            continue
        miss = sum(
            weight
            for expert, weight in demand.weights
            if expert not in resident[rid]
        )
        stall += miss * costs[rid].expert_load_seconds
        tokens[rid] += demand.tokens
    queue = sum(
        (tokens[i] * costs[i].decode_token_seconds) ** 2
        for i in range(len(costs))
    )
    return stall + queue


def _greedy_assignment(
    demands: Sequence[ClusterDemand],
    costs: Sequence[ReplicaCost],
    fixed_residency: Sequence[Sequence[ExpertId]] | None = None,
) -> dict[int, int]:
    """Greedy seed: heaviest clusters first, cheapest replica each.

    With ``fixed_residency`` (the uniform plan's identical caches) the
    choice only balances queueing; without it, the incremental cost also
    counts the misses the replica's evolving cache would take.
    """
    assignment: dict[int, int] = {}
    resident: list[set[ExpertId]] = [set() for _ in costs]
    slots = [c.capacity_slots for c in costs]
    if fixed_residency is not None:
        resident = [set(r) for r in fixed_residency]
        slots = [0 for _ in costs]
    tokens = [0.0] * len(costs)
    order = sorted(
        demands, key=lambda d: (-d.total_weight, d.cluster)
    )
    for demand in order:
        best_rid = 0
        best_score = None
        for cost in costs:
            rid = cost.replica_id
            miss = sum(
                weight
                for expert, weight in demand.weights
                if expert not in resident[rid]
            )
            free = slots[rid] - len(resident[rid])
            if free > 0:
                # The replica would absorb this cluster's hot experts.
                absorbable = sum(
                    weight
                    for expert, weight in demand.weights[:free]
                    if expert not in resident[rid]
                )
                miss = max(miss - absorbable, 0.0)
            new_tokens = tokens[rid] + demand.tokens
            score = (
                miss * cost.expert_load_seconds
                + (new_tokens * cost.decode_token_seconds) ** 2
            )
            if best_score is None or score < best_score:
                best_score = score
                best_rid = rid
        assignment[demand.cluster] = best_rid
        tokens[best_rid] += demand.tokens
        if slots[best_rid] > len(resident[best_rid]):
            free = slots[best_rid] - len(resident[best_rid])
            for expert, _ in demand.weights[:free]:
                resident[best_rid].add(expert)
    return assignment


def _hill_climb(
    assignment: dict[int, int],
    demands: Sequence[ClusterDemand],
    costs: Sequence[ReplicaCost],
) -> tuple[dict[int, int], float, float]:
    """Move clusters between replicas while total cost strictly improves.

    Best-improvement per round, deterministic tie-breaks, bounded rounds;
    the accept-only-strict-improvement rule is what the property suite
    pins as ``plan.cost <= plan.seed_cost``.
    """
    seed_cost = _assignment_cost(assignment, demands, costs)
    current = dict(assignment)
    current_cost = seed_cost
    max_rounds = max(1, _MAX_ROUNDS_PER_CLUSTER * len(demands))
    for _ in range(max_rounds):
        best_move: tuple[int, int] | None = None
        best_cost = current_cost
        for demand in demands:
            home = current[demand.cluster]
            for cost in costs:
                rid = cost.replica_id
                if rid == home:
                    continue
                trial = dict(current)
                trial[demand.cluster] = rid
                trial_cost = _assignment_cost(trial, demands, costs)
                if trial_cost < best_cost:
                    best_cost = trial_cost
                    best_move = (demand.cluster, rid)
        if best_move is None:
            break
        current[best_move[0]] = best_move[1]
        current_cost = best_cost
    return current, current_cost, seed_cost


def _cost_aware_plan(
    demands: Sequence[ClusterDemand], costs: Sequence[ReplicaCost]
) -> PlacementPlan:
    seed = _greedy_assignment(demands, costs)
    assignment, cost, seed_cost = _hill_climb(seed, demands, costs)
    residency = _residency_for(assignment, demands, costs)
    placed = set()
    for experts in residency:
        placed.update(experts)
    demanded: set[ExpertId] = set()
    for demand in demands:
        demanded.update(demand.expert_set())
    unplaced = tuple(
        sorted(demanded - placed, key=lambda e: (e.layer, e.expert))
    )
    return PlacementPlan(
        strategy="cost-aware",
        residency=residency,
        capacities=tuple(c.capacity_slots for c in costs),
        cluster_assignment=tuple(sorted(assignment.items())),
        cost=cost,
        seed_cost=seed_cost,
        unplaced=unplaced,
    )


def build_plan(
    strategy: str,
    traces: Sequence[RequestTrace],
    spec: ClusterSpec,
    model: MoEModelConfig,
    base_hardware: HardwareConfig,
    cache_budget_bytes: int,
) -> PlacementPlan:
    """Build a placement plan for a fleet from profiled routing history."""
    costs = replica_costs(spec, model, base_hardware, cache_budget_bytes)
    demands = demand_from_traces(traces)
    if strategy == "uniform":
        return _uniform_plan(demands, costs)
    if strategy == "cost-aware":
        return _cost_aware_plan(demands, costs)
    raise ConfigError(f"unknown placement strategy {strategy!r}")
