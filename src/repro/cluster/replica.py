"""One cluster replica: an engine plus its dispatch-side bookkeeping.

A :class:`Replica` wraps one independent :class:`ServingEngine` (its own
model instance, expert pool, and policy) and tracks what the *router*
needs to know about it: how much routed work is still outstanding at any
virtual time, whether the replica is draining, and whether it has lost a
device.  Serving is eager — a routed request runs to completion on the
replica's private timeline immediately — which is sound because replicas
are independent machines and routing decisions only ever depend on work
dispatched at earlier arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import REPLICA_PROFILES, ReplicaProfile
from repro.serving.engine import ServingEngine
from repro.serving.metrics import ServingReport
from repro.serving.request import Request


@dataclass
class _Outstanding:
    """One routed-but-unfinished request on a replica's timeline."""

    finish_time: float
    output_tokens: int
    request: Request | None = None
    """Retained so a crash can hand the in-flight requests back to the
    driver for failover re-dispatch."""


class Replica:
    """One engine replica and the routing-visible state around it."""

    def __init__(
        self,
        replica_id: int,
        engine: ServingEngine,
        profile: ReplicaProfile | None = None,
    ) -> None:
        self.replica_id = replica_id
        self.engine = engine
        self.profile = profile or REPLICA_PROFILES["baseline"]
        """Hardware/pricing profile this replica was spawned with; the
        baseline profile when the fleet is homogeneous."""
        self.report = ServingReport(policy_name=engine.policy.name)
        self._retries_before = engine.pool.total_retries()
        self.assigned = 0
        self.draining = False
        self.retired = False
        self.crashed = False
        self.crashed_at: float | None = None
        self.spawned_at = 0.0
        self._outstanding: list[_Outstanding] = []
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Routing-visible state
    # ------------------------------------------------------------------ #

    def outstanding_requests(self, now: float) -> int:
        """Routed requests not yet finished at virtual time ``now``."""
        self._prune(now)
        return len(self._outstanding)

    def outstanding_tokens(self, now: float) -> int:
        """Output tokens of routed-but-unfinished requests at ``now``."""
        self._prune(now)
        return sum(o.output_tokens for o in self._outstanding)

    def _prune(self, now: float) -> None:
        """Drop outstanding entries whose requests finished by ``now``."""
        self._outstanding = [
            o for o in self._outstanding if o.finish_time > now
        ]

    @property
    def device_failures(self) -> int:
        """Whole-GPU losses this replica has absorbed so far."""
        return self.report.device_failures

    def expert_map_store(self):
        """The policy's :class:`ExpertMapStore` (None for storeless ones)."""
        return getattr(self.engine.policy, "store", None)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #

    def serve(self, request: Request) -> float | None:
        """Serve one routed request on this replica's own timeline.

        The engine idles until the request's arrival if the replica is
        free, or queues it behind in-flight work otherwise; overdue
        requests are shed under the engine's SLO.  Returns the finish
        time, or ``None`` when the request was shed.
        """
        self.assigned += 1
        served = self.engine.serve_step(
            [request], self.report, respect_arrivals=True
        )
        if not served:
            return None
        finish = self.engine.now
        self._outstanding.append(
            _Outstanding(finish, request.output_tokens, request)
        )
        return finish

    def crash(self, at: float) -> list[Request]:
        """Kill this replica at virtual ``at``; returns in-flight requests.

        Work already finished by ``at`` stands; everything still in
        flight is lost and handed back for failover re-dispatch.  The
        replica leaves the fleet permanently — a restart spawns a fresh
        replica id.  The engine's report is deliberately left untouched:
        the compute the doomed serves burned is real machine work and
        stays visible in the aggregate, while request-level truth lives
        in the driver's outcome records.
        """
        self._prune(at)
        lost = [o.request for o in self._outstanding if o.request is not None]
        self._outstanding = []
        self.crashed = True
        self.crashed_at = at
        self.draining = True
        self.retired = True
        return lost

    def finalize(self) -> ServingReport:
        """Stamp run-level counters onto this replica's report (idempotent)."""
        if not self._finalized:
            self._finalized = True
            self.engine.finalize_report(self.report, self._retries_before)
        return self.report
