"""The expert map data structure (paper §4.1).

An expert map records, for one inference iteration, the gate network's
probability distribution over experts at every layer:

    map_i = { P_1, ..., P_L },   P_l ∈ R^J,  Σ_j p_lj = 1.

Unlike request-level hit counts (MoE-Infinity's Expert Activation Matrix),
an expert map preserves both the iteration granularity and the gate's full
confidence information.  The coarse view is recoverable: applying a top-K
operator per layer and summing over iterations reproduces activation
counts, so the structure strictly generalizes prior trackers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class ExpertMap:
    """Per-iteration gate probability distributions, shape ``(L, J)``."""

    __slots__ = ("_data",)

    def __init__(self, distributions: np.ndarray, validate: bool = True) -> None:
        data = np.asarray(distributions, dtype=np.float32)
        if data.ndim != 2:
            raise ConfigError(
                f"expert map must be 2-D (L, J); got shape {data.shape}"
            )
        if validate:
            if np.any(data < -1e-6):
                raise ConfigError("expert map probabilities must be >= 0")
            sums = data.sum(axis=1)
            if not np.allclose(sums, 1.0, atol=1e-3):
                raise ConfigError(
                    "each expert map row must sum to 1 "
                    f"(row sums range {sums.min():.4f}..{sums.max():.4f})"
                )
        self._data = data

    # ------------------------------------------------------------------ #
    # Shape / access
    # ------------------------------------------------------------------ #

    @property
    def num_layers(self) -> int:
        return self._data.shape[0]

    @property
    def num_experts(self) -> int:
        return self._data.shape[1]

    @property
    def data(self) -> np.ndarray:
        """The underlying ``(L, J)`` float32 array (read as a view)."""
        return self._data

    def layer(self, layer: int) -> np.ndarray:
        """Probability distribution of one layer, shape ``(J,)``."""
        if not 0 <= layer < self.num_layers:
            raise ConfigError(
                f"layer {layer} out of range [0, {self.num_layers})"
            )
        return self._data[layer]

    # ------------------------------------------------------------------ #
    # Views used by matching
    # ------------------------------------------------------------------ #

    def prefix(self, num_layers: int) -> np.ndarray:
        """First ``num_layers`` layers flattened, shape ``(num_layers*J,)``.

        The trajectory feature the paper compares with Eq. 5.
        """
        if not 0 <= num_layers <= self.num_layers:
            raise ConfigError(
                f"prefix length {num_layers} out of range "
                f"[0, {self.num_layers}]"
            )
        return self._data[:num_layers].ravel()

    def flattened(self) -> np.ndarray:
        """All layers flattened, shape ``(L*J,)``."""
        return self._data.ravel()

    # ------------------------------------------------------------------ #
    # Coarse-view recovery (generalization claim of §4.1)
    # ------------------------------------------------------------------ #

    def top_k(self, k: int) -> list[np.ndarray]:
        """Per-layer top-``k`` expert indices (sorted ascending)."""
        if not 1 <= k <= self.num_experts:
            raise ConfigError(f"k must be in [1, {self.num_experts}]")
        out = []
        for layer in range(self.num_layers):
            part = np.argpartition(self._data[layer], -k)[-k:]
            out.append(np.sort(part))
        return out

    def activation_counts(self, k: int) -> np.ndarray:
        """Binary activation grid from the top-``k`` recovery operator."""
        counts = np.zeros_like(self._data)
        for layer, experts in enumerate(self.top_k(k)):
            counts[layer, experts] = 1.0
        return counts

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #

    @property
    def nbytes(self) -> int:
        """CPU memory footprint of this map (float32 storage)."""
        return self._data.nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExpertMap):
            return NotImplemented
        return np.array_equal(self._data, other._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExpertMap(L={self.num_layers}, J={self.num_experts})"


def aggregate_maps(maps: list[ExpertMap], k: int) -> np.ndarray:
    """Request-level activation counts from iteration maps.

    This is exactly the coarse-grained aggregation existing trackers use;
    the paper's Fig. 3 contrasts its entropy against individual maps.
    """
    if not maps:
        raise ConfigError("need at least one map to aggregate")
    total = np.zeros((maps[0].num_layers, maps[0].num_experts))
    for m in maps:
        total += m.activation_counts(k)
    return total
