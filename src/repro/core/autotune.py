"""Prefetch-distance auto-tuning.

The paper profiles each model to pick the prefetch distance (d=3 for all
three evaluated models, §6.1/§6.6).  The trade-off it balances:

- *coverage*: a prefetch issued ``d`` layers early has ``d`` layers of
  compute time to hide one expert copy — too small a ``d`` leaves the copy
  on the critical path;
- *accuracy*: trajectory predictions degrade with distance (Fig. 4).

This module reproduces that profiling step as an offline procedure:
prediction accuracy comes from the tracker evaluation on profiled traces,
coverage from the hardware latency model, and the tuner picks the distance
maximizing their product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tracking import evaluate_fine_grained
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.serving.hardware import DEFAULT_HARDWARE, HardwareConfig
from repro.workloads.profiler import RequestTrace


@dataclass(frozen=True)
class DistanceScore:
    """Profiling outcome for one candidate distance."""

    distance: int
    hit_rate: float
    coverage: float

    @property
    def utility(self) -> float:
        return self.hit_rate * self.coverage


@dataclass(frozen=True)
class TuneResult:
    best_distance: int
    scores: tuple[DistanceScore, ...]


def transfer_coverage(
    config: MoEModelConfig,
    hardware: HardwareConfig,
    distance: int,
    matcher_seconds: float = 2.5e-3,
) -> float:
    """Fraction of the match-then-copy pipeline hidden by ``distance``
    layers of decode compute.

    A prefetch for layer ``l+d`` is produced by the asynchronous matcher
    (``matcher_seconds``) and then crosses PCIe; the window available to
    hide both is ``d`` layers of the all-resident decode layer time (base +
    top-K expert reads) — the conservative case, since misses only widen
    the real window.  This is the §6.6 effect: small distances "cannot
    perfectly hide the system delay, such as the map matching and expert
    prefetching".
    """
    if distance < 1:
        raise ConfigError("distance must be >= 1")
    if matcher_seconds < 0:
        raise ConfigError("matcher_seconds must be >= 0")
    layer_seconds = hardware.decode_layer_base_seconds(
        config
    ) + config.top_k * hardware.decode_expert_seconds(config)
    window = distance * layer_seconds
    needed = hardware.expert_load_seconds(config) + matcher_seconds
    if needed <= 0:
        return 1.0
    return min(1.0, window / needed)


def tune_prefetch_distance(
    config: MoEModelConfig,
    warm_traces: Sequence[RequestTrace],
    probe_traces: Sequence[RequestTrace],
    candidates: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    hardware: HardwareConfig = DEFAULT_HARDWARE,
    store_capacity: int = 1024,
) -> TuneResult:
    """Pick the distance maximizing accuracy × coverage."""
    if not candidates:
        raise ConfigError("need at least one candidate distance")
    scores = []
    for distance in candidates:
        if distance > config.num_layers:
            continue
        hit = evaluate_fine_grained(
            config,
            warm_traces,
            probe_traces,
            distance=distance,
            capacity=store_capacity,
        ).hit_rate
        scores.append(
            DistanceScore(
                distance=distance,
                hit_rate=hit,
                coverage=transfer_coverage(config, hardware, distance),
            )
        )
    if not scores:
        raise ConfigError("no candidate distance fits the model")
    best = max(scores, key=lambda s: (s.utility, -s.distance))
    return TuneResult(best_distance=best.distance, scores=tuple(scores))
