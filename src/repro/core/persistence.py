"""Persistence for expert-map stores and profiled histories.

A production deployment keeps the Expert Map Store across restarts (the
paper's offline setting assumes a pre-warmed store) and ships profiled
routing history between machines.  Both are plain NumPy payloads, stored
as compressed ``.npz`` archives with a format-version field so future
layouts can evolve safely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.serving.request import Request
from repro.workloads.profiler import RequestTrace

STORE_FORMAT_VERSION = 1
TRACES_FORMAT_VERSION = 1


def save_store(store: ExpertMapStore, path: str | Path) -> None:
    """Write a store (records + configuration) to a ``.npz`` archive."""
    path = Path(path)
    size = len(store)
    embeddings = np.stack(
        [store.record(i).embedding for i in range(size)]
    ) if size else np.zeros((0, store.embedding_dim), dtype=np.float32)
    maps = np.stack(
        [store.record(i).expert_map for i in range(size)]
    ) if size else np.zeros(
        (0, store.num_layers, store.num_experts), dtype=np.float32
    )
    meta = {
        "version": STORE_FORMAT_VERSION,
        "capacity": store.capacity,
        "num_layers": store.num_layers,
        "num_experts": store.num_experts,
        "embedding_dim": store.embedding_dim,
        "prefetch_distance": store.prefetch_distance,
        "total_added": store.total_added,
    }
    np.savez_compressed(
        path,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        embeddings=embeddings,
        maps=maps,
    )


def load_store(path: str | Path) -> ExpertMapStore:
    """Rebuild a store from a ``.npz`` archive written by :func:`save_store`."""
    path = Path(path)
    with np.load(path) as payload:
        meta = json.loads(bytes(payload["meta"].tobytes()).decode())
        if meta.get("version") != STORE_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported store format version {meta.get('version')!r}"
            )
        store = ExpertMapStore(
            capacity=meta["capacity"],
            num_layers=meta["num_layers"],
            num_experts=meta["num_experts"],
            embedding_dim=meta["embedding_dim"],
            prefetch_distance=meta["prefetch_distance"],
        )
        embeddings = payload["embeddings"]
        maps = payload["maps"]
    for embedding, expert_map in zip(embeddings, maps):
        store.add(embedding, expert_map)
    return store


def save_traces(traces: Sequence[RequestTrace], path: str | Path) -> None:
    """Write profiled request traces to a ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {}
    records = []
    for i, trace in enumerate(traces):
        records.append(
            {
                "request_id": trace.request.request_id,
                "cluster": trace.request.cluster,
                "input_tokens": trace.request.input_tokens,
                "output_tokens": trace.request.output_tokens,
                "arrival_time": trace.request.arrival_time,
                "seed": trace.request.seed,
                "iterations": len(trace.iteration_maps),
            }
        )
        arrays[f"emb_{i}"] = trace.embedding
        arrays[f"maps_{i}"] = np.stack(trace.iteration_maps)
        arrays[f"logits_{i}"] = np.stack(trace.iteration_logits)
        for k, activated in enumerate(trace.iteration_activated):
            # Ragged per-layer activation arrays flattened with offsets.
            lengths = np.array([len(a) for a in activated])
            arrays[f"act_{i}_{k}"] = (
                np.concatenate(activated) if len(activated) else np.array([])
            )
            arrays[f"actlen_{i}_{k}"] = lengths
    meta = {"version": TRACES_FORMAT_VERSION, "records": records}
    arrays["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_traces(path: str | Path) -> list[RequestTrace]:
    """Rebuild traces from an archive written by :func:`save_traces`."""
    path = Path(path)
    with np.load(path) as payload:
        meta = json.loads(bytes(payload["meta"].tobytes()).decode())
        if meta.get("version") != TRACES_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported traces format version {meta.get('version')!r}"
            )
        traces = []
        for i, record in enumerate(meta["records"]):
            request = Request(
                request_id=record["request_id"],
                cluster=record["cluster"],
                input_tokens=record["input_tokens"],
                output_tokens=record["output_tokens"],
                arrival_time=record["arrival_time"],
                seed=record["seed"],
            )
            maps = payload[f"maps_{i}"]
            logits = payload[f"logits_{i}"]
            trace = RequestTrace(
                request=request, embedding=payload[f"emb_{i}"]
            )
            for k in range(record["iterations"]):
                trace.iteration_maps.append(maps[k])
                trace.iteration_logits.append(logits[k])
                flat = payload[f"act_{i}_{k}"].astype(np.int64)
                lengths = payload[f"actlen_{i}_{k}"]
                offsets = np.cumsum(lengths)[:-1]
                trace.iteration_activated.append(
                    tuple(np.split(flat, offsets))
                )
            traces.append(trace)
    return traces
