"""The Expert Map Matcher (paper §4.2).

Two fine-grained search modes over the Expert Map Store:

- *Semantic search* — for the first ``d`` layers (before any trajectory is
  observable), match the request's embedding against stored embeddings
  (Eq. 4) and borrow the matched iteration's initial map rows.
- *Trajectory search* — once ``l`` layers of the current iteration have
  been observed, match the partial trajectory against stored map prefixes
  (Eq. 5) and borrow the matched map's row for layer ``l + d``.

The matcher also carries the virtual-latency model for one batched match
(a base cost plus a per-stored-record term), which the asynchronous policy
reports as off-critical-path overhead (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.store import ExpertMapStore


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one batched store search."""

    indices: np.ndarray
    """Best-matching store slot per query, shape ``(B,)``."""

    scores: np.ndarray
    """Cosine similarity of the best match per query, shape ``(B,)``."""

    @property
    def batch_size(self) -> int:
        return self.indices.shape[0]


class ExpertMapMatcher:
    """Batched semantic/trajectory search with a matching-cost model."""

    def __init__(
        self,
        store: ExpertMapStore,
        base_seconds: float = 5e-4,
        per_record_seconds: float = 2e-6,
    ) -> None:
        self.store = store
        self.base_seconds = base_seconds
        self.per_record_seconds = per_record_seconds

    def match_seconds(self) -> float:
        """Modeled latency of one batched match against the store."""
        return self.base_seconds + self.per_record_seconds * len(self.store)

    def match_semantic(self, embeddings: np.ndarray) -> MatchResult | None:
        """Best semantic match per query embedding; None if store empty."""
        if self.store.is_empty:
            return None
        scores = self.store.semantic_scores(embeddings)
        best = np.argmax(scores, axis=1)
        return MatchResult(
            indices=best,
            scores=scores[np.arange(scores.shape[0]), best],
        )

    def match_trajectory(
        self, observed: np.ndarray, num_layers: int
    ) -> MatchResult | None:
        """Best trajectory match per query prefix; None if store empty."""
        if self.store.is_empty:
            return None
        scores = self.store.trajectory_scores(observed, num_layers)
        best = np.argmax(scores, axis=1)
        return MatchResult(
            indices=best,
            scores=scores[np.arange(scores.shape[0]), best],
        )

    def matched_row(self, result: MatchResult, pos: int, layer: int) -> np.ndarray:
        """Layer ``layer`` of the map matched for query ``pos``."""
        return self.store.get_map(int(result.indices[pos]))[layer]

    def incremental_session(self, batch_size: int) -> "IncrementalTrajectoryMatch":
        """Start an O(J·C)-per-layer trajectory match for one iteration."""
        return IncrementalTrajectoryMatch(self.store, batch_size)

    def reference_session(self, batch_size: int) -> "ReferenceTrajectoryMatch":
        """Start the naive full-refold trajectory match (scalar core)."""
        return ReferenceTrajectoryMatch(self.store, batch_size)

    def trajectory_query(
        self, observed: np.ndarray
    ) -> "CachedTrajectoryQuery | None":
        """Cache one request's trajectory for repeated prefix matches.

        Offline evaluators match the same iteration map at many prefix
        lengths; the cached query flattens and norm-sums it once so each
        subsequent :meth:`CachedTrajectoryQuery.match` is a single sliced
        matrix product.  Returns None if the store is empty (mirroring
        :meth:`match_trajectory`).
        """
        if self.store.is_empty:
            return None
        return CachedTrajectoryQuery(self.store, observed)


class CachedTrajectoryQuery:
    """One query trajectory, flattened once, matchable at any prefix.

    A loop calling :meth:`ExpertMapMatcher.match_trajectory` at prefix
    lengths 1..L re-flattens the query and recomputes its norm per call;
    this caches the float64 flattening and the cumulative prefix norms up
    front, leaving each match as one sliced product against the store's
    pre-normalized rows.  The store is snapshot at construction time
    (``size`` records), so scores are stable even if records are added
    while the query is alive.
    """

    def __init__(self, store: ExpertMapStore, observed: np.ndarray) -> None:
        observed = np.atleast_3d(np.asarray(observed, dtype=np.float64))
        if observed.shape[2] != store.num_experts:
            raise ValueError(
                f"dimension mismatch: {observed.shape[2]} vs "
                f"{store.num_experts}"
            )
        self.store = store
        self.size = len(store)
        self.max_layers = min(observed.shape[1], store.num_layers)
        self._flat = observed.reshape(observed.shape[0], -1)
        norms = np.sqrt(np.cumsum((observed**2).sum(axis=2), axis=1))
        norms[norms == 0.0] = 1.0
        self._prefix_norms = norms

    @property
    def batch_size(self) -> int:
        return self._flat.shape[0]

    def match(self, num_layers: int) -> MatchResult:
        """Best stored match for the first ``num_layers`` observed layers."""
        if not 1 <= num_layers <= self.max_layers:
            raise ValueError(
                f"prefix length {num_layers} out of range "
                f"[1, {self.max_layers}]"
            )
        width = num_layers * self.store.num_experts
        queries = (
            self._flat[:, :width]
            / self._prefix_norms[:, num_layers - 1 : num_layers]
        )
        dots = queries @ self.store._maps_flat[: self.size, :width].T
        scores = dots / self.store._prefix_norms[: self.size, num_layers - 1]
        best = np.argmax(scores, axis=1)
        return MatchResult(
            indices=best,
            scores=scores[np.arange(scores.shape[0]), best],
        )


class IncrementalTrajectoryMatch:
    """Streaming trajectory search with per-layer incremental updates.

    A naive trajectory search at layer ``l`` recomputes the full prefix
    cosine — O(C·l·J) work per layer, O(C·L²·J) per iteration.  Because
    both the dot products and the squared norms are sums over layers, they
    can be maintained incrementally as each layer's gate output arrives,
    making every layer O(C·J) and the whole iteration O(C·L·J) — the same
    asymptotic cost as a single full match.  This mirrors the efficiency
    concern behind the paper's "negligible overhead" claim (§4.2).
    """

    def __init__(self, store: ExpertMapStore, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.store = store
        self.batch_size = batch_size
        self.layers_observed = 0
        size = len(store)
        self._dots = np.zeros((batch_size, size))
        self._query_sq = np.zeros(batch_size)
        self._stored_sq = np.zeros(size)

    def observe_layer(self, rows: np.ndarray) -> MatchResult | None:
        """Fold in one layer's gate outputs, shape ``(B, J)``; match."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[0] != self.batch_size:
            raise ValueError(
                f"expected batch {self.batch_size}, got {rows.shape[0]}"
            )
        if self.layers_observed >= self.store.num_layers:
            raise ValueError("all layers already observed")
        size = len(self.store)
        if size == 0:
            return None
        layer = self.layers_observed
        experts = self.store.num_experts
        # Sliced view of the float64 pre-flattened maps: no per-layer
        # astype copy of the stored rows.
        stored_rows = self.store._maps_flat[
            :size, layer * experts : (layer + 1) * experts
        ]
        self._dots += rows @ stored_rows.T
        self._query_sq += (rows**2).sum(axis=1)
        # The stored side's per-layer squared norms were computed with the
        # same per-row reduction at insertion time, so folding the cached
        # values is bitwise identical to re-squaring the stored rows here.
        self._stored_sq += self.store.layer_sq_norms(layer, size)
        self.layers_observed += 1
        if self.batch_size == 1:
            # Single-lane fast path: ``np.outer`` of a length-1 vector is
            # exactly the elementwise scalar product, so scores (and the
            # argmax) are bitwise identical to the batched expression with
            # far fewer temporaries.
            denom = np.sqrt(self._query_sq[0] * self._stored_sq)
            denom[denom == 0.0] = 1.0
            scores = self._dots[0] / denom
            best = int(np.argmax(scores))
            return MatchResult(
                indices=np.array([best]),
                scores=scores[best : best + 1],
            )
        denom = np.sqrt(
            np.outer(self._query_sq, self._stored_sq)
        )
        denom[denom == 0.0] = 1.0
        scores = self._dots / denom
        best = np.argmax(scores, axis=1)
        return MatchResult(
            indices=best,
            scores=scores[np.arange(self.batch_size), best],
        )


class ReferenceTrajectoryMatch:
    """The naive per-layer full-prefix trajectory search.

    This is the straightforward reading of the paper's Eq. 5: every layer,
    re-match the entire observed prefix against every stored map —
    O(C·l·J) work at layer ``l``, O(C·L²·J) per iteration.  It is the
    scalar reference interpreter the engine benchmark and the parity suite
    compare the columnar core against, and it is *bitwise identical* to
    :class:`IncrementalTrajectoryMatch` by construction: the refold adds
    the same per-layer ``rows @ stored.T`` products and squared-norm
    reductions in the same left-to-right order the incremental session
    folds them, so every float lands on the identical value.
    """

    def __init__(self, store: ExpertMapStore, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.store = store
        self.batch_size = batch_size
        self.layers_observed = 0
        self._rows: list[np.ndarray] = []

    def observe_layer(self, rows: np.ndarray) -> MatchResult | None:
        """Fold in one layer's gate outputs, then re-match from scratch."""
        rows = np.atleast_2d(np.asarray(rows, dtype=np.float64))
        if rows.shape[0] != self.batch_size:
            raise ValueError(
                f"expected batch {self.batch_size}, got {rows.shape[0]}"
            )
        if self.layers_observed >= self.store.num_layers:
            raise ValueError("all layers already observed")
        size = len(self.store)
        if size == 0:
            return None
        self._rows.append(rows)
        self.layers_observed += 1
        experts = self.store.num_experts
        dots = np.zeros((self.batch_size, size))
        query_sq = np.zeros(self.batch_size)
        stored_sq = np.zeros(size)
        for layer, observed in enumerate(self._rows):
            # Read the store the way a straightforward implementation
            # would: the float32 maps as stored, upcast for the math
            # (exact, so the scores stay bitwise identical to the
            # incremental session's pre-flattened float64 cache).
            stored_rows = self.store._maps[:size, layer].astype(np.float64)
            dots += observed @ stored_rows.T
            query_sq += (observed**2).sum(axis=1)
            stored_sq += (stored_rows**2).sum(axis=1)
        denom = np.sqrt(np.outer(query_sq, stored_sq))
        denom[denom == 0.0] = 1.0
        scores = dots / denom
        best = np.argmax(scores, axis=1)
        return MatchResult(
            indices=best,
            scores=scores[np.arange(self.batch_size), best],
        )
