"""Virtual-latency model of fMoE's own operations (paper §6.7, Fig. 15).

The paper instruments five operations per iteration: context collection
(synchronous, cheap), map matching (asynchronous), expert prefetching
(asynchronous transfers), on-demand loading (synchronous, charged by the
pool), and map update (asynchronous).  The constants here reproduce the
reported magnitudes: total synchronous overhead excluding on-demand loads
stays well under 30 ms per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class OverheadModel:
    """Seconds charged for each fMoE operation."""

    context_collect_seconds: float = 2e-3
    """Synchronous: gathering embeddings + trajectory views per iteration."""

    map_match_base_seconds: float = 5e-4
    """Asynchronous: fixed cost of one batched store search."""

    map_match_per_record_seconds: float = 2e-6
    """Asynchronous: per-stored-record cost of one batched search."""

    map_update_seconds: float = 8e-4
    """Asynchronous: inserting one iteration's context into the store."""

    def __post_init__(self) -> None:
        for name in (
            "context_collect_seconds",
            "map_match_base_seconds",
            "map_match_per_record_seconds",
            "map_update_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    def match_seconds(self, store_size: int) -> float:
        """Latency of one batched match against ``store_size`` records."""
        return (
            self.map_match_base_seconds
            + self.map_match_per_record_seconds * store_size
        )
