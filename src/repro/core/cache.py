"""fMoE's expert-cache eviction scoring (paper §4.5).

Eviction priority integrates the searched map's probabilities with visit
frequency:

    PRI_evict = 1 / (p · freq)

so rarely hit experts with low predicted activation probability leave
first.  As the paper argues, recency (LRU) is deliberately ignored: expert
use is layer-sequential, so the most recently used expert is the one
*least* likely to be needed next.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import ConfigError
from repro.types import ExpertId


class FMoECacheScorer:
    """The 1/(p·freq) eviction oracle backed by the latest matched maps."""

    #: Probability floor for experts absent from the matched maps, so
    #: unpredicted experts are evictable but the score stays finite.
    MIN_PROBABILITY = 1e-3

    def __init__(self, num_layers: int, num_experts: int) -> None:
        if num_layers < 1 or num_experts < 1:
            raise ConfigError("num_layers and num_experts must be >= 1")
        self.num_layers = num_layers
        self.num_experts = num_experts
        self._freq: dict[ExpertId, int] = defaultdict(int)
        self._predicted = np.zeros((num_layers, num_experts))

    def reset_predictions(self) -> None:
        """Clear per-iteration predictions (called at iteration start)."""
        self._predicted.fill(0.0)

    def mark_layer_done(self, layer: int) -> None:
        """Drop predictions for a layer the forward pass has moved past.

        Expert use is layer-sequential (§4.5): an expert just served is the
        one needed furthest in the future, so clearing its prediction makes
        it the preferred eviction victim for upcoming prefetches.
        """
        if not 0 <= layer < self.num_layers:
            raise ConfigError(f"layer {layer} out of range")
        self._predicted[layer].fill(0.0)

    def update_prediction_row(self, layer: int, row: np.ndarray) -> None:
        """Merge a matched map row for ``layer`` (element-wise maximum).

        With batched requests several maps guide the same iteration; the
        maximum keeps any expert predicted by any request protected.
        """
        if not 0 <= layer < self.num_layers:
            raise ConfigError(f"layer {layer} out of range")
        np.maximum(self._predicted[layer], row, out=self._predicted[layer])

    def predicted_probability(self, expert: ExpertId) -> float:
        """Latest matched-map probability for ``expert`` (0 if none)."""
        return float(self._predicted[expert.layer, expert.expert])

    def touch(self, expert: ExpertId) -> None:
        """Record one cache visit (hit or post-load use)."""
        self._freq[expert] += 1

    def frequency(self, expert: ExpertId) -> int:
        """Recorded cache visits of ``expert``."""
        return self._freq[expert]

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """PRI_evict = 1 / (p · freq); larger → evicted earlier."""
        p = max(self.predicted_probability(expert), self.MIN_PROBABILITY)
        freq = max(self._freq.get(expert, 0), 1)
        return 1.0 / (p * freq)
