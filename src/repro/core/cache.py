"""fMoE's expert-cache eviction scoring (paper §4.5).

Eviction priority integrates the searched map's probabilities with visit
frequency:

    PRI_evict = 1 / (p · freq)

so rarely hit experts with low predicted activation probability leave
first.  As the paper argues, recency (LRU) is deliberately ignored: expert
use is layer-sequential, so the most recently used expert is the one
*least* likely to be needed next.

The scorer keeps its state in dense ``(L, J)`` arrays so the pool's
columnar eviction path can score a whole candidate set with one fancy
index (:meth:`FMoECacheScorer.score_evictions`) instead of one Python
call per candidate.  The score matrix is maintained incrementally —
``touch`` updates one cell, prediction merges refresh one row, and only
the per-iteration reset triggers a lazy full rebuild — so keeping it
current costs O(J) per mutation instead of O(L·J) per query.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.types import ExpertId


class FMoECacheScorer:
    """The 1/(p·freq) eviction oracle backed by the latest matched maps."""

    #: Probability floor for experts absent from the matched maps, so
    #: unpredicted experts are evictable but the score stays finite.
    MIN_PROBABILITY = 1e-3

    def __init__(self, num_layers: int, num_experts: int) -> None:
        if num_layers < 1 or num_experts < 1:
            raise ConfigError("num_layers and num_experts must be >= 1")
        self.num_layers = num_layers
        self.num_experts = num_experts
        self._freq = np.zeros((num_layers, num_experts), dtype=np.int64)
        self._predicted = np.zeros((num_layers, num_experts))
        self._scores: np.ndarray | None = None

    def _refresh_score_row(self, layer: int) -> None:
        if self._scores is not None:
            self._scores[layer] = 1.0 / (
                np.maximum(self._predicted[layer], self.MIN_PROBABILITY)
                * np.maximum(self._freq[layer], 1)
            )

    def reset_predictions(self) -> None:
        """Clear per-iteration predictions (called at iteration start)."""
        self._predicted.fill(0.0)
        self._scores = None

    def mark_layer_done(self, layer: int) -> None:
        """Drop predictions for a layer the forward pass has moved past.

        Expert use is layer-sequential (§4.5): an expert just served is the
        one needed furthest in the future, so clearing its prediction makes
        it the preferred eviction victim for upcoming prefetches.
        """
        if not 0 <= layer < self.num_layers:
            raise ConfigError(f"layer {layer} out of range")
        self._predicted[layer].fill(0.0)
        self._refresh_score_row(layer)

    def update_prediction_row(self, layer: int, row: np.ndarray) -> None:
        """Merge a matched map row for ``layer`` (element-wise maximum).

        With batched requests several maps guide the same iteration; the
        maximum keeps any expert predicted by any request protected.
        """
        if not 0 <= layer < self.num_layers:
            raise ConfigError(f"layer {layer} out of range")
        np.maximum(self._predicted[layer], row, out=self._predicted[layer])
        self._refresh_score_row(layer)

    def predicted_probability(self, expert: ExpertId) -> float:
        """Latest matched-map probability for ``expert`` (0 if none)."""
        return float(self._predicted[expert.layer, expert.expert])

    def touch(self, expert: ExpertId) -> None:
        """Record one cache visit (hit or post-load use)."""
        layer, index = expert.layer, expert.expert
        freq = self._freq[layer, index] + 1
        self._freq[layer, index] = freq
        if self._scores is not None:
            p = self._predicted[layer, index]
            if p < self.MIN_PROBABILITY:
                p = self.MIN_PROBABILITY
            self._scores[layer, index] = 1.0 / (p * freq)

    def frequency(self, expert: ExpertId) -> int:
        """Recorded cache visits of ``expert``."""
        return int(self._freq[expert.layer, expert.expert])

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """PRI_evict = 1 / (p · freq); larger → evicted earlier."""
        p = max(self.predicted_probability(expert), self.MIN_PROBABILITY)
        freq = max(int(self._freq[expert.layer, expert.expert]), 1)
        return 1.0 / (p * freq)

    def score_matrix(self) -> np.ndarray:
        """The dense flat ``(L·J,)`` eviction-score matrix, kept current.

        Entry ``layer * num_experts + expert`` is bitwise identical to
        :meth:`eviction_priority` for that expert (same maximum clamps,
        same int→float promotion, one elementwise divide).
        """
        if self._scores is None:
            self._scores = 1.0 / (
                np.maximum(self._predicted, self.MIN_PROBABILITY)
                * np.maximum(self._freq, 1)
            )
        return self._scores.reshape(-1)

    def score_evictions(self, flat: np.ndarray, now: float) -> np.ndarray:
        """Vectorized :meth:`eviction_priority` over flat expert indices."""
        return self.score_matrix()[flat]
