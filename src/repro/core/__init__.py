"""fMoE's core: the paper's contribution (§4).

- :class:`ExpertMap` — iteration-level gate probability distributions
  across layers (§4.1).
- :class:`ExpertMapStore` — capacity-bounded history with redundancy-score
  deduplication (§4.4).
- :class:`ExpertMapMatcher` — semantic + trajectory cosine search (§4.2).
- :mod:`repro.core.prefetch` — similarity-aware expert selection with the
  dynamic threshold δ = clip(1 − score) and prefetch priorities (§4.3, §4.5).
- :class:`FMoECacheScorer` — the 1/(p·freq) eviction priority (§4.5).
- :class:`FMoEPolicy` — the assembled offloading policy with asynchronous
  matching (§4.3) and ablation switches (§6.5).
"""

from repro.core.expert_map import ExpertMap
from repro.core.store import ExpertMapStore, StoreRecord
from repro.core.matcher import ExpertMapMatcher, MatchResult
from repro.core.prefetch import (
    prefetch_priority,
    select_prefetch_experts,
    selection_threshold,
)
from repro.core.cache import FMoECacheScorer
from repro.core.overheads import OverheadModel
from repro.core.policy import FMoEPolicy
from repro.core.autotune import TuneResult, tune_prefetch_distance
from repro.core.persistence import (
    load_store,
    load_traces,
    save_store,
    save_traces,
)

__all__ = [
    "ExpertMap",
    "ExpertMapStore",
    "StoreRecord",
    "ExpertMapMatcher",
    "MatchResult",
    "selection_threshold",
    "select_prefetch_experts",
    "prefetch_priority",
    "FMoECacheScorer",
    "OverheadModel",
    "FMoEPolicy",
    "TuneResult",
    "tune_prefetch_distance",
    "save_store",
    "load_store",
    "save_traces",
    "load_traces",
]
