"""The assembled fMoE offloading policy (paper §3.2 workflow, §4 design).

Per iteration the policy follows the paper's five steps:

1. *Context collection* (synchronous, cheap): embeddings + observed
   trajectory views.
2. *Expert map matching*: semantic search guides the first ``d`` layers at
   iteration start; trajectory search fires after every revealed layer for
   layer ``l + d``.  Matching is asynchronous — it delays when prefetch
   instructions reach the PCIe queue but never blocks compute.
3. *Guided prefetching*: similarity-aware thresholds δ = clip(1 − score)
   choose how many experts to hedge with; issue order follows
   PRI = p / (l − l_now).
4. *Serving*: the engine resolves hits/misses against the pool; the policy
   supplies the 1/(p·freq) eviction priority.
5. *Map update*: the completed iteration's context is inserted into the
   store (with redundancy-based deduplication once at capacity).

Ablation switches reproduce the paper's Fig. 12a variants: trajectory-only
(``use_semantic=False``), no dynamic threshold (``dynamic_threshold=False``
prefetches a fixed top-K), and the full design.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.baselines.base import BasePolicy, LFUTracker, LRUTracker
from repro.core.cache import FMoECacheScorer
from repro.core.matcher import (
    ExpertMapMatcher,
    IncrementalTrajectoryMatch,
    ReferenceTrajectoryMatch,
    MatchResult,
)
from repro.core.overheads import OverheadModel
from repro.core.prefetch import (
    prefetch_priority,
    select_prefetch_counts,
    select_prefetch_experts,
    selection_threshold,
)
from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.serving.engine import (
    IterationContext,
    PolicyAction,
    PrefetchInstruction,
)
from repro.types import ExpertId


class FMoEPolicy(BasePolicy):
    """Fine-grained expert offloading with expert-map guidance."""

    name = "fmoe"

    def __init__(
        self,
        prefetch_distance: int = 3,
        store_capacity: int = 1024,
        use_semantic: bool = True,
        use_trajectory: bool = True,
        dynamic_threshold: bool = True,
        max_prefetch_factor: float = 4.0,
        overheads: OverheadModel | None = None,
        update_store_online: bool = True,
        eviction_algorithm: str = "fmoe",
        shared_store: ExpertMapStore | None = None,
    ) -> None:
        super().__init__()
        if prefetch_distance < 1:
            raise ConfigError("prefetch_distance must be >= 1")
        if store_capacity < 1:
            raise ConfigError("store_capacity must be >= 1")
        if max_prefetch_factor < 1.0:
            raise ConfigError("max_prefetch_factor must be >= 1")
        if not (use_semantic or use_trajectory):
            raise ConfigError(
                "at least one of semantic/trajectory search must be enabled"
            )
        if eviction_algorithm not in ("fmoe", "lru", "lfu"):
            raise ConfigError(
                "eviction_algorithm must be one of 'fmoe', 'lru', 'lfu'"
            )
        self.prefetch_distance = prefetch_distance
        self.store_capacity = store_capacity
        self.use_semantic = use_semantic
        self.use_trajectory = use_trajectory
        self.dynamic_threshold = dynamic_threshold
        self.max_prefetch_factor = max_prefetch_factor
        self.overheads = overheads or OverheadModel()
        self.update_store_online = update_store_online
        self.eviction_algorithm = eviction_algorithm
        self._shared_store = shared_store
        """Externally owned store to attach to instead of building one —
        cluster replicas configured for a shared store all learn into (and
        search) the same map collection."""
        self._lru = LRUTracker()
        self._lfu = LFUTracker()
        self.store: ExpertMapStore | None = None
        self.matcher: ExpertMapMatcher | None = None
        self.scorer: FMoECacheScorer | None = None
        self._trajectory_session: (
            IncrementalTrajectoryMatch | ReferenceTrajectoryMatch | None
        ) = None
        self._columnar = False
        self.semantic_score_log: list[float] = []
        self.trajectory_score_log: list[float] = []

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, engine) -> None:
        super().attach(engine)
        self._columnar = bool(getattr(engine, "columnar", False))
        config = engine.config
        distance = min(self.prefetch_distance, config.num_layers)
        if self._shared_store is not None:
            store = self._shared_store
            if (
                store.num_layers != config.num_layers
                or store.num_experts != config.experts_per_layer
                or store.embedding_dim != config.embedding_dim
            ):
                raise ConfigError(
                    "shared store dimensions "
                    f"(L={store.num_layers}, J={store.num_experts}, "
                    f"h={store.embedding_dim}) do not match the model "
                    f"(L={config.num_layers}, J={config.experts_per_layer}, "
                    f"h={config.embedding_dim})"
                )
            self.store = store
        else:
            self.store = ExpertMapStore(
                capacity=self.store_capacity,
                num_layers=config.num_layers,
                num_experts=config.experts_per_layer,
                embedding_dim=config.embedding_dim,
                prefetch_distance=distance,
            )
        self.matcher = ExpertMapMatcher(
            self.store,
            base_seconds=self.overheads.map_match_base_seconds,
            per_record_seconds=self.overheads.map_match_per_record_seconds,
        )
        self.scorer = FMoECacheScorer(
            config.num_layers, config.experts_per_layer
        )

    def warm(self, traces: Sequence) -> None:
        if self.store is None:
            raise ConfigError("policy must be attached before warming")
        for trace in traces:
            for iteration_map in trace.iteration_maps:
                self.store.add(trace.embedding, iteration_map)

    # ------------------------------------------------------------------ #
    # Selection helpers
    # ------------------------------------------------------------------ #

    def _max_prefetch_count(self) -> int:
        return int(math.ceil(self.max_prefetch_factor * self.config.top_k))

    def _select(self, row: np.ndarray, score: float) -> np.ndarray:
        """Expert indices to prefetch for one layer given the match score."""
        if self.dynamic_threshold:
            threshold = selection_threshold(score)
            return select_prefetch_experts(
                row,
                threshold,
                self.config.top_k,
                max_count=self._max_prefetch_count(),
            )
        top = np.argsort(row)[::-1][: self.config.top_k]
        return top

    def _instructions_for_layer(
        self,
        row: np.ndarray,
        score: float,
        target_layer: int,
        current_layer: int,
    ) -> list[PrefetchInstruction]:
        assert self.scorer is not None
        self.scorer.update_prediction_row(target_layer, row)
        selected = self._select(row, score)
        return [
            PrefetchInstruction(
                expert=ExpertId(target_layer, int(j)),
                priority=prefetch_priority(
                    float(row[j]), target_layer, current_layer
                ),
            )
            for j in selected
        ]

    def _prefetch_block_for_lanes(
        self,
        rows32: np.ndarray,
        scores: np.ndarray,
        targets: np.ndarray,
        gaps: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Columnar :meth:`_instructions_for_layer` over N selection lanes.

        ``rows32`` is ``(N, J)`` float32 map rows in emission order,
        ``scores``/``targets``/``gaps`` the per-lane match score, target
        layer, and layer gap ``l − l_now``.  Returns (flat ids,
        priorities): the same experts, in the same lane-major order, with
        the same ``p / gap`` priorities the scalar path would emit — one
        argsort/cumsum pass instead of one Python call per lane and one
        ``PrefetchInstruction`` per expert.
        """
        rows = rows32.astype(np.float64)
        width = rows.shape[1]
        if rows.shape[0] == 1:
            # Single lane (unbatched iterations): the scalar selector is
            # the batched one's per-lane identity and skips the lane
            # bookkeeping below.
            row = rows[0]
            selected = self._select(row, float(scores[0]))
            flat = int(targets[0]) * width + selected
            priorities = row[selected] / int(gaps[0])
            return flat.astype(np.int64), priorities
        if self.dynamic_threshold:
            thresholds = np.clip(1.0 - scores, 0.0, 1.0)
            order, counts = select_prefetch_counts(
                rows,
                thresholds,
                self.config.top_k,
                max_count=self._max_prefetch_count(),
            )
        else:
            order = np.argsort(rows, axis=1)[:, ::-1]
            counts = np.full(rows.shape[0], self.config.top_k, dtype=np.int64)
        mask = np.arange(width)[None, :] < counts[:, None]
        selected = order[mask]
        lanes = np.repeat(np.arange(rows.shape[0]), counts)
        flat = targets[lanes] * width + selected
        priorities = rows[lanes, selected] / gaps[lanes]
        return flat.astype(np.int64), priorities

    # ------------------------------------------------------------------ #
    # Engine hooks
    # ------------------------------------------------------------------ #

    def on_iteration_start(self, ctx: IterationContext) -> PolicyAction:
        assert self.store is not None and self.matcher is not None
        assert self.scorer is not None
        self.scorer.reset_predictions()
        # One trajectory match per iteration.  The columnar core streams it
        # (each layer's gate output folds in incrementally, O(C·J) per
        # layer); the scalar reference core re-matches the full prefix from
        # scratch every layer — the naive Eq. 5 interpreter the benchmark
        # and parity suite compare against, bitwise identical by
        # construction.
        if self.use_trajectory and not self.store.is_empty:
            if self._columnar:
                self._trajectory_session = self.matcher.incremental_session(
                    ctx.batch_size
                )
            else:
                self._trajectory_session = self.matcher.reference_session(
                    ctx.batch_size
                )
        else:
            self._trajectory_session = None
        action = PolicyAction(
            sync_overheads={
                "context_collect": self.overheads.context_collect_seconds
            }
        )
        if not self.use_semantic or self.store.is_empty:
            return action
        result = self.matcher.match_semantic(ctx.embeddings)
        if result is None:
            return action
        self.semantic_score_log.extend(float(s) for s in result.scores)
        # Semantic search covers layers [0, d); with trajectory search
        # disabled it must carry the entire iteration.
        horizon = (
            min(self.prefetch_distance, self.config.num_layers)
            if self.use_trajectory
            else self.config.num_layers
        )
        if self._columnar:
            # One (B, horizon, J) gather covers every (request, layer)
            # lane; the legacy b-major/layer-inner emission order is the
            # row-major reshape.  Prediction merges are an elementwise
            # maximum, so folding the batch first is order-independent.
            matched = self.store.gather_maps(result.indices)[:, :horizon, :]
            merged = matched.max(axis=0)
            for layer in range(horizon):
                self.scorer.update_prediction_row(layer, merged[layer])
            lanes = matched.reshape(-1, self.config.experts_per_layer)
            layers = np.tile(np.arange(horizon), ctx.batch_size)
            action.prefetch_block = self._prefetch_block_for_lanes(
                lanes,
                np.repeat(result.scores, horizon),
                layers,
                layers + 1,
            )
            action.async_overheads = {
                "map_match": self.matcher.match_seconds()
            }
            return action
        instructions: list[PrefetchInstruction] = []
        for b in range(ctx.batch_size):
            score = float(result.scores[b])
            for layer in range(horizon):
                row = self.matcher.matched_row(result, b, layer)
                instructions.extend(
                    self._instructions_for_layer(row, score, layer, -1)
                )
        action.prefetch = instructions
        action.async_overheads = {"map_match": self.matcher.match_seconds()}
        return action

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        assert self.store is not None and self.matcher is not None
        assert self.scorer is not None
        if layer > 0:
            # The forward pass moved past layer-1: its experts are now the
            # least valuable residents (layer-sequential reuse, §4.5).
            self.scorer.mark_layer_done(layer - 1)
        if not self.use_trajectory:
            return PolicyAction()
        session = self._trajectory_session
        if session is None:
            return PolicyAction()
        result = session.observe_layer(ctx.observed[:, layer, :])
        target = layer + self.prefetch_distance
        if result is None or target >= self.config.num_layers:
            return PolicyAction()
        self.trajectory_score_log.extend(float(s) for s in result.scores)
        if self._columnar:
            if ctx.batch_size == 1:
                # Unbatched iterations skip the gather: one matched row,
                # one selection, flat ids built in place.
                row32 = self.matcher.matched_row(result, 0, target)
                self.scorer.update_prediction_row(target, row32)
                row = row32.astype(np.float64)
                selected = self._select(row, float(result.scores[0]))
                flat = target * self.config.experts_per_layer + selected
                return PolicyAction(
                    prefetch_block=(
                        flat.astype(np.int64),
                        row[selected] / (target - layer),
                    ),
                    async_overheads={
                        "map_match": self.matcher.match_seconds()
                    },
                )
            rows = self.store.gather_rows(result.indices, target)
            self.scorer.update_prediction_row(target, rows.max(axis=0))
            shape = np.full(ctx.batch_size, target, dtype=np.int64)
            return PolicyAction(
                prefetch_block=self._prefetch_block_for_lanes(
                    rows,
                    result.scores,
                    shape,
                    shape - layer,
                ),
                async_overheads={"map_match": self.matcher.match_seconds()},
            )
        instructions: list[PrefetchInstruction] = []
        for b in range(ctx.batch_size):
            score = float(result.scores[b])
            row = self.matcher.matched_row(result, b, target)
            instructions.extend(
                self._instructions_for_layer(row, score, target, layer)
            )
        return PolicyAction(
            prefetch=instructions,
            async_overheads={"map_match": self.matcher.match_seconds()},
        )

    def on_iteration_end(self, ctx: IterationContext) -> PolicyAction:
        assert self.store is not None
        if not self.update_store_online:
            return PolicyAction()
        for b in range(ctx.batch_size):
            self.store.add(ctx.embeddings[b], ctx.observed[b])
        return PolicyAction(
            async_overheads={
                "map_update": self.overheads.map_update_seconds
                * ctx.batch_size
            }
        )

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        assert self.scorer is not None
        self.scorer.touch(expert)
        self._lru.touch(expert, now)
        self._lfu.touch(expert, now)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Dispatch on the configured cache algorithm (Fig. 12b ablation)."""
        if self.eviction_algorithm == "lru":
            return self._lru.eviction_priority(expert, now)
        if self.eviction_algorithm == "lfu":
            return self._lfu.eviction_priority(expert, now)
        assert self.scorer is not None
        return self.scorer.eviction_priority(expert, now)

    def score_evictions(
        self, flat: np.ndarray, now: float
    ) -> np.ndarray | None:
        """Batched eviction scores over flat expert indices.

        Only the fMoE 1/(p·freq) algorithm has a dense array form; the
        LRU/LFU ablations return None so the pool falls back to the
        scalar :meth:`eviction_priority` loop.
        """
        if self.eviction_algorithm != "fmoe" or self.scorer is None:
            return None
        return self.scorer.score_evictions(flat, now)

    def eviction_score_matrix(self, now: float) -> np.ndarray | None:
        """Dense flat ``(L·J,)`` score matrix for the pool's victim sort."""
        if self.eviction_algorithm != "fmoe" or self.scorer is None:
            return None
        return self.scorer.score_matrix()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def mean_semantic_score(self) -> float:
        """Mean best semantic-match score over the run (Fig. 14a)."""
        if not self.semantic_score_log:
            return 0.0
        return float(np.mean(self.semantic_score_log))

    def mean_trajectory_score(self) -> float:
        """Mean best trajectory-match score over the run (Fig. 14a)."""
        if not self.trajectory_score_log:
            return 0.0
        return float(np.mean(self.trajectory_score_log))
