"""The Expert Map Store (paper §3.2, §4.4).

A capacity-bounded collection of (semantic embedding, expert map) records
from historical inference iterations, held in preallocated arrays so the
matcher's batched cosine computations are single matrix products.

Stored rows are pre-normalized at :meth:`ExpertMapStore.add` time: unit
embeddings, float64-flattened maps, and cumulative per-prefix norms are
maintained per slot, so every search is one matrix product against
already-normalized (or norm-divided) rows — no per-query re-normalization
of the stored side.  Insertion is O(L·J) per record; searches happen far
more often than inserts, so the work moves to the cheap side.

When full, the store deduplicates: each incoming iteration computes the
unified redundancy score against every stored record,

    RDY_{x,y} = (d/L) · score_sem(x,y) + ((L−d)/L) · score_traj(x,y),

and replaces the stored record it is most redundant with — keeping the
store diverse so some useful map exists for any future prompt.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.errors import ConfigError


class StoreRecord(NamedTuple):
    """One stored iteration context (copies, for inspection/tests)."""

    embedding: np.ndarray
    expert_map: np.ndarray


class ExpertMapStore:
    """Fixed-capacity store of iteration-level expert maps."""

    def __init__(
        self,
        capacity: int,
        num_layers: int,
        num_experts: int,
        embedding_dim: int,
        prefetch_distance: int = 3,
    ) -> None:
        if capacity < 1:
            raise ConfigError("store capacity must be >= 1")
        if num_layers < 1 or num_experts < 1:
            raise ConfigError("num_layers and num_experts must be >= 1")
        if embedding_dim < 1:
            raise ConfigError("embedding_dim must be >= 1")
        if not 1 <= prefetch_distance <= num_layers:
            raise ConfigError(
                "prefetch_distance must be in [1, num_layers]"
            )
        self.capacity = capacity
        self.num_layers = num_layers
        self.num_experts = num_experts
        self.embedding_dim = embedding_dim
        self.prefetch_distance = prefetch_distance
        self._embeddings = np.zeros((capacity, embedding_dim), dtype=np.float32)
        self._maps = np.zeros(
            (capacity, num_layers, num_experts), dtype=np.float32
        )
        # Pre-normalized search-side rows, maintained per slot by add():
        # unit-norm embeddings, float64 flattened maps, and cumulative
        # prefix norms ||map[:l]|| for every prefix length l.  Zero norms
        # are stored as 1.0 so divisions yield 0 similarity, matching the
        # cosine convention for zero rows.
        self._embeddings_unit = np.zeros(
            (capacity, embedding_dim), dtype=np.float64
        )
        self._maps_flat = np.zeros(
            (capacity, num_layers * num_experts), dtype=np.float64
        )
        self._prefix_norms = np.ones((capacity, num_layers), dtype=np.float64)
        # Per-layer squared norms ||map[l]||² of every slot, cached at
        # insertion so incremental trajectory matchers can fold in one
        # layer without re-squaring the stored rows each time.
        self._layer_sq = np.zeros((capacity, num_layers), dtype=np.float64)
        self._size = 0
        self.total_added = 0
        self.replacements = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    @property
    def is_empty(self) -> bool:
        return self._size == 0

    def record(self, index: int) -> StoreRecord:
        """Copy of the stored (embedding, map) pair at ``index``."""
        if not 0 <= index < self._size:
            raise ConfigError(f"record index {index} out of range")
        return StoreRecord(
            embedding=self._embeddings[index].copy(),
            expert_map=self._maps[index].copy(),
        )

    def get_map(self, index: int) -> np.ndarray:
        """Stored expert map ``(L, J)`` (read-only view)."""
        if not 0 <= index < self._size:
            raise ConfigError(f"record index {index} out of range")
        return self._maps[index]

    def gather_maps(self, indices: np.ndarray) -> np.ndarray:
        """Stored maps for a batch of slots: ``(B, L, J)`` float32 copy.

        The columnar gather form of :meth:`get_map` — one fancy index
        instead of one Python call per batch position.
        """
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._size
        ):
            raise ConfigError("record index out of range")
        return self._maps[indices]

    def gather_rows(self, indices: np.ndarray, layer: int) -> np.ndarray:
        """One map layer for a batch of slots: ``(B, J)`` float32 copy."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size and (
            indices.min() < 0 or indices.max() >= self._size
        ):
            raise ConfigError("record index out of range")
        return self._maps[indices, layer]

    def layer_sq_norms(self, layer: int, size: int) -> np.ndarray:
        """Cached ``||map[layer]||²`` of the first ``size`` slots."""
        return self._layer_sq[:size, layer]

    def memory_bytes(self, allocated: bool = False) -> int:
        """CPU memory footprint (Fig. 16): maps + embeddings, float32."""
        rows = self.capacity if allocated else self._size
        per_record = (
            self.num_layers * self.num_experts + self.embedding_dim
        ) * 4
        return rows * per_record

    # ------------------------------------------------------------------ #
    # Updates
    # ------------------------------------------------------------------ #

    def add(self, embedding: np.ndarray, expert_map: np.ndarray) -> int:
        """Insert one record; returns the slot it landed in."""
        embedding = np.asarray(embedding, dtype=np.float32)
        expert_map = np.asarray(expert_map, dtype=np.float32)
        if embedding.shape != (self.embedding_dim,):
            raise ConfigError(
                f"embedding shape {embedding.shape} != ({self.embedding_dim},)"
            )
        if expert_map.shape != (self.num_layers, self.num_experts):
            raise ConfigError(
                f"map shape {expert_map.shape} != "
                f"({self.num_layers}, {self.num_experts})"
            )
        self.total_added += 1
        if self._size < self.capacity:
            slot = self._size
            self._size += 1
        else:
            slot = self._most_redundant_slot(embedding, expert_map)
            self.replacements += 1
        self._embeddings[slot] = embedding
        self._maps[slot] = expert_map
        self._refresh_derived(slot)
        return slot

    def _refresh_derived(self, slot: int) -> None:
        """Recompute the pre-normalized rows for one (re)written slot."""
        emb = self._embeddings[slot].astype(np.float64)
        norm = float(np.linalg.norm(emb))
        self._embeddings_unit[slot] = emb / (norm if norm != 0.0 else 1.0)
        stored = self._maps[slot].astype(np.float64)
        self._maps_flat[slot] = stored.reshape(-1)
        layer_sq = (stored**2).sum(axis=1)
        self._layer_sq[slot] = layer_sq
        norms = np.sqrt(np.cumsum(layer_sq))
        norms[norms == 0.0] = 1.0
        self._prefix_norms[slot] = norms

    def _most_redundant_slot(
        self, embedding: np.ndarray, expert_map: np.ndarray
    ) -> int:
        scores = self.redundancy_scores(
            embedding[None, :], expert_map[None, :, :]
        )
        return int(np.argmax(scores[0]))

    def redundancy_scores(
        self, embeddings: np.ndarray, maps: np.ndarray
    ) -> np.ndarray:
        """Unified redundancy score RDY (§4.4), shape ``(B, size)``."""
        if self.is_empty:
            raise ConfigError("redundancy undefined for an empty store")
        sem = self.semantic_scores(embeddings)
        flat_new = np.asarray(maps, dtype=np.float64).reshape(
            maps.shape[0], -1
        )
        traj = self._prefix_dot(flat_new, self.num_layers)
        d, total = self.prefetch_distance, self.num_layers
        return (d / total) * sem + ((total - d) / total) * traj

    # ------------------------------------------------------------------ #
    # Affinity summaries (cluster routing)
    # ------------------------------------------------------------------ #

    def embedding_centroid(self) -> np.ndarray | None:
        """Mean of the stored unit embeddings (``None`` when empty).

        A cheap one-vector summary of the semantic region this store has
        seen; cluster routers compare request embeddings against replica
        centroids to steer similar prompts to replicas that already hold
        their expert maps.
        """
        if self.is_empty:
            return None
        return self._embeddings_unit[: self._size].mean(axis=0)

    def best_semantic_score(self, embedding: np.ndarray) -> float:
        """Best cosine match of one query embedding against the store.

        The affinity-routing signal: the maximum of
        :meth:`semantic_scores` for a single query, or ``-1.0`` when the
        store is empty (no evidence, defer to load-based routing).
        """
        if self.is_empty:
            return -1.0
        embedding = np.asarray(embedding, dtype=np.float64)
        scores = self.semantic_scores(embedding[None, :])
        return float(scores[0].max())

    # ------------------------------------------------------------------ #
    # Search primitives (Eqs. 4 and 5)
    # ------------------------------------------------------------------ #

    def semantic_scores(self, embeddings: np.ndarray) -> np.ndarray:
        """Cosine similarity of query embeddings vs stored: ``(B, size)``."""
        if self.is_empty:
            raise ConfigError("cannot search an empty store")
        queries = np.atleast_2d(np.asarray(embeddings, dtype=np.float64))
        if queries.shape[1] != self.embedding_dim:
            raise ValueError(
                f"dimension mismatch: {queries.shape[1]} vs "
                f"{self.embedding_dim}"
            )
        norms = np.linalg.norm(queries, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return (queries / norms) @ self._embeddings_unit[: self._size].T

    def _prefix_dot(
        self, flat_queries: np.ndarray, num_layers: int
    ) -> np.ndarray:
        """Cosine of normalized flat queries vs stored ``num_layers``-prefixes.

        One sliced matrix product against the pre-flattened maps, divided
        by the prefix norms cached at insertion time.
        """
        norms = np.linalg.norm(flat_queries, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        width = num_layers * self.num_experts
        dots = (flat_queries / norms) @ self._maps_flat[: self._size, :width].T
        return dots / self._prefix_norms[: self._size, num_layers - 1]

    def trajectory_scores(
        self, observed: np.ndarray, num_layers: int
    ) -> np.ndarray:
        """Cosine similarity of observed prefixes vs stored prefixes.

        ``observed`` has shape ``(B, num_layers, J)`` — the gate
        distributions of the layers revealed so far this iteration.
        """
        if self.is_empty:
            raise ConfigError("cannot search an empty store")
        if not 1 <= num_layers <= self.num_layers:
            raise ConfigError(
                f"prefix length {num_layers} out of range [1, {self.num_layers}]"
            )
        observed = np.asarray(observed)
        if observed.ndim != 3 or observed.shape[1] < num_layers:
            raise ConfigError(
                "observed must be (B, >=num_layers, J); got "
                f"{observed.shape}"
            )
        if observed.shape[2] != self.num_experts:
            raise ValueError(
                f"dimension mismatch: {observed.shape[2]} vs "
                f"{self.num_experts}"
            )
        flat_new = np.asarray(
            observed[:, :num_layers, :], dtype=np.float64
        ).reshape(observed.shape[0], -1)
        return self._prefix_dot(flat_new, num_layers)
