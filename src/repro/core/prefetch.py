"""Similarity-aware expert selection and prefetch priorities (§4.3, §4.5).

Given a matched expert map row and the match's similarity score, fMoE
computes a dynamic selection threshold

    δ = clip(1 − score, 0, 1)

and prefetches the smallest set of highest-probability experts whose summed
probability exceeds δ (Eqs. 6–8), always more than the top-K the gate will
activate.  Low-confidence matches therefore hedge with more experts; high
confidence matches prefetch tightly, trimming memory traffic.

Prefetch issue order follows PRI = p / (l − l_now): likely experts on near
layers first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def selection_threshold(score: float) -> float:
    """δ = clip(1 − score, 0, 1) for a cosine score in [−1, 1]."""
    return float(np.clip(1.0 - score, 0.0, 1.0))


def select_prefetch_experts(
    distribution: np.ndarray,
    threshold: float,
    top_k: int,
    max_count: int | None = None,
) -> np.ndarray:
    """Minimal high-probability expert set for one layer (Eqs. 6–8).

    Picks experts in descending probability until the cumulative
    probability exceeds ``threshold``, subject to the paper's constraint 8
    (strictly more experts than the ``top_k`` the gate activates, where the
    layer width allows) and an optional hedging cap ``max_count``.
    """
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.ndim != 1:
        raise ConfigError("distribution must be 1-D")
    num_experts = distribution.shape[0]
    if not 1 <= top_k <= num_experts:
        raise ConfigError(f"top_k must be in [1, {num_experts}]")
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError("threshold must be in [0, 1]")
    min_needed = min(top_k + 1, num_experts)
    cap = num_experts if max_count is None else min(max_count, num_experts)
    cap = max(cap, min_needed)
    order = np.argsort(distribution)[::-1]
    cumulative = np.cumsum(distribution[order])
    count = int(np.searchsorted(cumulative, threshold) + 1)
    count = max(count, min_needed)
    count = min(count, cap)
    return order[:count]


def select_prefetch_counts(
    rows: np.ndarray,
    thresholds: np.ndarray,
    top_k: int,
    max_count: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`select_prefetch_experts` over N independent rows.

    ``rows`` is ``(N, J)`` float64, ``thresholds`` is ``(N,)``.  Returns
    ``(order, counts)``: the descending-probability argsort per row and how
    many leading entries of each row are selected, so lane ``i``'s set is
    ``order[i, :counts[i]]`` — element-for-element what the scalar function
    returns for ``(rows[i], thresholds[i])``.  Per-lane identity holds
    bitwise: an axis argsort applies the same algorithm to each lane, the
    cumulative sums are the same left folds, and counting ``cumulative <
    threshold`` over a nondecreasing cumulative equals the scalar path's
    left ``searchsorted``.
    """
    num_experts = rows.shape[1]
    if not 1 <= top_k <= num_experts:
        raise ConfigError(f"top_k must be in [1, {num_experts}]")
    min_needed = min(top_k + 1, num_experts)
    cap = num_experts if max_count is None else min(max_count, num_experts)
    cap = max(cap, min_needed)
    order = np.argsort(rows, axis=1)[:, ::-1]
    cumulative = np.cumsum(np.take_along_axis(rows, order, axis=1), axis=1)
    counts = (cumulative < thresholds[:, None]).sum(axis=1) + 1
    np.clip(counts, min_needed, cap, out=counts)
    return order, counts


def prefetch_priority(
    probability: float, layer: int, current_layer: int
) -> float:
    """PRI_prefetch = p / (l − l_now): near, likely experts first (§4.5)."""
    gap = layer - current_layer
    if gap <= 0:
        raise ConfigError(
            f"prefetch target layer {layer} must be past current "
            f"layer {current_layer}"
        )
    return probability / gap
