"""Similarity-aware expert selection and prefetch priorities (§4.3, §4.5).

Given a matched expert map row and the match's similarity score, fMoE
computes a dynamic selection threshold

    δ = clip(1 − score, 0, 1)

and prefetches the smallest set of highest-probability experts whose summed
probability exceeds δ (Eqs. 6–8), always more than the top-K the gate will
activate.  Low-confidence matches therefore hedge with more experts; high
confidence matches prefetch tightly, trimming memory traffic.

Prefetch issue order follows PRI = p / (l − l_now): likely experts on near
layers first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def selection_threshold(score: float) -> float:
    """δ = clip(1 − score, 0, 1) for a cosine score in [−1, 1]."""
    return float(np.clip(1.0 - score, 0.0, 1.0))


def select_prefetch_experts(
    distribution: np.ndarray,
    threshold: float,
    top_k: int,
    max_count: int | None = None,
) -> np.ndarray:
    """Minimal high-probability expert set for one layer (Eqs. 6–8).

    Picks experts in descending probability until the cumulative
    probability exceeds ``threshold``, subject to the paper's constraint 8
    (strictly more experts than the ``top_k`` the gate activates, where the
    layer width allows) and an optional hedging cap ``max_count``.
    """
    distribution = np.asarray(distribution, dtype=np.float64)
    if distribution.ndim != 1:
        raise ConfigError("distribution must be 1-D")
    num_experts = distribution.shape[0]
    if not 1 <= top_k <= num_experts:
        raise ConfigError(f"top_k must be in [1, {num_experts}]")
    if not 0.0 <= threshold <= 1.0:
        raise ConfigError("threshold must be in [0, 1]")
    min_needed = min(top_k + 1, num_experts)
    cap = num_experts if max_count is None else min(max_count, num_experts)
    cap = max(cap, min_needed)
    order = np.argsort(distribution)[::-1]
    cumulative = np.cumsum(distribution[order])
    count = int(np.searchsorted(cumulative, threshold) + 1)
    count = max(count, min_needed)
    count = min(count, cap)
    return order[:count]


def prefetch_priority(
    probability: float, layer: int, current_layer: int
) -> float:
    """PRI_prefetch = p / (l − l_now): near, likely experts first (§4.5)."""
    gap = layer - current_layer
    if gap <= 0:
        raise ConfigError(
            f"prefetch target layer {layer} must be past current "
            f"layer {current_layer}"
        )
    return probability / gap
