"""The simulated MoE model: sessions, iterations, and routing outputs.

:class:`MoEModel` plays the role of the HuggingFace checkpoint in the
paper's prototype.  A serving engine opens a :class:`RequestSession` per
request and pulls one :class:`IterationRouting` per inference iteration
(first the prefill, then one per decode token).  Each routing carries the
gate's per-layer probability distributions — the raw material of fMoE's
expert maps — plus the activated expert sets the cache is judged against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.moe.config import MoEModelConfig
from repro.moe.embeddings import EmbeddingModel
from repro.moe.gating import PhaseProcess, SampledIteration, SyntheticGate
from repro.types import Stage


@dataclass(frozen=True)
class IterationRouting:
    """Everything the gate reveals during one inference iteration."""

    stage: Stage
    index: int
    """0 for prefill; 1, 2, ... for decode iterations."""

    distributions: np.ndarray
    """Per-layer routing probabilities, shape ``(L, J)``."""

    activated: tuple[np.ndarray, ...]
    """Per-layer sorted arrays of activated (offloadable) expert indices."""

    logits: np.ndarray
    """Sampled gate logits; consumed only by the speculation oracle."""

    num_tokens: int
    """Tokens processed this iteration (prompt length for prefill, else 1)."""


class RequestSession:
    """Iterates one request's routing through prefill and decode."""

    def __init__(
        self,
        model: "MoEModel",
        cluster: int,
        input_tokens: int,
        output_tokens: int,
        seed: int,
    ) -> None:
        if input_tokens < 1:
            raise ConfigError("input_tokens must be >= 1")
        if output_tokens < 1:
            raise ConfigError("output_tokens must be >= 1")
        self.model = model
        self.cluster = cluster
        self.input_tokens = input_tokens
        self.output_tokens = output_tokens
        self._rng = np.random.default_rng(seed)
        profile = model.config.routing
        initial_phase = int(self._rng.integers(profile.phases_per_cluster))
        self._phases = PhaseProcess(
            profile.phases_per_cluster,
            profile.phase_stay_prob,
            initial_phase,
            self._rng,
        )
        self.embedding, residual = model.embedder.embed_with_residual(
            cluster, self._rng
        )
        self._prompt_bias = model.gate.prompt_bias(residual)
        self._next_index = 0

    @property
    def total_iterations(self) -> int:
        """Prefill plus one decode iteration per additional output token."""
        return 1 + max(self.output_tokens - 1, 0)

    @property
    def finished(self) -> bool:
        return self._next_index >= self.total_iterations

    def next_iteration(self) -> IterationRouting:
        """Run the gate for the next iteration and return its routing."""
        if self.finished:
            raise SimulationError("session already produced all iterations")
        index = self._next_index
        self._next_index += 1
        phase = self._phases.phase
        if index == 0:
            sample = self.model.gate.sample_prefill(
                self.cluster,
                phase,
                self.input_tokens,
                self._rng,
                prompt_bias=self._prompt_bias,
            )
            stage, tokens = Stage.PREFILL, self.input_tokens
        else:
            sample = self.model.gate.sample_decode(
                self.cluster, phase, self._rng, prompt_bias=self._prompt_bias
            )
            stage, tokens = Stage.DECODE, 1
        self._phases.advance()
        return IterationRouting(
            stage=stage,
            index=index,
            distributions=sample.distributions,
            activated=sample.activated,
            logits=sample.logits,
            num_tokens=tokens,
        )

    def speculate(
        self,
        routing: IterationRouting,
        target_layer: int,
        distance: int,
        noise_multiplier: float = 1.0,
    ) -> np.ndarray:
        """Speculative distribution for ``target_layer`` of this iteration."""
        return self.model.gate.speculate(
            routing.logits,
            target_layer,
            distance,
            self._rng,
            noise_multiplier=noise_multiplier,
        )


class MoEModel:
    """A simulated MoE checkpoint: gate + embedding layer + sizes."""

    def __init__(self, config: MoEModelConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self.gate = SyntheticGate(config, seed=seed)
        self.embedder = EmbeddingModel(
            num_clusters=config.routing.num_clusters,
            dim=config.embedding_dim,
            seed=seed + 1,
        )

    def start_session(
        self,
        cluster: int,
        input_tokens: int,
        output_tokens: int,
        seed: int,
    ) -> RequestSession:
        """Open a routing session for one request."""
        if not 0 <= cluster < self.config.routing.num_clusters:
            raise ConfigError(
                f"cluster {cluster} out of range "
                f"[0, {self.config.routing.num_clusters})"
            )
        return RequestSession(self, cluster, input_tokens, output_tokens, seed)

    def sample_reference(
        self, cluster: int, phase: int, seed: int
    ) -> SampledIteration:
        """One standalone decode-style sample (analysis helpers)."""
        rng = np.random.default_rng(seed)
        return self.gate.sample_decode(cluster, phase, rng)
