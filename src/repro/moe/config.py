"""Model configurations for the three MoE LLMs the paper evaluates (Table 1).

Architecture shapes (layers, experts per layer, top-K, hidden sizes) come
from the published model cards; parameter counts match the paper's Table 1.
Expert byte sizes are derived from the standard gated-FFN expert layout
(three weight matrices of ``hidden_size x intermediate_size``) at the given
weight precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, UnknownModelError


@dataclass(frozen=True)
class RoutingProfile:
    """Statistical knobs of the synthetic gate.

    The defaults are calibrated so the substrate matches what the paper
    measures on real checkpoints:

    - iteration-level routing distributions are peaked (low Shannon entropy)
      while request-level aggregates are near-uniform (Fig. 3), which is the
      signature of the load-balancing loss the paper discusses in §2.3;
    - the per-layer peak-expert random walk makes distance-1 speculation
      accurate and longer-distance speculation decay (Fig. 4);
    - the cluster/phase structure makes semantically similar prompts route
      similarly (Fig. 8).
    """

    num_clusters: int = 32
    """Semantic topic clusters in the workload; each has its own archetypes."""

    phases_per_cluster: int = 8
    """Routing phases a generation drifts through within one cluster."""

    peak_logit: float = 4.0
    """Gate logit of the archetype's primary expert at each layer."""

    second_logit: float = 2.5
    """Gate logit of the archetype's secondary expert at each layer."""

    tail_logit_scale: float = 1.0
    """Std of persistent per-(cluster, phase) logits for non-peak experts.

    Wide MoE layers (e.g. Qwen's 60 experts, top-4) activate more experts
    than an archetype has peaks; a persistent tail ordering keeps those
    lower top-K slots predictable across iterations, as measured on real
    checkpoints, instead of reshuffling with pure iteration noise."""

    iteration_noise: float = 0.55
    """Scale of per-iteration Gumbel noise added to archetype logits."""

    walk_stay_prob: float = 0.85
    """Probability the peak expert persists from layer ``l`` to ``l+1``."""

    phase_stay_prob: float = 0.92
    """Probability the routing phase persists across decode iterations."""

    speculation_noise: float = 1.3
    """Per-distance noise growth for the speculative-prediction oracle."""

    prompt_deviation: float = 0.6
    """Std of the per-prompt persistent gate bias derived from the prompt's
    embedding residual (semantically close prompts route similarly)."""

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range knobs."""
        if self.num_clusters < 1:
            raise ConfigError("num_clusters must be >= 1")
        if self.phases_per_cluster < 1:
            raise ConfigError("phases_per_cluster must be >= 1")
        if not 0.0 <= self.walk_stay_prob <= 1.0:
            raise ConfigError("walk_stay_prob must be in [0, 1]")
        if not 0.0 <= self.phase_stay_prob <= 1.0:
            raise ConfigError("phase_stay_prob must be in [0, 1]")
        if self.iteration_noise < 0:
            raise ConfigError("iteration_noise must be >= 0")


@dataclass(frozen=True)
class MoEModelConfig:
    """Architecture and size description of one MoE-based LLM."""

    name: str
    num_layers: int
    experts_per_layer: int
    top_k: int
    hidden_size: int
    expert_intermediate_size: int
    total_params: float
    active_params: float
    always_on_experts: int = 0
    """Shared experts per layer that are never offloaded (Qwen1.5-MoE)."""

    dtype_bytes: int = 2
    embedding_dim: int = 64
    """Dimension of the simulated semantic-embedding space."""

    routing: RoutingProfile = field(default_factory=RoutingProfile)

    def __post_init__(self) -> None:
        if self.num_layers < 1:
            raise ConfigError(f"{self.name}: num_layers must be >= 1")
        if self.experts_per_layer < 1:
            raise ConfigError(f"{self.name}: experts_per_layer must be >= 1")
        if not 1 <= self.top_k <= self.experts_per_layer:
            raise ConfigError(
                f"{self.name}: top_k must be in [1, experts_per_layer]"
            )
        if self.always_on_experts < 0:
            raise ConfigError(f"{self.name}: always_on_experts must be >= 0")
        self.routing.validate()

    @property
    def expert_params(self) -> int:
        """Parameter count of a single expert (gated FFN: 3 matrices)."""
        return 3 * self.hidden_size * self.expert_intermediate_size

    @property
    def expert_bytes(self) -> int:
        """Weight bytes of a single offloadable expert."""
        return self.expert_params * self.dtype_bytes

    @property
    def total_experts(self) -> int:
        """Offloadable experts across all layers."""
        return self.num_layers * self.experts_per_layer

    @property
    def total_expert_bytes(self) -> int:
        return self.total_experts * self.expert_bytes

    @property
    def non_expert_params(self) -> float:
        """Attention, norms, embeddings, and always-on experts (resident)."""
        return max(self.total_params - self.total_experts * self.expert_params, 0.0)

    @property
    def non_expert_bytes(self) -> int:
        return int(self.non_expert_params) * self.dtype_bytes

    @property
    def active_expert_params(self) -> int:
        """Expert parameters touched per token per forward pass."""
        return self.num_layers * self.top_k * self.expert_params

    @property
    def activations_per_iteration(self) -> int:
        """Offloadable expert activations in one decode iteration."""
        return self.num_layers * self.top_k

    def with_routing(self, **changes: object) -> "MoEModelConfig":
        """Return a copy with modified routing-profile fields."""
        return replace(self, routing=replace(self.routing, **changes))


MIXTRAL_8X7B = MoEModelConfig(
    name="mixtral-8x7b",
    num_layers=32,
    experts_per_layer=8,
    top_k=2,
    hidden_size=4096,
    expert_intermediate_size=14336,
    total_params=46.7e9,
    active_params=12.9e9,
)

QWEN15_MOE = MoEModelConfig(
    name="qwen1.5-moe",
    num_layers=24,
    experts_per_layer=60,
    top_k=4,
    hidden_size=2048,
    expert_intermediate_size=1408,
    total_params=14.3e9,
    active_params=2.7e9,
    always_on_experts=4,
)

PHI35_MOE = MoEModelConfig(
    name="phi-3.5-moe",
    num_layers=32,
    experts_per_layer=16,
    top_k=2,
    hidden_size=4096,
    expert_intermediate_size=6400,
    total_params=42.0e9,
    active_params=6.6e9,
)

#: DeepSeek-MoE 16B: not in the paper's testbed, but cited throughout its
#: motivation (83% inactive parameters, §2.2) — included for extension
#: studies.  64 routed + 2 shared experts per layer, top-6 routing.
DEEPSEEK_MOE = MoEModelConfig(
    name="deepseek-moe",
    num_layers=28,
    experts_per_layer=64,
    top_k=6,
    hidden_size=2048,
    expert_intermediate_size=1408,
    total_params=16.4e9,
    active_params=2.8e9,
    always_on_experts=2,
)

#: The three models of the paper's Table 1.
EVALUATED_MODELS: tuple[MoEModelConfig, ...] = (
    MIXTRAL_8X7B,
    QWEN15_MOE,
    PHI35_MOE,
)

#: Everything the registry serves, including extension models.
ALL_MODELS: tuple[MoEModelConfig, ...] = EVALUATED_MODELS + (DEEPSEEK_MOE,)

_REGISTRY: dict[str, MoEModelConfig] = {m.name: m for m in ALL_MODELS}


def get_model_config(name: str) -> MoEModelConfig:
    """Look up one of the evaluated model configurations by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownModelError(f"unknown model {name!r}; known: {known}") from None


def tiny_test_model(
    name: str = "tiny-moe",
    num_layers: int = 6,
    experts_per_layer: int = 4,
    top_k: int = 2,
    **routing_changes: object,
) -> MoEModelConfig:
    """A small configuration for fast unit tests."""
    config = MoEModelConfig(
        name=name,
        num_layers=num_layers,
        experts_per_layer=experts_per_layer,
        top_k=top_k,
        hidden_size=64,
        expert_intermediate_size=128,
        total_params=3e6,
        active_params=1e6,
        embedding_dim=16,
    )
    if routing_changes:
        config = config.with_routing(**routing_changes)
    return config
