"""Synthetic MoE model substrate.

The paper's system consumes four things from a real MoE checkpoint: the gate
networks' per-layer probability distributions, the resulting top-K expert
activations, the embedding-layer output for each prompt, and the byte size of
each expert's weights.  This subpackage provides all four from a calibrated
stochastic model (no GPUs, no checkpoints), with the exact architecture
shapes of the three models the paper evaluates (its Table 1).
"""

from repro.moe.config import (
    MIXTRAL_8X7B,
    PHI35_MOE,
    QWEN15_MOE,
    EVALUATED_MODELS,
    MoEModelConfig,
    RoutingProfile,
    get_model_config,
)
from repro.moe.embeddings import EmbeddingModel
from repro.moe.gating import SyntheticGate, PhaseProcess
from repro.moe.model import IterationRouting, MoEModel, RequestSession

__all__ = [
    "MIXTRAL_8X7B",
    "QWEN15_MOE",
    "PHI35_MOE",
    "EVALUATED_MODELS",
    "MoEModelConfig",
    "RoutingProfile",
    "get_model_config",
    "EmbeddingModel",
    "SyntheticGate",
    "PhaseProcess",
    "MoEModel",
    "RequestSession",
    "IterationRouting",
]
