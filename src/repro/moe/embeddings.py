"""Simulated semantic-embedding layer.

The paper extracts semantic embeddings for each prompt from the MoE model's
own embedding layer (§4.2).  Here the embedding space is generated directly:
each workload topic cluster gets a fixed unit-norm center, and a prompt's
embedding is its cluster center perturbed by isotropic noise and re-
normalized.  Cosine similarity between prompts of the same cluster is
therefore high, and across clusters close to zero — the structure fMoE's
semantic search exploits.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class EmbeddingModel:
    """Maps (cluster, per-prompt noise) to unit-norm embedding vectors."""

    def __init__(
        self,
        num_clusters: int,
        dim: int,
        noise_scale: float = 0.35,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ConfigError("num_clusters must be >= 1")
        if dim < 2:
            raise ConfigError("embedding dim must be >= 2")
        if noise_scale < 0:
            raise ConfigError("noise_scale must be >= 0")
        self.num_clusters = num_clusters
        self.dim = dim
        self.noise_scale = noise_scale
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((num_clusters, dim))
        centers /= np.linalg.norm(centers, axis=1, keepdims=True)
        self._centers = centers

    @property
    def centers(self) -> np.ndarray:
        """Unit-norm cluster centers, shape ``(num_clusters, dim)``."""
        return self._centers.copy()

    def embed(self, cluster: int, rng: np.random.Generator) -> np.ndarray:
        """Embedding of a prompt from ``cluster`` with fresh prompt noise."""
        return self.embed_with_residual(cluster, rng)[0]

    def embed_with_residual(
        self, cluster: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """(embedding, residual) for a prompt of ``cluster``.

        The residual is the raw standard-normal noise vector that displaced
        the embedding from its cluster center.  The routing model derives
        the prompt's persistent gate bias from the *same* vector, which is
        what makes semantically closer prompts route more similarly — the
        correlation fMoE's semantic search exploits (paper Fig. 8).
        """
        if not 0 <= cluster < self.num_clusters:
            raise ConfigError(
                f"cluster {cluster} out of range [0, {self.num_clusters})"
            )
        residual = rng.standard_normal(self.dim)
        # The residual has norm ~sqrt(dim); normalize its contribution so
        # noise_scale is the displacement relative to the unit-norm center.
        vec = self._centers[cluster] + (
            self.noise_scale / np.sqrt(self.dim)
        ) * residual
        norm = np.linalg.norm(vec)
        if norm == 0.0:  # pragma: no cover - measure-zero event
            return self._centers[cluster].copy(), residual
        return vec / norm, residual


def cosine_similarity_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``.

    Shapes: ``a`` is ``(B, h)``, ``b`` is ``(C, h)``; the result is
    ``(B, C)``, matching Eq. 4/5 of the paper.  Zero rows yield zero
    similarity instead of NaN.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}"
        )
    a_norm = np.linalg.norm(a, axis=1, keepdims=True)
    b_norm = np.linalg.norm(b, axis=1, keepdims=True)
    a_norm[a_norm == 0.0] = 1.0
    b_norm[b_norm == 0.0] = 1.0
    return (a / a_norm) @ (b / b_norm).T
