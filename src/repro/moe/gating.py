"""Synthetic gate networks with calibrated routing statistics.

A real MoE gate maps the attention output at each layer to a probability
distribution over that layer's experts.  The paper's measurements of real
checkpoints (its §2.3–2.4 and Figs. 3–4, 8) pin down the statistics that
matter for offloading research:

1. *Peaked iterations, balanced aggregates.*  Each single iteration routes
   with low entropy, but the load-balancing loss makes the aggregate over
   many iterations near-uniform.
2. *Layer-local continuity.*  Adjacent layers prefer nearby experts (the
   residual stream changes slowly), which is why distance-1 speculation
   works and decays with distance.
3. *Semantic structure.*  Prompts with similar semantics route through
   similar expert trajectories.

This module realizes those statistics with an explicit generative model:
each (cluster, phase) pair owns an *archetype* — per-layer primary/secondary
peak experts produced by a slow random walk over expert indices — and every
iteration samples Gumbel-perturbed archetype logits.  The walk's step
probability controls property 2; the cluster/phase structure controls
properties 1 and 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig

#: Cap on how many per-token routing draws a prefill iteration simulates.
#: Beyond this many tokens the activated-expert union has saturated.
MAX_PREFILL_TOKEN_DRAWS = 48


def softmax_rows(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stable."""
    z = logits - logits.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


def top_k_indices(row: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries of ``row``, sorted ascending."""
    if k >= row.shape[-1]:
        return np.arange(row.shape[-1])
    part = np.argpartition(row, -k)[-k:]
    return np.sort(part)


class PhaseProcess:
    """Markov chain over routing phases across decode iterations.

    A generation starts in a prompt-determined phase and, at every decode
    iteration, stays with probability ``stay_prob`` or jumps to a uniformly
    random phase.  The drift is what makes request-level aggregation wash
    out iteration-level structure (paper Fig. 3c).
    """

    def __init__(
        self,
        num_phases: int,
        stay_prob: float,
        initial_phase: int,
        rng: np.random.Generator,
    ) -> None:
        if not 0 <= initial_phase < num_phases:
            raise ConfigError(
                f"initial_phase {initial_phase} out of range [0, {num_phases})"
            )
        self.num_phases = num_phases
        self.stay_prob = stay_prob
        self.phase = initial_phase
        self._rng = rng

    def advance(self) -> int:
        """Move to the next iteration's phase and return it."""
        if self.num_phases > 1 and self._rng.random() > self.stay_prob:
            self.phase = int(self._rng.integers(self.num_phases))
        return self.phase


@dataclass(frozen=True)
class SampledIteration:
    """Gate output of one inference iteration.

    ``distributions`` is the expert map row data: per-layer probability
    vectors, shape ``(L, J)``.  ``activated`` holds per-layer sorted arrays
    of activated expert indices (top-K for decode; a union over token draws
    for prefill).  ``logits`` are the sampled pre-softmax logits, used only
    by the speculative-prediction oracle that models baselines which peek at
    hidden states.
    """

    distributions: np.ndarray
    activated: tuple[np.ndarray, ...]
    logits: np.ndarray


class SyntheticGate:
    """Cluster/phase-conditioned routing-distribution generator."""

    def __init__(self, config: MoEModelConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        profile = config.routing
        self.num_clusters = profile.num_clusters
        self.num_phases = profile.phases_per_cluster
        # Layers below this index use the cluster-shared base archetype;
        # above it, the phase-specific archetype.  Early layers encode input
        # semantics (stable per cluster), later layers track the generation
        # phase — this split is what lets semantic search guide the initial
        # prefetch-distance window while trajectory search handles the rest.
        self.anchor_layers = max(2, config.num_layers // 4)
        self._archetypes = self._build_archetypes()
        # Projection from embedding residuals to per-prompt gate biases;
        # shared across clusters so cosine-close residuals map to close
        # biases.
        proj_rng = np.random.default_rng(seed + 10_007)
        self._prompt_projection = proj_rng.standard_normal(
            (config.embedding_dim, config.num_layers, config.experts_per_layer)
        )

    def _walk(self, rng: np.random.Generator, length: int) -> np.ndarray:
        """A slow random walk over expert indices (one peak per layer)."""
        j = self.config.experts_per_layer
        stay = self.config.routing.walk_stay_prob
        path = np.empty(length, dtype=np.int64)
        path[0] = rng.integers(j)
        for layer in range(1, length):
            if rng.random() < stay:
                path[layer] = path[layer - 1]
            else:
                path[layer] = rng.integers(j)
        return path

    def _width_factor(self) -> float:
        """Noise normalization for wide layers.

        I.i.d. Gumbel noise has an expected maximum growing with ln(J), so
        the same scale that gently perturbs an 8-expert layer reshuffles a
        60-expert layer completely.  Scaling by (ln(9)/ln(J+1))^1.5 keeps
        wide layers' lower top-K slots (which sit in the persistent-tail
        region, where near-ties abound) realistically stable, calibrated so
        the 8-expert Mixtral shape is unchanged.
        """
        j = self.config.experts_per_layer
        return float((np.log(9.0) / np.log(j + 1.0)) ** 1.5)

    def _logit_gain(self) -> float:
        """Sharpening gain for wide layers.

        Scaling every logit by a common factor preserves all orderings and
        flip probabilities (stability, speculation accuracy) while lowering
        the softmax entropy — wide real gates are sharper per-expert than a
        naive i.i.d. tail would suggest, which is what keeps iteration-level
        patterns low-entropy even at 60 experts (Fig. 3b's Qwen bars).
        """
        j = self.config.experts_per_layer
        return float((np.log(j + 1.0) / np.log(9.0)) ** 0.75)

    def _num_paths(self) -> int:
        """Peak walks per archetype: at least the gate's top-K."""
        return max(2, self.config.top_k)

    def _path_logit(self, rank: int) -> float:
        """Geometric peak heights: peak, second, then decaying."""
        peak = self.config.routing.peak_logit
        ratio = self.config.routing.second_logit / peak
        return peak * ratio**rank

    def _path_logits(self, paths: list[np.ndarray]) -> np.ndarray:
        """Turn ranked peak paths into per-layer logits ``(L, J)``."""
        cfg = self.config
        logits = np.zeros((cfg.num_layers, cfg.experts_per_layer))
        rows = np.arange(cfg.num_layers)
        for rank, path in enumerate(paths):
            logits[rows, path] += self._path_logit(rank)
        return logits

    def _build_archetypes(self) -> np.ndarray:
        """Archetype logits, shape ``(clusters, phases, L, J)``."""
        cfg = self.config
        num_paths = self._num_paths()
        tail_scale = cfg.routing.tail_logit_scale
        out = np.zeros(
            (
                self.num_clusters,
                self.num_phases,
                cfg.num_layers,
                cfg.experts_per_layer,
            )
        )
        root = np.random.default_rng(self.seed)
        for cluster in range(self.num_clusters):
            crng = np.random.default_rng(root.integers(2**63))
            base_paths = [
                self._walk(crng, cfg.num_layers) for _ in range(num_paths)
            ]
            base_tail = tail_scale * crng.standard_normal(
                (cfg.num_layers, cfg.experts_per_layer)
            )
            for phase in range(self.num_phases):
                paths = [p.copy() for p in base_paths]
                tail_logits = base_tail.copy()
                tail = cfg.num_layers - self.anchor_layers
                if tail > 0:
                    for path in paths:
                        path[self.anchor_layers :] = self._walk(crng, tail)
                    tail_logits[self.anchor_layers :] = (
                        tail_scale
                        * crng.standard_normal((tail, cfg.experts_per_layer))
                    )
                out[cluster, phase] = self._path_logits(paths) + tail_logits
        return out

    def archetype_logits(self, cluster: int, phase: int) -> np.ndarray:
        """Noise-free archetype logits for ``(cluster, phase)``: ``(L, J)``."""
        return self._archetypes[cluster, phase]

    def prompt_bias(self, residual: np.ndarray) -> np.ndarray:
        """Persistent per-prompt gate bias from an embedding residual.

        Unit-variance residual entries produce a bias with std
        ``prompt_deviation``; cosine-close residuals produce close biases,
        so semantic similarity predicts routing similarity.
        """
        residual = np.asarray(residual, dtype=np.float64)
        if residual.shape != (self.config.embedding_dim,):
            raise ConfigError(
                f"residual shape {residual.shape} != "
                f"({self.config.embedding_dim},)"
            )
        scale = self.config.routing.prompt_deviation / np.sqrt(
            self.config.embedding_dim
        )
        return scale * np.einsum(
            "h,hlj->lj", residual, self._prompt_projection
        )

    def _noisy_logits(
        self,
        cluster: int,
        phase: int,
        rng: np.random.Generator,
        prompt_bias: np.ndarray | None = None,
    ) -> np.ndarray:
        arch = self._archetypes[cluster, phase]
        scale = self.config.routing.iteration_noise * self._width_factor()
        noise = rng.gumbel(0.0, scale, arch.shape)
        logits = arch + noise
        if prompt_bias is not None:
            logits = logits + prompt_bias
        return self._logit_gain() * logits

    def sample_decode(
        self,
        cluster: int,
        phase: int,
        rng: np.random.Generator,
        prompt_bias: np.ndarray | None = None,
    ) -> SampledIteration:
        """One decode iteration: one token's routing through all layers."""
        logits = self._noisy_logits(cluster, phase, rng, prompt_bias)
        dist = softmax_rows(logits)
        activated = tuple(
            top_k_indices(dist[layer], self.config.top_k)
            for layer in range(self.config.num_layers)
        )
        return SampledIteration(dist, activated, logits)

    def sample_prefill(
        self,
        cluster: int,
        phase: int,
        num_tokens: int,
        rng: np.random.Generator,
        prompt_bias: np.ndarray | None = None,
    ) -> SampledIteration:
        """The prefill iteration: all prompt tokens routed in parallel.

        The activated set per layer is the union of per-token top-K choices,
        so long prompts touch most experts — the reason prefill dominates
        on-demand loading cost in offloaded serving.
        """
        if num_tokens < 1:
            raise ConfigError("prefill needs at least one token")
        draws = min(num_tokens, MAX_PREFILL_TOKEN_DRAWS)
        arch = self._archetypes[cluster, phase]
        if prompt_bias is not None:
            arch = arch + prompt_bias
        noise_scale = (
            self.config.routing.iteration_noise * self._width_factor()
        )
        per_token = self._logit_gain() * (
            arch[None, :, :]
            + rng.gumbel(0.0, noise_scale, (draws, *arch.shape))
        )
        dists = softmax_rows(per_token)
        mean_dist = dists.mean(axis=0)
        mean_logits = per_token.mean(axis=0)
        activated = []
        for layer in range(self.config.num_layers):
            chosen: set[int] = set()
            for t in range(draws):
                chosen.update(
                    top_k_indices(dists[t, layer], self.config.top_k).tolist()
                )
            activated.append(np.array(sorted(chosen), dtype=np.int64))
        return SampledIteration(mean_dist, tuple(activated), mean_logits)

    def speculate(
        self,
        iteration_logits: np.ndarray,
        target_layer: int,
        distance: int,
        rng: np.random.Generator,
        noise_multiplier: float = 1.0,
    ) -> np.ndarray:
        """Model a hidden-state speculative predictor for ``target_layer``.

        Baselines like Mixtral-Offloading and ProMoE apply future layers'
        gates to the current hidden state.  Accuracy is high one layer ahead
        and decays with distance; we model this as the true sampled logits
        of the target layer corrupted by Gumbel noise that grows linearly
        with the prediction distance.
        """
        if distance < 1:
            raise ConfigError("speculation distance must be >= 1")
        if noise_multiplier < 0:
            raise ConfigError("noise_multiplier must be >= 0")
        # Iteration logits already carry the width gain; the speculation
        # noise must scale with it to keep flip probabilities gain-free.
        noise_scale = (
            self.config.routing.speculation_noise
            * distance
            * noise_multiplier
            * self._width_factor()
            * self._logit_gain()
        )
        noisy = iteration_logits[target_layer] + rng.gumbel(
            0.0, noise_scale, self.config.experts_per_layer
        )
        return softmax_rows(noisy[None, :])[0]
