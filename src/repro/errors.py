"""Exception hierarchy for the fMoE reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid model, hardware, or policy configuration."""


class CapacityError(ReproError):
    """A memory or cache budget cannot accommodate a required resident set."""


class UnknownModelError(ConfigError):
    """A model name was not found in the registry."""


class SimulationError(ReproError):
    """The simulation reached an inconsistent state."""


class TransferError(SimulationError):
    """A host-to-device copy kept failing after exhausting its retries."""


class DeviceLostError(SimulationError):
    """An operation targeted a GPU that has failed (or no GPU survives)."""


class DeadlineExceededError(SimulationError):
    """A request missed its SLO deadline under strict enforcement."""


class TelemetryError(ReproError):
    """The observability layer was misused (unbalanced spans, bad metric)."""


class ValidationError(SimulationError):
    """A runtime invariant monitor or metamorphic law was violated."""
