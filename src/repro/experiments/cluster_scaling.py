"""Router comparison across cluster sizes (fleet-level fMoE).

The paper's evaluation stops at one serving instance; this experiment
asks how fMoE's semantic locality composes with horizontal scaling.  Each
cell serves the same online arrival trace on a simulated cluster of N
cold-started replicas under one of the three routers, and rows report
the fleet-wide expert hit rate, the affinity hit rate (how often the
semantic router actually placed by store match), the load-imbalance
coefficient, and the latency tails.

Cold starts matter: per-replica expert-map stores diverge as each
replica learns the requests it was routed, which is exactly the locality
semantic-affinity routing exploits — similar prompts return to the
replica that already holds their expert maps, so the fleet's aggregate
hit rate beats topology-blind round-robin placement.

Every cell is one picklable :class:`SimCell`, so the full (router ×
replica-count) grid fans out across a process pool.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ROUTER_NAMES, ClusterSpec
from repro.cluster.metrics import ClusterReport
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.serving.request import Request
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile


@dataclass(frozen=True)
class ClusterScalingRow:
    """Outcome of one (router, replica-count) cluster cell."""

    router: str
    replicas: int
    hit_rate: float
    affinity_hit_rate: float
    load_imbalance: float
    mean_ttft_seconds: float
    p95_e2e_seconds: float
    shed_requests: int

    def format(self) -> str:
        """One printable router-comparison row."""
        return (
            f"{self.router:18s} x{self.replicas} "
            f"hit={self.hit_rate:6.4f} "
            f"affinity={self.affinity_hit_rate:5.3f} "
            f"imbalance={self.load_imbalance:5.3f} "
            f"ttft={self.mean_ttft_seconds:6.2f}s "
            f"p95={self.p95_e2e_seconds:7.2f}s "
            f"shed={self.shed_requests:2d}"
        )


def _scaling_trace(
    config: ExperimentConfig, trace_requests: int, rate_seconds: float
) -> list[Request]:
    """The shared online arrival trace every cluster cell replays."""
    return make_azure_trace(
        AzureTraceConfig(
            num_requests=trace_requests,
            mean_interarrival_seconds=rate_seconds,
        ),
        get_dataset_profile(config.dataset),
        seed=config.seed + 10,
    )


def cluster_scaling_rows(
    replica_counts: tuple[int, ...] = (1, 2, 4),
    routers: tuple[str, ...] = ROUTER_NAMES,
    config: ExperimentConfig | None = None,
    system: str = "fmoe",
    trace_requests: int = 32,
    rate_seconds: float = 1.0,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
) -> list[ClusterScalingRow]:
    """Run the (router × replica-count) cluster grid.

    All cells replay one shared trace against cold-started replicas
    (``warm=False`` — see the module docstring), so the only variable per
    row pair is the placement policy.  ``jobs`` fans the grid across a
    process pool; rows come back in (router, replicas) order regardless.
    """
    base = config or ExperimentConfig()
    trace = tuple(_scaling_trace(base, trace_requests, rate_seconds))
    grid = [
        (router, count) for router in routers for count in replica_counts
    ]
    cells = [
        SimCell(
            config=base,
            system=system,
            requests=trace,
            respect_arrivals=True,
            cluster=ClusterSpec(replicas=count, router=router, warm=False),
        )
        for router, count in grid
    ]
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)
    rows: list[ClusterScalingRow] = []
    for (router, count), report in zip(grid, reports):
        assert isinstance(report, ClusterReport)
        rows.append(
            ClusterScalingRow(
                router=router,
                replicas=count,
                hit_rate=report.hit_rate,
                affinity_hit_rate=report.affinity_hit_rate,
                load_imbalance=report.load_imbalance(),
                mean_ttft_seconds=report.mean_ttft(),
                p95_e2e_seconds=report.percentile_latency(95),
                shed_requests=report.shed_requests,
            )
        )
    return rows
