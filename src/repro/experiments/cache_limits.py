"""Fig. 11: TPOT of the five systems under varying expert-cache limits.

The paper sweeps the GPU memory allocated for caching experts from 6 GB to
96 GB (aggregate across the six GPUs) and reports decode TPOT; fMoE should
dominate across the sweep, with the largest margins at tight budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, SYSTEM_NAMES
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.moe.config import get_model_config

#: The paper's sweep points, in GB.
DEFAULT_LIMITS_GB: tuple[float, ...] = (6, 12, 24, 48, 96)


@dataclass(frozen=True)
class CacheLimitRow:
    model: str
    system: str
    cache_gb: float
    tpot_seconds: float
    hit_rate: float


def tpot_vs_cache_limit(
    models: tuple[str, ...] = ("mixtral-8x7b",),
    dataset: str = "lmsys-chat-1m",
    systems: tuple[str, ...] = SYSTEM_NAMES,
    limits_gb: tuple[float, ...] = DEFAULT_LIMITS_GB,
    config: ExperimentConfig | None = None,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    validate: bool = False,
) -> list[CacheLimitRow]:
    """One row per (model, system, cache-GB) point of the Fig. 11 sweep.

    ``jobs`` fans the independent (model, system, budget) cells across a
    process pool; rows come back in sweep order either way.  ``validate``
    attaches invariant monitors to every cell (see :class:`SimCell`).
    """
    base = config or ExperimentConfig()
    specs: list[tuple[str, str, float]] = []
    cells: list[SimCell] = []
    for model in models:
        model_config = get_model_config(model)
        world_config = base.with_(model_name=model, dataset=dataset)
        total = model_config.total_expert_bytes
        min_budget = model_config.expert_bytes * base.hardware.num_gpus
        for gb in limits_gb:
            budget = int(gb * 1e9)
            # Budgets above the full expert footprint behave identically.
            budget = min(budget, total)
            budget = max(budget, min_budget)
            for system in systems:
                specs.append((model, system, gb))
                cells.append(
                    SimCell(
                        config=world_config,
                        system=system,
                        cache_budget_bytes=budget,
                        validate=validate,
                    )
                )
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)
    return [
        CacheLimitRow(
            model=model,
            system=system,
            cache_gb=gb,
            tpot_seconds=report.mean_tpot(),
            hit_rate=report.hit_rate,
        )
        for (model, system, gb), report in zip(specs, reports)
    ]
