"""Figs. 15-16: fMoE's own system overheads.

15 — latency breakdown of one inference iteration (context collection and
on-demand loading are synchronous; map matching, prefetch transfers, and
map updates run asynchronously off the critical path);
16 — CPU memory footprint of the Expert Map Store vs capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.store import ExpertMapStore
from repro.experiments.common import (
    ExperimentConfig,
    build_world,
    run_system,
)
from repro.moe.config import get_model_config


@dataclass(frozen=True)
class BreakdownRow:
    model: str
    component: str
    seconds_per_iteration: float
    synchronous: bool


def latency_breakdown(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    dataset: str = "lmsys-chat-1m",
    config: ExperimentConfig | None = None,
) -> list[BreakdownRow]:
    """Fig. 15: per-iteration component latencies of fMoE."""
    base = config or ExperimentConfig()
    rows = []
    for model in models:
        world = build_world(base.with_(model_name=model, dataset=dataset))
        report = run_system(world, "fmoe")
        per_iteration = report.mean_iteration_breakdown()
        for name, seconds in sorted(per_iteration.items()):
            kind, _, component = name.partition(":")
            rows.append(
                BreakdownRow(
                    model=model,
                    component=component,
                    seconds_per_iteration=seconds,
                    synchronous=kind == "sync",
                )
            )
    return rows


def synchronous_overhead_seconds(rows: list[BreakdownRow], model: str) -> float:
    """fMoE-added synchronous overhead (everything except model compute
    and loading) — the quantity the paper bounds at <30 ms (§6.7)."""
    excluded = {"compute", "ondemand_load", "prefetch_stall"}
    return sum(
        r.seconds_per_iteration
        for r in rows
        if r.model == model and r.synchronous and r.component not in excluded
    )


@dataclass(frozen=True)
class StoreMemoryRow:
    model: str
    capacity: int
    megabytes: float


def store_memory_rows(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    capacities: tuple[int, ...] = (1024, 4096, 8192, 16384, 32768),
) -> list[StoreMemoryRow]:
    """Fig. 16: Expert Map Store CPU memory vs capacity (allocated)."""
    rows = []
    for model in models:
        cfg = get_model_config(model)
        for capacity in capacities:
            store = ExpertMapStore(
                capacity=capacity,
                num_layers=cfg.num_layers,
                num_experts=cfg.experts_per_layer,
                embedding_dim=cfg.embedding_dim,
            )
            rows.append(
                StoreMemoryRow(
                    model=model,
                    capacity=capacity,
                    megabytes=store.memory_bytes(allocated=True) / 1e6,
                )
            )
    return rows
