"""Generic grid sweeps over (model, dataset, system, budget) with CSV output.

The per-figure experiment modules cover the paper's artifacts; this module
is the open-ended tool: sweep any combination of models, datasets, systems,
and cache budgets, collect one row per cell, and export CSV for external
analysis.  Used by ``python -m repro grid``.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.errors import ConfigError
from repro.experiments.common import ExperimentConfig, SYSTEM_NAMES
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.moe.config import get_model_config


@dataclass(frozen=True)
class GridCell:
    model: str
    dataset: str
    system: str
    cache_budget_gb: float
    ttft_seconds: float
    tpot_seconds: float
    hit_rate: float
    peak_cache_gb: float
    peak_kv_gb: float


GRID_CSV_FIELDS = (
    "model",
    "dataset",
    "system",
    "cache_budget_gb",
    "ttft_seconds",
    "tpot_seconds",
    "hit_rate",
    "peak_cache_gb",
    "peak_kv_gb",
)


def run_grid(
    models: Sequence[str] = ("mixtral-8x7b",),
    datasets: Sequence[str] = ("lmsys-chat-1m",),
    systems: Sequence[str] = SYSTEM_NAMES,
    budgets_gb: Sequence[float] | None = None,
    config: ExperimentConfig | None = None,
    jobs: int | None = 1,
    cache: WorldCache | None = None,
    validate: bool = False,
    executor: str = "process",
) -> list[GridCell]:
    """Run every grid cell; ``budgets_gb=None`` uses the default budget.

    ``jobs`` fans independent cells across a pool (0 = all cores);
    results are merged in sweep order, so the output is identical to a
    sequential run.  ``executor`` picks the ``jobs>1`` pool flavor
    (``"process"`` or ``"thread"`` — see
    :func:`~repro.experiments.runner.run_cells`).  Worlds are shared
    across budgets and systems through ``cache`` (or each worker's
    process cache).  ``validate`` attaches runtime invariant monitors to
    every cell and raises :class:`~repro.errors.ValidationError` on the
    first breach.
    """
    if not models or not datasets or not systems:
        raise ConfigError("models, datasets, and systems must be non-empty")
    base = config or ExperimentConfig()
    specs: list[tuple[str, str, str, float]] = []
    cells: list[SimCell] = []
    budget_list: list[int | None] = (
        [None] if budgets_gb is None else [int(g * 1e9) for g in budgets_gb]
    )
    for model in models:
        for dataset in datasets:
            world_config = base.with_(model_name=model, dataset=dataset)
            # Resolved once per world from the *world's* config, so a
            # config whose budget rule depends on the model reports
            # exactly the budget the cells below actually ran with.
            default_budget = world_config.resolve_budget(
                get_model_config(model)
            )
            for budget in budget_list:
                effective = budget if budget is not None else default_budget
                for system in systems:
                    specs.append((model, dataset, system, effective / 1e9))
                    cells.append(
                        SimCell(
                            config=world_config,
                            system=system,
                            cache_budget_bytes=budget,
                            validate=validate,
                        )
                    )
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)
    return [
        GridCell(
            model=model,
            dataset=dataset,
            system=system,
            cache_budget_gb=budget_gb,
            ttft_seconds=report.mean_ttft(),
            tpot_seconds=report.mean_tpot(),
            hit_rate=report.hit_rate,
            peak_cache_gb=report.peak_cache_bytes / 1e9,
            peak_kv_gb=report.peak_kv_bytes / 1e9,
        )
        for (model, dataset, system, budget_gb), report in zip(specs, reports)
    ]


def grid_to_csv(
    cells: Sequence[GridCell], path: str | Path | None = None
) -> str:
    """Render grid cells as CSV; optionally write to ``path``."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=GRID_CSV_FIELDS)
    writer.writeheader()
    for cell in cells:
        writer.writerow({field: getattr(cell, field) for field in GRID_CSV_FIELDS})
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
