"""Fig. 8: Pearson correlation between match similarity and hit rate."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.correlation import similarity_hitrate_correlation
from repro.experiments.common import ExperimentConfig, build_world
from repro.workloads.profiler import collect_history


@dataclass(frozen=True)
class PearsonRow:
    model: str
    dataset: str
    semantic_pearson: float
    trajectory_pearson: float


def pearson_rows(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    datasets: tuple[str, ...] = ("lmsys-chat-1m", "sharegpt"),
    distance: int = 3,
    num_requests: int = 24,
    num_test: int = 6,
    seed: int = 0,
) -> list[PearsonRow]:
    """Pearson coefficients per (model, dataset) cell (Fig. 8)."""
    rows = []
    for model in models:
        for dataset in datasets:
            world = build_world(
                ExperimentConfig(
                    model_name=model,
                    dataset=dataset,
                    num_requests=num_requests,
                    seed=seed,
                )
            )
            test = collect_history(
                world.fresh_model(), world.test_requests[:num_test]
            )
            result = similarity_hitrate_correlation(
                world.model_config,
                world.warm_traces,
                test,
                distance=distance,
            )
            rows.append(
                PearsonRow(
                    model=model,
                    dataset=dataset,
                    semantic_pearson=result.semantic_pearson,
                    trajectory_pearson=result.trajectory_pearson,
                )
            )
    return rows
