"""Storm-lite: the resilience layer vs. cluster-scope chaos, A/B at equal seeds.

The chaos matrix (:mod:`repro.experiments.faults`) degrades the *devices*
inside one engine; this experiment degrades the *fleet* — replica
crashes, correlated zone outages, and inter-replica link windows scripted
through :class:`~repro.serving.faults.ClusterFaultConfig` — and asks the
only question that matters for the resilience layer: at the same seed and
the same fault timeline, does turning it on buy SLO attainment?

Both arms of every scenario run the tracked dispatch path (cluster-scope
faults force outcome accounting even with resilience off), so the two
attainment numbers share one denominator contract: every presented
request counts exactly once, shed and crash-failed included.  Without
that, the comparison would be exactly the accounting bug
:meth:`~repro.cluster.metrics.ClusterReport.slo_attainment` documents.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.config import ClusterSpec, ResilienceConfig
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.serving.faults import (
    ClusterFaultConfig,
    FaultConfig,
    FaultSpec,
    ReplicaCrash,
    ZoneFailure,
)
from repro.serving.request import Request
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile


@dataclass(frozen=True)
class StormScenario:
    """One named cluster-chaos timeline both arms are subjected to."""

    name: str
    cluster_faults: ClusterFaultConfig
    faults: FaultConfig | None = None
    """Optional per-replica device chaos riding along (stragglers etc.)."""


def default_storm_scenarios(
    seed: int = 0, crash_time: float = 8.0
) -> tuple[StormScenario, ...]:
    """The standard storm: one scenario per cluster-failure class.

    All timelines assume a fleet of at least three replicas and a trace
    long enough to outlive ``crash_time`` (the defaults of
    :func:`storm_rows` are sized for this).
    """
    return (
        StormScenario(
            "replica-crash",
            ClusterFaultConfig(
                crashes=(ReplicaCrash(time=crash_time, replica=0),)
            ),
        ),
        StormScenario(
            "crash-restart",
            ClusterFaultConfig(
                crashes=(
                    ReplicaCrash(
                        time=crash_time, replica=1, restart_delay=4.0
                    ),
                )
            ),
        ),
        StormScenario(
            "zone-outage",
            ClusterFaultConfig(
                zones=((0, 1),),
                zone_failures=(
                    ZoneFailure(
                        time=crash_time * 1.5, zone=0, restart_delay=6.0
                    ),
                ),
            ),
        ),
        StormScenario(
            "flaky-link",
            ClusterFaultConfig(
                link_faults=(
                    FaultSpec(
                        device=0,
                        start=crash_time / 2,
                        duration=crash_time * 2,
                        severity=2.0,
                        kind="link-degradation",
                    ),
                )
            ),
        ),
        StormScenario(
            "overload-straggler",
            ClusterFaultConfig(
                crashes=(ReplicaCrash(time=crash_time * 2, replica=2),)
            ),
            faults=FaultConfig(
                seed=seed,
                straggler_prob=0.5,
                straggler_seconds=4.0,
                straggler_factor=2.5,
            ),
        ),
    )


@dataclass(frozen=True)
class StormRow:
    """Outcome of one (scenario, arm) cell of the storm matrix."""

    scenario: str
    resilience: str
    """``off`` (tracked accounting only) or ``on`` (full layer)."""

    slo_attainment: float
    deadline_seconds: float
    served: int
    shed: int
    failed: int
    retries: int
    hedges: int
    hedge_wins: int
    breaker_opens: int
    crashes: int
    restarts: int
    lost_in_flight: int

    def format(self) -> str:
        """One printable storm-matrix row."""
        return (
            f"{self.scenario:20s} {self.resilience:3s} "
            f"slo={self.slo_attainment:6.3f} "
            f"served={self.served:3d} shed={self.shed:3d} "
            f"failed={self.failed:2d} retry={self.retries:2d} "
            f"hedge={self.hedges:2d}/{self.hedge_wins:2d} "
            f"breaker={self.breaker_opens:2d} "
            f"crash={self.crashes}/{self.restarts} "
            f"lost={self.lost_in_flight}"
        )


def default_storm_resilience(healthy_p95: float) -> ResilienceConfig:
    """The storm's ``on``-arm knobs, scaled to the fleet's healthy tail.

    Hedging fires when a primary's first token takes longer than the
    healthy p95 end-to-end latency, and a served request counts as a
    breaker failure past twice that — both thresholds a healthy fleet
    essentially never crosses, so the layer only engages under faults.
    """
    budget = max(healthy_p95, 0.1)
    return ResilienceConfig(
        max_attempts_per_request=3,
        hedge_after_seconds=budget,
        breaker_failure_ttft_seconds=2.0 * budget,
        breaker_min_samples=3,
        breaker_window=6,
        breaker_open_seconds=4.0,
    )


def _storm_trace(
    config: ExperimentConfig, trace_requests: int, rate_seconds: float
) -> list[Request]:
    """The shared online arrival trace every cell replays."""
    return make_azure_trace(
        AzureTraceConfig(
            num_requests=trace_requests,
            mean_interarrival_seconds=rate_seconds,
        ),
        get_dataset_profile(config.dataset),
        seed=config.seed + 20,
    )


def storm_rows(
    scenarios: tuple[StormScenario, ...] | None = None,
    config: ExperimentConfig | None = None,
    system: str = "fmoe",
    cluster: ClusterSpec | None = None,
    resilience: ResilienceConfig | None = None,
    trace_requests: int = 24,
    rate_seconds: float = 1.5,
    deadline_multiplier: float = 3.0,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    validate: bool = False,
) -> list[StormRow]:
    """Run the storm matrix: every scenario, resilience off vs. on.

    A healthy reference run (no faults, legacy path) sets the SLO
    deadline at ``deadline_multiplier`` times its p95 latency and — when
    ``resilience`` is not supplied — calibrates the on-arm's hedging and
    breaker thresholds via :func:`default_storm_resilience`.  Both arms
    of a scenario then replay the identical trace against the identical
    fault timeline; the only difference is ``spec.resilience``.

    Rows come back in (scenario, off, on) order.  ``validate`` attaches
    the invariant monitors to every cell, making the storm double as a
    stress test of the resilience bookkeeping.
    """
    base = config or ExperimentConfig()
    spec = cluster or ClusterSpec(replicas=3, router="least-outstanding")
    if spec.resilience is not None:
        raise ValueError(
            "pass the on-arm knobs via resilience=, not on the spec "
            "(the spec is shared by both arms)"
        )
    trace = tuple(_storm_trace(base, trace_requests, rate_seconds))
    matrix = (
        scenarios
        if scenarios is not None
        else default_storm_scenarios(base.seed)
    )

    reference = run_cells(
        [
            SimCell(
                config=base,
                system=system,
                requests=trace,
                respect_arrivals=True,
                cluster=spec,
                validate=validate,
            )
        ],
        jobs=jobs,
        executor=executor,
        cache=cache,
    )[0]
    healthy_p95 = reference.percentile_latency(95)
    deadline = max(deadline_multiplier * healthy_p95, 1.0)
    armed = (
        resilience
        if resilience is not None
        else default_storm_resilience(healthy_p95)
    )

    cells = []
    for scenario in matrix:
        for arm_spec in (spec, replace(spec, resilience=armed)):
            cells.append(
                SimCell(
                    config=base,
                    system=system,
                    requests=trace,
                    respect_arrivals=True,
                    faults=scenario.faults,
                    cluster=arm_spec,
                    cluster_faults=scenario.cluster_faults,
                    validate=validate,
                )
            )
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)

    rows: list[StormRow] = []
    for index, scenario in enumerate(matrix):
        for offset, arm in enumerate(("off", "on")):
            report = reports[2 * index + offset]
            res = report.resilience
            rows.append(
                StormRow(
                    scenario=scenario.name,
                    resilience=arm,
                    slo_attainment=report.slo_attainment(deadline),
                    deadline_seconds=deadline,
                    served=sum(
                        1
                        for o in report.outcomes
                        if o.outcome == "served"
                    ),
                    shed=res.total_shed,
                    failed=res.failed,
                    retries=res.retry_dispatches,
                    hedges=res.hedges,
                    hedge_wins=res.hedge_wins,
                    breaker_opens=res.breaker_opens,
                    crashes=res.crashes,
                    restarts=res.restarts,
                    lost_in_flight=res.lost_in_flight,
                )
            )
    return rows
