"""Fig. 12: ablation studies of fMoE's design.

12a — expert pattern tracking approaches, evaluated as offline prediction
containment at the default prefetch distance:

  Speculate  — hidden-state speculation (Mixtral-Offloading / ProMoE);
  Hit count  — request-level EAM matching (MoE-Infinity);
  Map (T)    — expert maps with trajectory search only;
  Map (T+S)  — + semantic search, fixed top-K selection;
  Map (T+S+δ) — + the dynamic similarity-aware threshold (full fMoE).

12b — expert caching algorithms inside the full fMoE policy: LRU
(Mixtral-Offloading), LFU (MoE-Infinity), and fMoE's 1/(p·freq).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tracking import (
    evaluate_coarse_grained,
    evaluate_fine_grained,
    evaluate_speculative,
)
from repro.core.policy import FMoEPolicy
from repro.experiments.common import ExperimentConfig, build_world
from repro.serving.engine import ServingEngine
from repro.workloads.profiler import collect_history


@dataclass(frozen=True)
class AblationRow:
    variant: str
    hit_rate: float


def tracking_ablation(
    model: str = "mixtral-8x7b",
    dataset: str = "lmsys-chat-1m",
    distance: int = 3,
    num_requests: int = 24,
    num_test: int = 6,
    seed: int = 0,
) -> list[AblationRow]:
    """Fig. 12a: hit rate of five tracking approaches."""
    world = build_world(
        ExperimentConfig(
            model_name=model,
            dataset=dataset,
            num_requests=num_requests,
            seed=seed,
        )
    )
    warm = world.warm_traces
    test = collect_history(world.fresh_model(), world.test_requests[:num_test])
    cfg = world.model_config
    rows = [
        AblationRow(
            "speculate",
            evaluate_speculative(cfg, test, distance=distance).hit_rate,
        ),
        AblationRow(
            "hit-count",
            evaluate_coarse_grained(cfg, warm, test, distance=distance).hit_rate,
        ),
        AblationRow(
            "map-T",
            evaluate_fine_grained(
                cfg,
                warm,
                test,
                distance=distance,
                use_semantic=False,
                dynamic_threshold=False,
            ).hit_rate,
        ),
        AblationRow(
            "map-T+S",
            evaluate_fine_grained(
                cfg, warm, test, distance=distance, dynamic_threshold=False
            ).hit_rate,
        ),
        AblationRow(
            "map-T+S+delta",
            evaluate_fine_grained(cfg, warm, test, distance=distance).hit_rate,
        ),
    ]
    return rows


def caching_ablation(
    model: str = "mixtral-8x7b",
    dataset: str = "lmsys-chat-1m",
    config: ExperimentConfig | None = None,
) -> list[AblationRow]:
    """Fig. 12b: LRU vs LFU vs fMoE's eviction inside the full policy."""
    base = (config or ExperimentConfig()).with_(
        model_name=model, dataset=dataset
    )
    world = build_world(base)
    rows = []
    for algorithm in ("lru", "lfu", "fmoe"):
        policy = FMoEPolicy(
            prefetch_distance=base.prefetch_distance,
            store_capacity=base.store_capacity,
            eviction_algorithm=algorithm,
        )
        engine = ServingEngine(
            world.fresh_model(),
            policy,
            cache_budget_bytes=base.resolve_budget(world.model_config),
            hardware=base.hardware,
        )
        policy.warm(world.warm_traces)
        report = engine.run(world.test_requests)
        rows.append(AblationRow(algorithm, report.hit_rate))
    return rows
