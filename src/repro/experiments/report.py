"""Collate regenerated benchmark artifacts into one markdown report.

The figure-regeneration benches write their rows/series to
``benchmarks/results/<name>.txt``.  This module assembles those files into
a single markdown document (used by ``python -m repro report``) so a full
reproduction run leaves one reviewable artifact.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigError

#: Order and titles of the known artifacts.
ARTIFACT_TITLES: tuple[tuple[str, str], ...] = (
    ("table1_models", "Table 1 — model characteristics"),
    ("fig1b_tradeoff", "Fig. 1b — latency-memory trade-off"),
    ("fig3a_heatmaps", "Fig. 3a — coarse vs fine heatmaps"),
    ("fig3b_entropy", "Fig. 3b — entropy, coarse vs fine"),
    ("fig3c_entropy_iters", "Fig. 3c — entropy through iterations"),
    ("fig4_hitrate_distance", "Fig. 4 — hit rate vs prefetch distance"),
    ("fig8_pearson", "Fig. 8 — similarity/hit-rate correlation"),
    ("fig9_overall", "Fig. 9 — overall performance"),
    ("fig10_online_cdf", "Fig. 10 — online serving latency"),
    ("fig11_cache_limits", "Fig. 11 — expert-cache limits"),
    ("fig12a_ablation_tracking", "Fig. 12a — tracking ablation"),
    ("fig12b_ablation_caching", "Fig. 12b — caching ablation"),
    ("fig13_prefetch_distance", "Fig. 13 — prefetch-distance sensitivity"),
    ("fig14a_store_capacity", "Fig. 14a — store-capacity sensitivity"),
    ("fig14b_batch_size", "Fig. 14b — batch-size sensitivity"),
    ("fig15_latency_breakdown", "Fig. 15 — latency breakdown"),
    ("fig16_store_memory", "Fig. 16 — map-store memory"),
    ("ext_oracle_gap", "Extension — oracle gap & offline bounds"),
    ("ext_async_vs_sync", "Extension — async vs sync matching"),
    ("ext_dedup_policy", "Extension — store deduplication policy"),
    ("ext_store_coverage", "Extension — §4.4 coverage bounds"),
    ("ext_gpu_scaling", "Extension — GPU scaling & placement"),
    ("ext_layer_profile", "Extension — per-layer hit profile"),
    ("ext_scheduling", "Extension — admission scheduling"),
    ("ext_continuous_batching", "Extension — continuous batching"),
    ("ext_heterogeneity", "Extension — heterogeneity & online learning"),
)


def collate_results(
    results_dir: str | Path,
    include_missing: bool = True,
) -> str:
    """Render all known artifacts under ``results_dir`` as markdown."""
    results_dir = Path(results_dir)
    if not results_dir.is_dir():
        raise ConfigError(f"{results_dir} is not a directory")
    sections = [
        "# Regenerated evaluation artifacts",
        "",
        "Produced by `pytest benchmarks/ --benchmark-only`; see"
        " EXPERIMENTS.md for the paper-vs-measured discussion.",
        "",
    ]
    known = set()
    for name, title in ARTIFACT_TITLES:
        known.add(name)
        path = results_dir / f"{name}.txt"
        if not path.exists():
            if include_missing:
                sections += [f"## {title}", "", "*(not regenerated yet)*", ""]
            continue
        sections += [
            f"## {title}",
            "",
            "```",
            path.read_text().rstrip("\n"),
            "```",
            "",
        ]
    # Unknown extra artifacts (user-added benches) go at the end.
    for path in sorted(results_dir.glob("*.txt")):
        if path.stem in known:
            continue
        sections += [
            f"## {path.stem}",
            "",
            "```",
            path.read_text().rstrip("\n"),
            "```",
            "",
        ]
    return "\n".join(sections)


def write_report(
    results_dir: str | Path, output_path: str | Path
) -> Path:
    """Collate and write the markdown report; returns the output path."""
    output_path = Path(output_path)
    output_path.write_text(collate_results(results_dir))
    return output_path
