"""Figs. 13-14: sensitivity analyses.

13  — TTFT/TPOT of fMoE at different prefetch distances (full engine);
14a — mean semantic/trajectory similarity vs Expert Map Store capacity;
14b — TTFT/TPOT vs inference batch size for four systems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import FMoEPolicy
from repro.experiments.common import (
    ExperimentConfig,
    build_world,
    run_system,
)
from repro.serving.engine import ServingEngine
from repro.workloads.profiler import collect_history


@dataclass(frozen=True)
class DistanceSensitivityRow:
    model: str
    distance: int
    ttft_seconds: float
    tpot_seconds: float
    hit_rate: float


def prefetch_distance_sensitivity(
    models: tuple[str, ...] = ("mixtral-8x7b",),
    dataset: str = "lmsys-chat-1m",
    distances: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    config: ExperimentConfig | None = None,
) -> list[DistanceSensitivityRow]:
    """Fig. 13: fMoE with varying prefetch distance."""
    base = config or ExperimentConfig()
    rows = []
    for model in models:
        world = build_world(base.with_(model_name=model, dataset=dataset))
        for distance in distances:
            cfg = base.with_(model_name=model, prefetch_distance=distance)
            policy = FMoEPolicy(
                prefetch_distance=distance,
                store_capacity=base.store_capacity,
            )
            engine = ServingEngine(
                world.fresh_model(),
                policy,
                cache_budget_bytes=cfg.resolve_budget(world.model_config),
                hardware=base.hardware,
            )
            policy.warm(world.warm_traces)
            report = engine.run(world.test_requests)
            rows.append(
                DistanceSensitivityRow(
                    model=model,
                    distance=distance,
                    ttft_seconds=report.mean_ttft(),
                    tpot_seconds=report.mean_tpot(),
                    hit_rate=report.hit_rate,
                )
            )
    return rows


@dataclass(frozen=True)
class CapacityRow:
    capacity: int
    mean_semantic_score: float
    mean_trajectory_score: float


def store_capacity_sensitivity(
    model: str = "mixtral-8x7b",
    dataset: str = "lmsys-chat-1m",
    capacities: tuple[int, ...] = (64, 128, 256, 512, 1024, 2048),
    num_requests: int = 48,
    num_test: int = 6,
    seed: int = 0,
) -> list[CapacityRow]:
    """Fig. 14a: match similarity vs store capacity (diminishing returns)."""
    from repro.analysis.tracking import build_store
    from repro.core.matcher import ExpertMapMatcher

    world = build_world(
        ExperimentConfig(
            model_name=model,
            dataset=dataset,
            num_requests=num_requests,
            seed=seed,
        )
    )
    test = collect_history(world.fresh_model(), world.test_requests[:num_test])
    rows = []
    for capacity in capacities:
        store = build_store(
            world.model_config, world.warm_traces, distance=3, capacity=capacity
        )
        matcher = ExpertMapMatcher(store)
        sem_scores: list[float] = []
        traj_scores: list[float] = []
        for trace in test:
            sem = matcher.match_semantic(trace.embedding[None, :])
            assert sem is not None
            sem_scores.append(float(sem.scores[0]))
            for iteration_map in trace.iteration_maps:
                query = matcher.trajectory_query(iteration_map[None, :, :])
                for layer in (4, 12, 20):
                    if layer >= world.model_config.num_layers - 3:
                        continue
                    result = query.match(layer + 1) if query else None
                    assert result is not None
                    traj_scores.append(float(result.scores[0]))
        rows.append(
            CapacityRow(
                capacity=capacity,
                mean_semantic_score=sum(sem_scores) / len(sem_scores),
                mean_trajectory_score=sum(traj_scores) / len(traj_scores),
            )
        )
    return rows


@dataclass(frozen=True)
class BatchSizeRow:
    system: str
    batch_size: int
    ttft_seconds: float
    tpot_seconds: float


def batch_size_sensitivity(
    model: str = "mixtral-8x7b",
    dataset: str = "lmsys-chat-1m",
    systems: tuple[str, ...] = (
        "fmoe",
        "mixtral-offloading",
        "promoe",
        "moe-infinity",
    ),
    batch_sizes: tuple[int, ...] = (1, 2, 4),
    config: ExperimentConfig | None = None,
) -> list[BatchSizeRow]:
    """Fig. 14b: performance as the inference batch size grows."""
    base = (config or ExperimentConfig()).with_(
        model_name=model, dataset=dataset
    )
    world = build_world(base)
    rows = []
    for system in systems:
        for batch_size in batch_sizes:
            report = run_system(world, system, batch_size=batch_size)
            rows.append(
                BatchSizeRow(
                    system=system,
                    batch_size=batch_size,
                    ttft_seconds=report.mean_ttft(),
                    tpot_seconds=report.mean_tpot(),
                )
            )
    return rows
