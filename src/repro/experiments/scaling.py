"""Extension experiments: GPU scaling and expert-placement strategies.

Not figures from the paper, but ablations of deployment choices its §5
implementation makes: how performance scales with the number of GPUs
(more parallel PCIe links and cache shards), and how the round-robin
expert placement compares with layer-sharding and random hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.policy import FMoEPolicy
from repro.experiments.common import ExperimentConfig, World, build_world
from repro.serving.engine import ServingEngine


@dataclass(frozen=True)
class GpuScalingRow:
    num_gpus: int
    ttft_seconds: float
    tpot_seconds: float
    hit_rate: float


def _run_fmoe(
    world: World,
    config: ExperimentConfig,
    num_gpus: int | None = None,
    placement: str = "round-robin",
):
    hardware = config.hardware
    if num_gpus is not None:
        hardware = replace(hardware, num_gpus=num_gpus)
    policy = FMoEPolicy(
        prefetch_distance=config.prefetch_distance,
        store_capacity=config.store_capacity,
    )
    engine = ServingEngine(
        world.fresh_model(),
        policy,
        cache_budget_bytes=config.resolve_budget(world.model_config),
        hardware=hardware,
        placement=placement,
    )
    policy.warm(world.warm_traces)
    return engine.run(world.test_requests)


def gpu_scaling(
    gpu_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    config: ExperimentConfig | None = None,
) -> list[GpuScalingRow]:
    """fMoE performance as the GPU (PCIe link) count grows."""
    base = config or ExperimentConfig()
    world = build_world(base)
    rows = []
    for num_gpus in gpu_counts:
        report = _run_fmoe(world, base, num_gpus=num_gpus)
        rows.append(
            GpuScalingRow(
                num_gpus=num_gpus,
                ttft_seconds=report.mean_ttft(),
                tpot_seconds=report.mean_tpot(),
                hit_rate=report.hit_rate,
            )
        )
    return rows


@dataclass(frozen=True)
class PlacementRow:
    placement: str
    ttft_seconds: float
    tpot_seconds: float
    hit_rate: float


def placement_comparison(
    placements: tuple[str, ...] = ("round-robin", "layer-sharded", "hashed"),
    config: ExperimentConfig | None = None,
) -> list[PlacementRow]:
    """Expert-placement strategies under the same policy and budget."""
    base = config or ExperimentConfig()
    world = build_world(base)
    rows = []
    for placement in placements:
        report = _run_fmoe(world, base, placement=placement)
        rows.append(
            PlacementRow(
                placement=placement,
                ttft_seconds=report.mean_ttft(),
                tpot_seconds=report.mean_tpot(),
                hit_rate=report.hit_rate,
            )
        )
    return rows
