"""One module per paper table/figure (see DESIGN.md §3 for the index).

Each experiment function returns plain typed rows/series that the matching
benchmark file under ``benchmarks/`` prints, so the same code path backs
interactive use, tests, and the regeneration harness.
"""

from repro.experiments.common import (
    ExperimentConfig,
    World,
    build_world,
    make_engine,
    make_policy,
    run_system,
    SYSTEM_NAMES,
)

__all__ = [
    "ExperimentConfig",
    "World",
    "build_world",
    "make_engine",
    "make_policy",
    "run_system",
    "SYSTEM_NAMES",
]
