"""Storm: a multi-tenant day of traffic against the priority-aware cluster.

The experiment behind ``repro storm``.  Each requested scale (``10k``,
``100k``, ``1m`` offered requests) gets two measurements:

- **Census** — the *entire* day is streamed through
  :func:`~repro.workloads.traffic.traffic_census`.  This is the
  memory-bound leg: the lazy heap-merge keeps peak allocation at
  O(tenants x block) no matter the scale, which is what lets a
  million-request day run inside CI (the smoke test pins the peak with
  ``tracemalloc``).
- **Simulation window** — the first ``sim_requests`` arrivals replay
  through a shared-store cluster with admission control and a premium
  bypass (``priority_bypass_level``).  The admission rate is fixed across
  scales, so rising offered load turns into overload naturally: at
  ``10k`` the bucket never empties, at ``1m`` the lower tiers shed while
  premium rides the bypass — the per-tier SLO-attainment split the
  priority scheduler exists to produce.

Per tenant, the window additionally runs *solo* (same spec, that
tenant's arrivals only); the drop from solo to mixed expert-cache hit
rate is the noisy-neighbor cache-pollution metric.

Everything is a pure function of (config, scales, knobs): reports come
from seeded :class:`~repro.experiments.runner.SimCell` runs, so rows are
byte-deterministic at any ``jobs`` level.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from itertools import islice
from typing import Sequence

from repro.cluster.config import ClusterSpec, ResilienceConfig
from repro.errors import ConfigError
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.obs.slo import TieredSLOTracker
from repro.workloads.traffic import (
    PREMIUM_PRIORITY,
    TrafficCensus,
    TrafficConfig,
    default_storm_traffic,
    stream_traffic,
    traffic_census,
)

#: The canonical benchmark scales, in ascending offered load.
DEFAULT_SCALES = ("10k", "100k", "1m")


def parse_scale(text: str) -> tuple[str, int]:
    """``"10k"``/``"1m"``/``"2500"`` -> (normalized label, request count)."""
    label = text.strip().lower()
    try:
        if label.endswith("k"):
            count = int(float(label[:-1]) * 1_000)
        elif label.endswith("m"):
            count = int(float(label[:-1]) * 1_000_000)
        else:
            count = int(label)
    except ValueError:
        raise ConfigError(
            f"bad scale {text!r}; use forms like 10k, 100k, 1m, or 2500"
        ) from None
    if count < 3:
        raise ConfigError(f"scale {text!r} too small (need >= 3 requests)")
    return label, count


def census_with_peak_alloc(
    traffic: TrafficConfig,
) -> tuple[TrafficCensus, int]:
    """Stream the full day under ``tracemalloc``; return (census, peak bytes).

    The memory-bound proof: the peak is a function of tenant count and
    :data:`~repro.workloads.traffic.BLOCK_REQUESTS`, not of the day's
    length.  Measurement only — the peak never lands in benchmark
    payloads (allocator noise is not deterministic; the census is).
    """
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        census = traffic_census(stream_traffic(traffic))
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return census, peak


@dataclass(frozen=True)
class StormTierRow:
    """One SLO tier's client-perceived outcome inside one scale's window."""

    scale: str
    tier: str
    offered: int
    served: int
    shed: int
    failed: int
    shed_rate: float
    ttft_p50: float | None
    ttft_p95: float | None
    ttft_p99: float | None
    slo_attainment: float
    budget_consumed: float

    def format(self) -> str:
        """One printable tier row."""
        p95 = "-" if self.ttft_p95 is None else f"{self.ttft_p95:6.3f}"
        p99 = "-" if self.ttft_p99 is None else f"{self.ttft_p99:6.3f}"
        return (
            f"{self.scale:>5s} {self.tier:8s} "
            f"offered={self.offered:4d} served={self.served:4d} "
            f"shed={self.shed:4d} "
            f"ttft_p95={p95:>6s} ttft_p99={p99:>6s} "
            f"slo={self.slo_attainment:6.3f} "
            f"burn={self.budget_consumed:6.3f}"
        )

    def to_dict(self) -> dict:
        """JSON-ready payload row."""
        return {
            "scale": self.scale,
            "tier": self.tier,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "failed": self.failed,
            "shed_rate": self.shed_rate,
            "ttft_p50": self.ttft_p50,
            "ttft_p95": self.ttft_p95,
            "ttft_p99": self.ttft_p99,
            "slo_attainment": self.slo_attainment,
            "budget_consumed": self.budget_consumed,
        }


@dataclass(frozen=True)
class StormTenantRow:
    """One tenant's window outcome plus the noisy-neighbor comparison."""

    scale: str
    tenant: str
    tier: str
    offered: int
    served: int
    shed: int
    ttft_p95: float | None
    hit_rate_mixed: float | None
    hit_rate_solo: float | None
    cache_pollution: float | None
    """Solo-run hit rate minus mixed-run hit rate: how many cache hits
    this tenant loses to its neighbors' expert working sets (positive
    means the shared store got polluted)."""

    def format(self) -> str:
        """One printable tenant row."""

        def rate(value: float | None) -> str:
            return "   -  " if value is None else f"{value:6.3f}"

        return (
            f"{self.scale:>5s} {self.tenant:16s} ({self.tier:8s}) "
            f"offered={self.offered:4d} served={self.served:4d} "
            f"hit_mixed={rate(self.hit_rate_mixed)} "
            f"hit_solo={rate(self.hit_rate_solo)} "
            f"pollution={rate(self.cache_pollution)}"
        )

    def to_dict(self) -> dict:
        """JSON-ready payload row."""
        return {
            "scale": self.scale,
            "tenant": self.tenant,
            "tier": self.tier,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "ttft_p95": self.ttft_p95,
            "hit_rate_mixed": self.hit_rate_mixed,
            "hit_rate_solo": self.hit_rate_solo,
            "cache_pollution": self.cache_pollution,
        }


@dataclass(frozen=True)
class StormScaleResult:
    """Everything one scale produced: census plus window outcomes."""

    scale: str
    total_requests: int
    sim_requests: int
    deadline_seconds: float
    census: dict
    tiers: tuple[StormTierRow, ...]
    tenants: tuple[StormTenantRow, ...]

    def to_dict(self) -> dict:
        """JSON-ready payload for one scale."""
        return {
            "scale": self.scale,
            "total_requests": self.total_requests,
            "sim_requests": self.sim_requests,
            "deadline_seconds": self.deadline_seconds,
            "census": self.census,
            "tiers": [row.to_dict() for row in self.tiers],
            "tenants": [row.to_dict() for row in self.tenants],
        }


def storm_spec(
    replicas: int = 2,
    admission_rate: float = 4.0,
    admission_burst: int = 8,
) -> ClusterSpec:
    """The storm's cluster shape: shared store, premium admission bypass."""
    return ClusterSpec(
        replicas=replicas,
        router="least-outstanding",
        shared_store=True,
        resilience=ResilienceConfig(
            admission_rate=admission_rate,
            admission_burst=admission_burst,
            priority_bypass_level=PREMIUM_PRIORITY,
        ),
    )


def _sim_window(traffic: TrafficConfig, sim_requests: int):
    """The first ``sim_requests`` arrivals of the day (lazily drawn)."""
    return tuple(islice(stream_traffic(traffic), sim_requests))


def storm_results(
    config: ExperimentConfig | None = None,
    scales: Sequence[str] = DEFAULT_SCALES,
    sim_requests: int = 256,
    system: str = "fmoe",
    replicas: int = 2,
    admission_rate: float = 4.0,
    admission_burst: int = 8,
    deadline_multiplier: float = 3.0,
    objective: float = 0.9,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    validate: bool = False,
) -> list[StormScaleResult]:
    """Run the storm at every scale; one :class:`StormScaleResult` each.

    Per scale: stream the full day into a census, then replay the first
    ``sim_requests`` arrivals through the shared-store cluster three
    ways — a healthy reference (no resilience; its p95 latency times
    ``deadline_multiplier`` sets the SLO deadline, floored at 1s), the
    mixed multi-tenant run, and one solo run per tenant for the
    noisy-neighbor comparison.  All cells across all scales fan out
    through one :func:`run_cells` call, so ``--jobs`` parallelism never
    changes a byte of the rows.
    """
    base = config or ExperimentConfig()
    if sim_requests < 1:
        raise ConfigError("sim_requests must be >= 1")
    spec = storm_spec(replicas, admission_rate, admission_burst)
    reference_spec = ClusterSpec(
        replicas=replicas,
        router="least-outstanding",
        shared_store=True,
    )

    plans = []
    cells: list[SimCell] = []
    for text in scales:
        label, count = parse_scale(text)
        traffic = default_storm_traffic(count, seed=base.seed)
        census = traffic_census(stream_traffic(traffic))
        window = _sim_window(traffic, sim_requests)
        tenant_names = tuple(t.name for t in traffic.tenants)
        start = len(cells)
        cells.append(
            SimCell(
                config=base,
                system=system,
                requests=window,
                cluster=reference_spec,
                validate=validate,
            )
        )
        cells.append(
            SimCell(
                config=base,
                system=system,
                requests=window,
                cluster=spec,
                validate=validate,
            )
        )
        for name in tenant_names:
            cells.append(
                SimCell(
                    config=base,
                    system=system,
                    requests=tuple(
                        r for r in window if r.tenant == name
                    ),
                    cluster=spec,
                    validate=validate,
                )
            )
        plans.append((label, count, census, window, tenant_names, start))

    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)

    results: list[StormScaleResult] = []
    for label, count, census, window, tenant_names, start in plans:
        reference = reports[start]
        mixed = reports[start + 1]
        solos = {
            name: reports[start + 2 + offset]
            for offset, name in enumerate(tenant_names)
        }
        if mixed.tenancy is None:
            raise ConfigError(
                "storm window produced no tenancy report; requests must "
                "carry tenant/tier tags"
            )
        deadline = max(
            deadline_multiplier * reference.percentile_latency(95), 1.0
        )
        tiers_by_id = {r.request_id: r.tier for r in window}
        tracker = TieredSLOTracker(
            objective=objective, deadline_seconds=deadline
        )
        tracker.observe_outcomes(mixed.outcomes, tiers_by_id)

        tier_rows = []
        for tier_name, tier in sorted(mixed.tenancy.tiers.items()):
            partition = tracker.trackers.get(tier_name)
            tier_rows.append(
                StormTierRow(
                    scale=label,
                    tier=tier_name,
                    offered=tier.offered,
                    served=tier.served,
                    shed=tier.shed,
                    failed=tier.failed,
                    shed_rate=tier.shed_rate,
                    ttft_p50=tier.ttft_p50,
                    ttft_p95=tier.ttft_p95,
                    ttft_p99=tier.ttft_p99,
                    slo_attainment=(
                        partition.attainment() if partition else 1.0
                    ),
                    budget_consumed=(
                        partition.budget_consumed() if partition else 0.0
                    ),
                )
            )

        tenant_rows = []
        for name, tenant in sorted(mixed.tenancy.tenants.items()):
            solo = solos.get(name)
            solo_hit = None
            if solo is not None and solo.tenancy is not None:
                solo_tenant = solo.tenancy.tenants.get(name)
                if solo_tenant is not None:
                    solo_hit = solo_tenant.hit_rate
            pollution = None
            if solo_hit is not None and tenant.hit_rate is not None:
                pollution = solo_hit - tenant.hit_rate
            tenant_rows.append(
                StormTenantRow(
                    scale=label,
                    tenant=name,
                    tier=tenant.tier,
                    offered=tenant.offered,
                    served=tenant.served,
                    shed=tenant.shed,
                    ttft_p95=tenant.ttft_p95,
                    hit_rate_mixed=tenant.hit_rate,
                    hit_rate_solo=solo_hit,
                    cache_pollution=pollution,
                )
            )

        results.append(
            StormScaleResult(
                scale=label,
                total_requests=count,
                sim_requests=len(window),
                deadline_seconds=deadline,
                census=census.to_dict(),
                tiers=tuple(tier_rows),
                tenants=tuple(tenant_rows),
            )
        )
    return results
