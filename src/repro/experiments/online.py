"""Fig. 10: CDF of request latency under online serving.

History structures start *empty* (fMoE's Expert Map Store, MoE-Infinity's
EAM collection); 64 requests arrive on an Azure-shaped trace and each
system serves them in arrival order.  fMoE learns its maps on the fly via
the step-5 store updates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    ExperimentConfig,
    build_world,
    run_system,
    SYSTEM_NAMES,
)
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile


@dataclass(frozen=True)
class OnlineCDF:
    model: str
    system: str
    latencies: np.ndarray
    fractions: np.ndarray

    def percentile(self, q: float) -> float:
        """The ``q``-th latency percentile of this CDF."""
        if self.latencies.size == 0:
            return 0.0
        return float(np.percentile(self.latencies, q))


def online_cdfs(
    models: tuple[str, ...] = ("mixtral-8x7b",),
    dataset: str = "lmsys-chat-1m",
    systems: tuple[str, ...] = SYSTEM_NAMES,
    num_requests: int = 64,
    config: ExperimentConfig | None = None,
    trace: AzureTraceConfig | None = None,
) -> list[OnlineCDF]:
    """Request-latency CDFs per (model, system) under cold-start replay."""
    base = config or ExperimentConfig()
    trace = trace or AzureTraceConfig(num_requests=num_requests)
    profile = get_dataset_profile(dataset)
    results = []
    for model in models:
        world = build_world(
            base.with_(model_name=model, dataset=dataset, num_requests=8)
        )
        requests = make_azure_trace(trace, profile, seed=base.seed + 10)
        for system in systems:
            report = run_system(
                world,
                system,
                warm=False,  # online: cold history
                requests=requests,
                respect_arrivals=True,
            )
            lat = np.sort(report.e2e_latencies())
            fractions = (
                np.arange(1, lat.size + 1) / lat.size
                if lat.size
                else np.array([])
            )
            results.append(
                OnlineCDF(
                    model=model,
                    system=system,
                    latencies=lat,
                    fractions=fractions,
                )
            )
    return results
