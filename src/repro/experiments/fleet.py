"""Fleet-shape sweep: SLO-per-dollar across heterogeneous clusters.

ROADMAP #3's benchmark question: given a fleet mixing GPU generations,
interconnects, and spot capacity, does cost-aware expert placement plus
cost-aware routing buy SLO attainment per dollar over the natural
baseline (identical uniform caches + least-outstanding routing)?

Every shape runs both arms on *identical hardware and price* — the
profiles, trace, and seed are shared; only the placement strategy and
router differ — so the SLO-per-dollar comparison isolates exactly the
placement/routing co-design.  A healthy homogeneous reference run sets
the SLO deadline, mirroring the storm matrix's calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.config import ClusterSpec, ReplicaProfile, get_profile
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.serving.request import Request
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile


@dataclass(frozen=True)
class FleetShape:
    """One named heterogeneous fleet: a tuple of replica profiles."""

    name: str
    profiles: tuple[ReplicaProfile, ...]

    @property
    def dollars_per_hour(self) -> float:
        return sum(p.dollars_per_hour for p in self.profiles)


def default_fleet_shapes() -> tuple[FleetShape, ...]:
    """The three benchmarked fleet shapes (ISSUE/ROADMAP #3).

    - *mixed-bandwidth*: one NVLink-class box, one baseline, one PCIe
      3.0-era box — the classic mixed-generation fleet.
    - *spot-heavy*: one on-demand baseline anchoring two cheap spot
      replicas with half the VRAM and interconnect.
    - *single-fast-node*: one expensive fast box carrying two slow cheap
      ones — the shape where routing hardware-blindness hurts most.
    """
    return (
        FleetShape(
            "mixed-bandwidth",
            (
                get_profile("fast-nvlink"),
                get_profile("baseline"),
                get_profile("slow-pcie3"),
            ),
        ),
        FleetShape(
            "spot-heavy",
            (
                get_profile("baseline"),
                get_profile("spot-small"),
                get_profile("spot-small"),
            ),
        ),
        FleetShape(
            "single-fast-node",
            (
                get_profile("fast-nvlink"),
                get_profile("slow-pcie3"),
                get_profile("slow-pcie3"),
            ),
        ),
    )


#: The two arms every shape runs: the uniform/load-balanced baseline and
#: the placement/routing co-design.  (arm name, placement, router).
FLEET_ARMS: tuple[tuple[str, str, str], ...] = (
    ("uniform", "uniform", "least-outstanding"),
    ("cost-aware", "cost-aware", "cost-aware"),
)


@dataclass(frozen=True)
class FleetRow:
    """Outcome of one (fleet shape, arm) cell of the sweep."""

    shape: str
    arm: str
    replicas: int
    slo_attainment: float
    deadline_seconds: float
    dollars_per_hour: float
    slo_per_dollar: float
    mean_ttft_seconds: float
    hit_rate: float
    served: int
    shed: int
    preloaded: int
    """Plan experts actually made resident across the fleet."""

    placement_cost: float
    placement_seed_cost: float

    def format(self) -> str:
        """One printable fleet-sweep row."""
        return (
            f"{self.shape:18s} {self.arm:10s} "
            f"slo={self.slo_attainment:6.3f} "
            f"$/h={self.dollars_per_hour:5.2f} "
            f"slo/$={self.slo_per_dollar:7.4f} "
            f"ttft={self.mean_ttft_seconds:7.4f}s "
            f"hit={self.hit_rate:6.3f} "
            f"served={self.served:3d} shed={self.shed:2d} "
            f"pre={self.preloaded:3d}"
        )


def _fleet_trace(
    config: ExperimentConfig, trace_requests: int, rate_seconds: float
) -> list[Request]:
    """The shared online arrival trace every cell replays."""
    return make_azure_trace(
        AzureTraceConfig(
            num_requests=trace_requests,
            mean_interarrival_seconds=rate_seconds,
        ),
        get_dataset_profile(config.dataset),
        seed=config.seed + 30,
    )


def fleet_rows(
    shapes: tuple[FleetShape, ...] | None = None,
    config: ExperimentConfig | None = None,
    system: str = "fmoe",
    trace_requests: int = 24,
    rate_seconds: float = 1.0,
    deadline_multiplier: float = 1.0,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    validate: bool = False,
) -> list[FleetRow]:
    """Run the fleet sweep: every shape, uniform vs. cost-aware arm.

    A healthy reference run (homogeneous baseline fleet, legacy path)
    sets the SLO deadline at ``deadline_multiplier`` times its p95
    latency — the default of 1.0 asks each heterogeneous fleet to match
    the homogeneous reference's own tail, which is the regime where the
    placement/routing co-design separates from the baseline (a laxer
    deadline saturates both arms at full attainment).  Rows come back in
    (shape, uniform, cost-aware) order.
    Every cell is a :class:`SimCell`, so ``jobs=N`` output is
    byte-identical to sequential and the sweep rides the parallel
    runner unchanged.
    """
    base = config or ExperimentConfig()
    matrix = shapes if shapes is not None else default_fleet_shapes()
    if not matrix:
        return []
    trace = tuple(_fleet_trace(base, trace_requests, rate_seconds))
    reference_replicas = max(len(s.profiles) for s in matrix)

    reference = run_cells(
        [
            SimCell(
                config=base,
                system=system,
                requests=trace,
                respect_arrivals=True,
                cluster=ClusterSpec(
                    replicas=reference_replicas,
                    router="least-outstanding",
                ),
                validate=validate,
            )
        ],
        jobs=jobs,
        executor=executor,
        cache=cache,
    )[0]
    deadline = max(
        deadline_multiplier * reference.percentile_latency(95), 1.0
    )

    cells = []
    for shape in matrix:
        spec = ClusterSpec(
            replicas=len(shape.profiles),
            router="least-outstanding",
            profiles=shape.profiles,
        )
        for _, placement, router in FLEET_ARMS:
            cells.append(
                SimCell(
                    config=base,
                    system=system,
                    requests=trace,
                    respect_arrivals=True,
                    cluster=replace(
                        spec, placement=placement, router=router
                    ),
                    validate=validate,
                )
            )
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)

    rows: list[FleetRow] = []
    for index, shape in enumerate(matrix):
        for offset, (arm, _, _) in enumerate(FLEET_ARMS):
            report = reports[len(FLEET_ARMS) * index + offset]
            fleet = report.fleet
            rows.append(
                FleetRow(
                    shape=shape.name,
                    arm=arm,
                    replicas=len(shape.profiles),
                    slo_attainment=report.slo_attainment(deadline),
                    deadline_seconds=deadline,
                    dollars_per_hour=fleet.dollars_per_hour,
                    slo_per_dollar=report.slo_per_dollar(deadline),
                    mean_ttft_seconds=report.mean_ttft(),
                    hit_rate=report.hit_rate,
                    served=len(report.aggregate.requests),
                    shed=report.shed_requests,
                    preloaded=sum(
                        row["preloaded"] for row in fleet.profiles
                    ),
                    placement_cost=fleet.placement_cost,
                    placement_seed_cost=fleet.placement_seed_cost,
                )
            )
    return rows
