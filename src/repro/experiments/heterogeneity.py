"""Extension experiments: prompt heterogeneity and online learning.

The paper's third design goal is adapting to heterogeneous models and
prompts (§3.1).  Two studies quantify that on the workload side:

- *cross-dataset transfer*: fMoE warmed on one corpus serving another —
  how much of the Expert Map Store's value survives a domain shift, and
  how much online updating recovers;
- *online learning curve*: per-request hit rate through a cold-start
  online run as the store fills (the mechanism behind Fig. 10's win).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import FMoEPolicy
from repro.experiments.common import ExperimentConfig, build_world
from repro.serving.engine import ServingEngine
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile


@dataclass(frozen=True)
class TransferRow:
    warm_dataset: str
    test_dataset: str
    online_updates: bool
    hit_rate: float
    tpot_seconds: float


def cross_dataset_transfer(
    datasets: tuple[str, str] = ("lmsys-chat-1m", "sharegpt"),
    config: ExperimentConfig | None = None,
) -> list[TransferRow]:
    """Warm on each corpus, serve each corpus, with/without online updates."""
    base = config or ExperimentConfig()
    worlds = {
        name: build_world(base.with_(dataset=name)) for name in datasets
    }
    rows = []
    for warm_name in datasets:
        for test_name in datasets:
            for online in (False, True):
                world = worlds[test_name]
                policy = FMoEPolicy(
                    prefetch_distance=base.prefetch_distance,
                    store_capacity=base.store_capacity,
                    update_store_online=online,
                )
                engine = ServingEngine(
                    world.fresh_model(),
                    policy,
                    cache_budget_bytes=base.resolve_budget(
                        world.model_config
                    ),
                    hardware=base.hardware,
                )
                policy.warm(worlds[warm_name].warm_traces)
                report = engine.run(world.test_requests)
                rows.append(
                    TransferRow(
                        warm_dataset=warm_name,
                        test_dataset=test_name,
                        online_updates=online,
                        hit_rate=report.hit_rate,
                        tpot_seconds=report.mean_tpot(),
                    )
                )
    return rows


@dataclass(frozen=True)
class LearningCurve:
    request_hit_rates: np.ndarray
    """Per-request hit rate in arrival order (cold start)."""

    request_tpots: np.ndarray
    """Per-request mean decode latency in arrival order."""

    def early_mean(self, k: int = 5) -> float:
        """Mean hit rate of the first ``k`` requests."""
        return float(np.mean(self.request_hit_rates[:k]))

    def late_mean(self, k: int = 5) -> float:
        """Mean hit rate of the last ``k`` requests."""
        return float(np.mean(self.request_hit_rates[-k:]))

    def early_tpot(self, k: int = 5) -> float:
        """Mean TPOT of the first ``k`` requests."""
        return float(np.mean(self.request_tpots[:k]))

    def late_tpot(self, k: int = 5) -> float:
        """Mean TPOT of the last ``k`` requests."""
        return float(np.mean(self.request_tpots[-k:]))


def online_learning_curve(
    num_requests: int = 24,
    config: ExperimentConfig | None = None,
) -> LearningCurve:
    """Cold-start online run; per-request hit rate as the store fills."""
    base = config or ExperimentConfig()
    world = build_world(base.with_(num_requests=8))
    trace = make_azure_trace(
        AzureTraceConfig(num_requests=num_requests),
        get_dataset_profile(base.dataset),
        seed=base.seed + 40,
    )
    policy = FMoEPolicy(
        prefetch_distance=base.prefetch_distance,
        store_capacity=base.store_capacity,
    )
    engine = ServingEngine(
        world.fresh_model(),
        policy,
        cache_budget_bytes=base.resolve_budget(world.model_config),
        hardware=base.hardware,
    )
    report = engine.run(trace, respect_arrivals=True)
    ordered = [
        m
        for m in sorted(report.requests, key=lambda m: m.start_time)
        if m.decode_latencies
    ]
    return LearningCurve(
        request_hit_rates=np.array([m.hit_rate for m in ordered]),
        request_tpots=np.array([m.tpot for m in ordered]),
    )
