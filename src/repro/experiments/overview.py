"""Fig. 1b: the latency-memory trade-off of existing solutions.

Each system is one point: mean end-to-end request latency vs the GPU memory
its expert working set occupies (peak expert-cache bytes; the no-offload
point pins the full-model corner).  The paper's claim is that fMoE sits in
the previously empty low-latency/low-memory corner.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    ExperimentConfig,
    World,
    build_world,
    run_system,
    SYSTEM_NAMES,
)


@dataclass(frozen=True)
class TradeoffPoint:
    system: str
    mean_latency_seconds: float
    memory_gb: float


def tradeoff_points(
    config: ExperimentConfig | None = None,
    include_no_offload: bool = True,
    world: World | None = None,
) -> list[TradeoffPoint]:
    """One (latency, memory) point per system for the Fig. 1b scatter."""
    config = config or ExperimentConfig()
    world = world or build_world(config)
    systems = list(SYSTEM_NAMES)
    if include_no_offload:
        systems.append("no-offload")
    points = []
    for system in systems:
        report = run_system(world, system)
        memory = report.peak_cache_bytes
        points.append(
            TradeoffPoint(
                system=system,
                mean_latency_seconds=float(
                    report.e2e_latencies().mean()
                ),
                memory_gb=memory / 1e9,
            )
        )
    return points
