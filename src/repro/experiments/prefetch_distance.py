"""Fig. 4: expert hit rate vs prefetch distance, coarse vs fine tracking.

Offline prediction-containment evaluation (no cache/timing), per model, at
increasing prefetch distances.  Fine-grained (expert map) tracking holds
its hit rate as the distance grows; coarse-grained (request-level EAM)
tracking sits far lower throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tracking import (
    evaluate_coarse_grained,
    evaluate_fine_grained,
)
from repro.experiments.common import ExperimentConfig, build_world
from repro.workloads.profiler import collect_history
from repro.workloads.split import warm_test_split


@dataclass(frozen=True)
class DistanceCurve:
    model: str
    tracker: str
    distances: tuple[int, ...]
    hit_rates: tuple[float, ...]


def hit_rate_vs_distance(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    dataset: str = "lmsys-chat-1m",
    distances: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
    num_requests: int = 48,
    num_test: int = 6,
    store_capacity: int = 2048,
    seed: int = 0,
) -> list[DistanceCurve]:
    """Fine vs coarse hit-rate curves over prefetch distances (Fig. 4)."""
    curves = []
    for model in models:
        world = build_world(
            ExperimentConfig(
                model_name=model,
                dataset=dataset,
                num_requests=num_requests,
                seed=seed,
            )
        )
        warm = world.warm_traces
        test = collect_history(
            world.fresh_model(), world.test_requests[:num_test]
        )
        fine, coarse = [], []
        for d in distances:
            fine.append(
                evaluate_fine_grained(
                    world.model_config,
                    warm,
                    test,
                    distance=d,
                    capacity=store_capacity,
                ).hit_rate
            )
            coarse.append(
                evaluate_coarse_grained(
                    world.model_config, warm, test, distance=d
                ).hit_rate
            )
        curves.append(
            DistanceCurve(model, "fine-grained", distances, tuple(fine))
        )
        curves.append(
            DistanceCurve(model, "coarse-grained", distances, tuple(coarse))
        )
    return curves
