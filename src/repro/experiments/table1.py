"""Table 1: characteristics of the three evaluated MoE models."""

from __future__ import annotations

from dataclasses import dataclass

from repro.moe.config import EVALUATED_MODELS


@dataclass(frozen=True)
class ModelRow:
    name: str
    active_params_b: float
    total_params_b: float
    active_experts: int
    total_experts_per_layer: int
    num_layers: int
    expert_mb: float

    def format(self) -> str:
        """One printable Table-1 row."""
        return (
            f"{self.name:14s} {self.active_params_b:5.1f}B/{self.total_params_b:5.1f}B  "
            f"{self.active_experts}/{self.total_experts_per_layer:-3d} experts  "
            f"{self.num_layers} layers  {self.expert_mb:7.1f} MB/expert"
        )


def table1_rows() -> list[ModelRow]:
    """One row per evaluated model, mirroring the paper's Table 1."""
    return [
        ModelRow(
            name=m.name,
            active_params_b=m.active_params / 1e9,
            total_params_b=m.total_params / 1e9,
            active_experts=m.top_k,
            total_experts_per_layer=m.experts_per_layer,
            num_layers=m.num_layers,
            expert_mb=m.expert_bytes / 1e6,
        )
        for m in EVALUATED_MODELS
    ]
