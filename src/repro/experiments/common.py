"""Shared experiment harness: world building and system runners.

A *world* is one (model, dataset) pair with its 7:3 warm/test split
materialized: profiled warm traces for policy warm-up, plus the test
requests the engine serves.  ``run_system`` builds the named policy, warms
it, and produces a :class:`~repro.serving.metrics.ServingReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.baselines import (
    BasePolicy,
    DeepSpeedPolicy,
    MixtralOffloadingPolicy,
    MoEInfinityPolicy,
    NoOffloadPolicy,
    OraclePolicy,
    ProMoEPolicy,
)
from repro.core.policy import FMoEPolicy
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig, get_model_config
from repro.moe.model import MoEModel
from repro.serving.engine import ServingEngine
from repro.serving.faults import FaultSchedule, SLOConfig
from repro.serving.hardware import DEFAULT_HARDWARE, HardwareConfig
from repro.serving.metrics import ServingReport
from repro.serving.request import Request
from repro.workloads.datasets import get_dataset_profile, make_dataset
from repro.workloads.profiler import RequestTrace, collect_history
from repro.workloads.split import warm_test_split

#: The five systems compared throughout the paper's evaluation.
SYSTEM_NAMES: tuple[str, ...] = (
    "fmoe",
    "deepspeed-inference",
    "mixtral-offloading",
    "promoe",
    "moe-infinity",
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiments (defaults follow §6.1)."""

    model_name: str = "mixtral-8x7b"
    dataset: str = "lmsys-chat-1m"
    num_requests: int = 40
    num_test_requests: int = 8
    cache_fraction: float | None = None
    """Budget as a fraction of total expert bytes (overrides the
    working-set multiplier when set)."""

    cache_working_set_multiplier: float = 0.9
    """Default budget: this multiple of one iteration's expert working set
    (L·K experts).  Keeps every model in the memory-scarce regime the
    paper's evaluation emphasizes, independent of how many experts it has;
    for Mixtral it is ~20 GB (between the 12 and 24 GB points of the
    Fig. 11 sweep), and it reproduces the paper's Fig. 9 margins most
    closely among the multipliers we calibrated."""

    cache_budget_bytes: int | None = None
    prefetch_distance: int = 3
    store_capacity: int = 1024
    batch_size: int = 1
    seed: int = 0
    hardware: HardwareConfig = field(default_factory=lambda: DEFAULT_HARDWARE)

    def resolve_budget(self, model: MoEModelConfig) -> int:
        """Expert-cache bytes for ``model`` under this configuration."""
        if self.cache_budget_bytes is not None:
            return self.cache_budget_bytes
        if self.cache_fraction is not None:
            return int(self.cache_fraction * model.total_expert_bytes)
        working_set = model.num_layers * model.top_k * model.expert_bytes
        budget = int(self.cache_working_set_multiplier * working_set)
        # The pool needs at least one expert per GPU.
        return max(budget, self.hardware.num_gpus * model.expert_bytes)

    def with_(self, **changes: object) -> "ExperimentConfig":
        """A copy of this config with ``changes`` applied."""
        return replace(self, **changes)


@dataclass
class World:
    """A materialized (model, dataset) experiment environment."""

    config: ExperimentConfig
    model_config: MoEModelConfig
    warm_traces: list[RequestTrace]
    test_requests: list[Request]

    def fresh_model(self) -> MoEModel:
        """A new model instance (same seed: same routing archetypes)."""
        return MoEModel(self.model_config, seed=self.config.seed)


def build_world(config: ExperimentConfig) -> World:
    """Sample the dataset, split 7:3, and profile the warm portion."""
    model_config = get_model_config(config.model_name)
    profile = get_dataset_profile(config.dataset)
    requests = make_dataset(
        profile, config.num_requests, seed=config.seed + 1
    )
    warm, test = warm_test_split(requests, 0.7, seed=config.seed + 2)
    if config.num_test_requests is not None:
        test = test[: config.num_test_requests]
    model = MoEModel(model_config, seed=config.seed)
    warm_traces = collect_history(model, warm)
    return World(
        config=config,
        model_config=model_config,
        warm_traces=warm_traces,
        test_requests=test,
    )


def make_policy(name: str, config: ExperimentConfig) -> BasePolicy:
    """Instantiate one of the compared systems by name."""
    if name == "fmoe":
        return FMoEPolicy(
            prefetch_distance=config.prefetch_distance,
            store_capacity=config.store_capacity,
        )
    if name == "deepspeed-inference":
        return DeepSpeedPolicy()
    if name == "mixtral-offloading":
        return MixtralOffloadingPolicy()
    if name == "promoe":
        return ProMoEPolicy(prefetch_distance=config.prefetch_distance)
    if name == "moe-infinity":
        return MoEInfinityPolicy(prefetch_distance=config.prefetch_distance)
    if name == "no-offload":
        return NoOffloadPolicy()
    if name == "oracle":
        return OraclePolicy(prefetch_distance=config.prefetch_distance)
    raise ConfigError(f"unknown system {name!r}")


def make_engine(
    world: World,
    system: str,
    policy: BasePolicy | None = None,
    cache_budget_bytes: int | None = None,
    faults: FaultSchedule | None = None,
    slo: SLOConfig | None = None,
    columnar: bool = True,
    hardware: HardwareConfig | None = None,
) -> ServingEngine:
    """Build a fresh engine for ``world`` under one system.

    The single construction path shared by :func:`run_system` and the
    cluster driver (one engine per replica), so a 1-replica cluster run
    is the same machine as a bare run.  ``policy`` overrides the default
    :func:`make_policy` construction (shared-store cluster replicas);
    ``hardware`` overrides the world's base hardware (heterogeneous-fleet
    replicas derive their own latency constants from a
    :class:`~repro.cluster.config.ReplicaProfile`).
    """
    config = world.config
    if policy is None:
        policy = make_policy(system, config)
    if hardware is None:
        hardware = config.hardware
    budget = cache_budget_bytes
    if budget is None:
        budget = config.resolve_budget(world.model_config)
    if system == "no-offload":
        # The latency floor needs every expert resident; add per-device
        # headroom because round-robin placement is not perfectly even.
        model = world.model_config
        headroom = (
            hardware.num_gpus
            * model.experts_per_layer
            * model.expert_bytes
        )
        budget = max(budget, model.total_expert_bytes + headroom)
    return ServingEngine(
        world.fresh_model(),
        policy,
        cache_budget_bytes=budget,
        hardware=hardware,
        faults=faults,
        slo=slo,
        columnar=columnar,
    )


def run_system(
    world: World,
    system: str,
    warm: bool = True,
    requests: Sequence[Request] | None = None,
    respect_arrivals: bool = False,
    batch_size: int | None = None,
    cache_budget_bytes: int | None = None,
    faults: FaultSchedule | None = None,
    slo: SLOConfig | None = None,
    telemetry=None,
    recorder=None,
    monitor=None,
    mutate=None,
    columnar: bool = True,
) -> ServingReport:
    """Serve the world's test requests under one system.

    ``telemetry`` (a :class:`repro.obs.telemetry.Telemetry`) and
    ``recorder`` (any :class:`repro.serving.events.EventSink`) attach
    observability to the run; both observe through the virtual clock and
    leave the latency results untouched.  ``monitor`` (a
    :class:`repro.validate.monitors.MonitorSuite`) binds invariant
    checking to the engine's event stream — the caller runs its
    end-of-run checks via ``monitor.finish``.  ``mutate`` is a callable
    applied to the freshly built engine (the validation harness injects
    registered defects through it).  ``columnar=False`` serves through
    the scalar reference core (the differential-parity anchor).
    """
    config = world.config
    engine = make_engine(
        world,
        system,
        cache_budget_bytes=cache_budget_bytes,
        faults=faults,
        slo=slo,
        columnar=columnar,
    )
    if mutate is not None:
        mutate(engine)
    if telemetry is not None:
        engine.set_telemetry(telemetry)
    if recorder is not None:
        engine.set_recorder(recorder)
    if monitor is not None:
        monitor.bind(engine)
    if warm:
        engine.policy.warm(world.warm_traces)
    report = engine.run(
        list(requests) if requests is not None else world.test_requests,
        batch_size=batch_size or config.batch_size,
        respect_arrivals=respect_arrivals,
    )
    return report
