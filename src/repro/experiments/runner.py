"""Parallel experiment runner: fan independent cells across processes.

The paper's evaluation is a cross-product of (model, dataset, system,
budget, seed) cells, and every cell is an independent, fully seeded
simulation: all randomness derives from the cell's own configuration and
the engine runs on a virtual clock, so the report a cell produces is a
pure function of its :class:`SimCell`.  That makes parallel execution
safe by construction — :func:`run_cells` runs cells across a process
pool and returns the reports in submission order, so a ``jobs=N`` sweep
is byte-identical to a sequential one.

Two supporting pieces keep the fan-out fast:

- :class:`WorldCache` — one materialized :class:`World` per
  (model, dataset, num_requests, num_test_requests, seed) key, shared
  across budgets and systems instead of being rebuilt per experiment
  module.  Each worker process owns a private cache (worlds are built at
  most once per worker; with a ``fork`` start method workers inherit
  the parent's already-built worlds for free).
- Cells are dispatched in contiguous chunks, so consecutive cells of one
  world land on the same worker and hit its cache.

Telemetry under parallelism: :class:`~repro.obs.telemetry.Telemetry`
objects and event sinks hold process-local state (tracers, registries,
ring buffers) and are **never shared across workers**.  A cell that wants
event accounting sets ``ring_buffer_events``; the worker attaches its own
bounded sink, and the per-worker drop counters come back inside each
:class:`~repro.serving.metrics.ServingReport`.  :func:`merge_reports`
sums those counters (``distinct_sinks=True``) so drops from different
workers are aggregated rather than collapsed by the shared-sink ``max``
rule.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.cluster.config import ClusterSpec
from repro.errors import ConfigError
from repro.experiments.common import (
    ExperimentConfig,
    World,
    build_world,
    run_system,
)
from repro.serving.faults import (
    ClusterFaultConfig,
    FaultConfig,
    FaultSchedule,
    SLOConfig,
)
from repro.serving.metrics import ServingReport
from repro.serving.request import Request

#: ExperimentConfig fields that determine world materialization.  Budget,
#: prefetch, store, batch, and hardware knobs only affect how a world is
#: *served*, never what :func:`build_world` produces.
WORLD_KEY_FIELDS: tuple[str, ...] = (
    "model_name",
    "dataset",
    "num_requests",
    "num_test_requests",
    "seed",
)


def world_key(config: ExperimentConfig) -> tuple:
    """The (model, dataset, num_requests, num_test_requests, seed) key."""
    return tuple(getattr(config, name) for name in WORLD_KEY_FIELDS)


class WorldCache:
    """Keyed cache of materialized worlds.

    ``get`` builds a world on first use of a key and afterwards returns
    the cached materialization rebound to the requested config, so two
    configs differing only in serving knobs (budget, prefetch distance,
    store capacity, hardware) share one profiled world.  Worlds are
    treated as immutable by the serving path (requests are frozen and
    every run gets a fresh model and policy), which is what makes the
    sharing safe.
    """

    def __init__(self) -> None:
        self._worlds: dict[tuple, World] = {}
        self.builds = 0
        self.hits = 0

    def __len__(self) -> int:
        return len(self._worlds)

    def clear(self) -> None:
        """Drop every cached world (counters included)."""
        self._worlds.clear()
        self.builds = 0
        self.hits = 0

    def get(self, config: ExperimentConfig) -> World:
        """The world for ``config``, built at most once per key."""
        key = world_key(config)
        world = self._worlds.get(key)
        if world is None:
            self.builds += 1
            world = build_world(config)
            self._worlds[key] = world
        else:
            self.hits += 1
        if world.config == config:
            return world
        # Same materialization, different serving knobs: rebind the
        # config so run_system resolves budgets/hardware from the
        # caller's configuration, not the first builder's.
        return World(
            config=config,
            model_config=world.model_config,
            warm_traces=world.warm_traces,
            test_requests=world.test_requests,
        )


#: Per-process cache used by cells that do not pass an explicit cache.
#: Worker processes each own one (inherited pre-warmed under ``fork``).
_PROCESS_CACHE = WorldCache()


def process_cache() -> WorldCache:
    """This process's module-level world cache."""
    return _PROCESS_CACHE


def clear_process_cache() -> None:
    """Reset the module-level cache (cold-start benchmarking/tests)."""
    _PROCESS_CACHE.clear()


@dataclass(frozen=True)
class SimCell:
    """One independent simulation: everything a worker needs, picklable.

    Randomness (dataset sampling, routing, faults) derives entirely from
    the seeds inside ``config``/``faults``/``requests``, so running a
    cell in any process at any time produces the same report.
    """

    config: ExperimentConfig
    system: str
    cache_budget_bytes: int | None = None
    warm: bool = True
    respect_arrivals: bool = False
    requests: tuple[Request, ...] | None = None
    faults: FaultConfig | None = None
    slo: SLOConfig | None = None
    ring_buffer_events: int | None = None
    """Attach a per-worker bounded event sink of this capacity; drop
    counts surface in ``ServingReport.events_dropped``.  Sinks are never
    shared across processes."""

    cluster: ClusterSpec | None = None
    """Run this cell as a multi-replica cluster simulation instead of a
    single engine; the report comes back as a
    :class:`~repro.cluster.metrics.ClusterReport`.  Warm-up is governed
    by the spec's own ``warm`` flag (``SimCell.warm`` is ignored), and
    arrivals are always respected — cluster routing is an online
    decision by construction."""

    cluster_faults: ClusterFaultConfig | None = None
    """Scripted cluster-scope chaos (replica crashes, zone outages, link
    degradation) for cluster cells; switches the driver to tracked
    outcome accounting.  Ignored for single-engine cells."""

    validate: bool = False
    """Attach runtime invariant monitors to this cell's engine(s) and
    raise :class:`~repro.errors.ValidationError` on any breach.  The
    monitors only observe the event stream, so a validated cell's report
    is byte-identical to an unvalidated one."""


def run_cell(cell: SimCell, cache: WorldCache | None = None) -> ServingReport:
    """Execute one cell in this process (worlds come from ``cache``)."""
    cache = cache if cache is not None else _PROCESS_CACHE
    world = cache.get(cell.config)
    if cell.cluster is not None:
        if cell.ring_buffer_events is not None:
            raise ConfigError(
                "cluster cells do not support ring_buffer_events "
                "(replica engines own their sinks)"
            )
        # Imported lazily: the cluster driver pulls in the serving stack,
        # while this module stays importable for cheap cell construction.
        from repro.cluster.driver import run_cluster

        return run_cluster(
            world,
            cell.system,
            cell.cluster,
            requests=(
                list(cell.requests) if cell.requests is not None else None
            ),
            fault_config=cell.faults,
            cluster_faults=cell.cluster_faults,
            slo=cell.slo,
            cache_budget_bytes=cell.cache_budget_bytes,
            validate=cell.validate,
        )
    recorder = None
    if cell.ring_buffer_events is not None:
        from repro.obs.sinks import RingBufferSink

        recorder = RingBufferSink(cell.ring_buffer_events)
    monitor = None
    if cell.validate:
        from repro.validate.monitors import MonitorSuite

        monitor = MonitorSuite()
    requests = list(cell.requests) if cell.requests is not None else None
    report = run_system(
        world,
        cell.system,
        warm=cell.warm,
        requests=requests,
        respect_arrivals=cell.respect_arrivals,
        cache_budget_bytes=cell.cache_budget_bytes,
        faults=FaultSchedule(cell.faults) if cell.faults is not None else None,
        slo=cell.slo,
        recorder=recorder,
        monitor=monitor,
    )
    if monitor is not None:
        admitted = len(
            requests if requests is not None else world.test_requests
        )
        monitor.finish(report, admitted=admitted)
        monitor.raise_if_violated(
            f"cell {cell.system} on {cell.config.model_name}"
        )
    return report


def _worker_run(cell: SimCell) -> ServingReport:
    """Pool entry point: run one cell against the worker's own cache."""
    return run_cell(cell)


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value; None or <= 0 means all CPUs."""
    if jobs is None or jobs <= 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return jobs


def _pool_context():
    """Prefer ``fork`` (workers inherit built worlds) over ``spawn``."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def _chunksize(num_cells: int, workers: int) -> int:
    """Contiguous chunks: same-world cells stay on one worker's cache
    while still leaving a few chunks per worker for load balancing."""
    return max(1, math.ceil(num_cells / (workers * 4)))


#: Executors ``run_cells`` accepts for ``jobs > 1`` fan-out.
EXECUTORS: tuple[str, ...] = ("process", "thread")


def run_cells(
    cells: Sequence[SimCell],
    jobs: int | None = 1,
    cache: WorldCache | None = None,
    executor: str = "process",
) -> list[ServingReport]:
    """Run every cell; reports come back in submission order.

    ``jobs=1`` executes sequentially in-process (against ``cache`` or the
    process cache); ``jobs>1`` fans cells across a pool.  Both paths run
    the exact same per-cell code on the same virtual clock, so the
    results are identical — parallelism only changes wall-clock.

    ``executor`` picks the pool flavor: ``"process"`` (the default)
    isolates workers in subprocesses; ``"thread"`` runs them in one
    process sharing a single :class:`WorldCache` (cells are pure and
    world builds happen at most once per key, so sharing is safe), which
    skips fork/pickle overhead and is the better fit for small grids or
    environments where subprocesses are expensive or unavailable.  The
    numpy-heavy inner loops hold the GIL, so thread-pool *speedups* are
    modest; its value is lower fan-out overhead, not extra parallelism.
    """
    cells = list(cells)
    for cell in cells:
        if not isinstance(cell, SimCell):
            raise ConfigError(f"expected SimCell, got {type(cell).__name__}")
    if executor not in EXECUTORS:
        raise ConfigError(
            f"unknown executor {executor!r} (choose from {EXECUTORS})"
        )
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(cells) <= 1:
        return [run_cell(cell, cache) for cell in cells]
    workers = min(jobs, len(cells))
    if executor == "thread":
        shared = cache if cache is not None else WorldCache()
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(lambda cell: run_cell(cell, shared), cells)
            )
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=_pool_context()
    ) as pool:
        return list(
            pool.map(
                _worker_run,
                cells,
                chunksize=_chunksize(len(cells), workers),
            )
        )


def merge_reports(reports: Sequence[ServingReport]) -> ServingReport:
    """Fold per-cell reports into one, summing per-worker drop counters.

    Every worker owns its own sink, so ``events_dropped`` values are
    independent tallies and must add (``distinct_sinks=True``) — the
    shared-sink ``max`` rule of :meth:`ServingReport.absorb` would lose
    drops recorded by all but the worst worker.
    """
    merged = ServingReport()
    names = {r.policy_name for r in reports if r.policy_name}
    if len(names) == 1:
        merged.policy_name = names.pop()
    for report in reports:
        merged.absorb(report, distinct_sinks=True)
    return merged
