"""Chaos matrix: fMoE vs. baselines under scripted fault scenarios.

The paper evaluates on a healthy testbed; this experiment asks what
happens to the same systems when the fleet degrades.  Each scenario is a
seeded :class:`~repro.serving.faults.FaultConfig` replayed as an online
trace (arrivals respected, queueing included), so fault windows interact
with real backlog dynamics.  Reported per (system, scenario):

- P95 end-to-end latency and its inflation over the system's own healthy
  run (the robustness headline);
- the fault/degradation counters: transfer retries, device failovers,
  shed requests, degraded tokens, and recovery seconds.

Every run is a pure function of the experiment seed: two invocations with
the same seed produce identical rows, fault timeline included.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterSpec
from repro.experiments.common import ExperimentConfig
from repro.experiments.runner import SimCell, WorldCache, run_cells
from repro.serving.faults import (
    DeviceFailure,
    FaultConfig,
    SLOConfig,
)
from repro.serving.request import Request
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.datasets import get_dataset_profile

#: Systems compared by default: fMoE plus the two baselines whose
#: transfers ride the PCIe channels (DeepSpeed charges copies as
#: synchronous compute and would shrug off link faults by construction).
CHAOS_SYSTEMS: tuple[str, ...] = (
    "fmoe",
    "moe-infinity",
    "mixtral-offloading",
)


@dataclass(frozen=True)
class FaultScenario:
    """One named fault timeline to subject every system to."""

    name: str
    faults: FaultConfig

    @property
    def is_healthy(self) -> bool:
        """True for the no-fault reference scenario."""
        return self.faults.is_zero


def default_scenarios(seed: int = 0) -> tuple[FaultScenario, ...]:
    """The standard chaos matrix: one scenario per fault class.

    ``healthy`` is the reference every inflation is measured against.
    """
    return (
        FaultScenario("healthy", FaultConfig(seed=seed)),
        FaultScenario(
            "degraded-pcie",
            FaultConfig(
                seed=seed,
                pcie_degradation_prob=0.7,
                pcie_degradation_seconds=5.0,
                pcie_degradation_factor=0.2,
            ),
        ),
        FaultScenario(
            "flaky-transfers",
            FaultConfig(seed=seed, transfer_failure_prob=0.15),
        ),
        FaultScenario(
            "straggler-gpu",
            FaultConfig(
                seed=seed,
                straggler_prob=0.6,
                straggler_seconds=5.0,
                straggler_factor=2.5,
            ),
        ),
        FaultScenario(
            "device-loss",
            FaultConfig(
                seed=seed,
                device_failures=(DeviceFailure(time=1.0, device=0),),
            ),
        ),
    )


@dataclass(frozen=True)
class ChaosRow:
    """Outcome of one (system, scenario) cell of the chaos matrix."""

    system: str
    scenario: str
    p95_seconds: float
    p95_inflation: float
    hit_rate: float
    retries: int
    failovers: int
    shed_requests: int
    degraded_tokens: int
    recovery_seconds: float

    def format(self) -> str:
        """One printable chaos-matrix row."""
        return (
            f"{self.system:20s} {self.scenario:16s} "
            f"p95={self.p95_seconds:8.2f}s x{self.p95_inflation:5.2f} "
            f"hit={self.hit_rate:5.3f} retry={self.retries:4d} "
            f"failover={self.failovers:4d} shed={self.shed_requests:3d} "
            f"degraded={self.degraded_tokens:4d} "
            f"recovery={self.recovery_seconds:6.3f}s"
        )


def _chaos_trace(
    config: ExperimentConfig, trace_requests: int, rate_seconds: float
) -> list[Request]:
    """The shared online arrival trace every cell replays."""
    return make_azure_trace(
        AzureTraceConfig(
            num_requests=trace_requests,
            mean_interarrival_seconds=rate_seconds,
        ),
        get_dataset_profile(config.dataset),
        seed=config.seed + 10,
    )


def chaos_rows(
    systems: tuple[str, ...] = CHAOS_SYSTEMS,
    scenarios: tuple[FaultScenario, ...] | None = None,
    config: ExperimentConfig | None = None,
    trace_requests: int = 24,
    rate_seconds: float = 2.0,
    queue_budget_multiplier: float = 2.0,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    cluster: ClusterSpec | None = None,
    validate: bool = False,
) -> list[ChaosRow]:
    """Run the full (system, scenario) chaos matrix.

    Each system first serves the trace healthy; faulty scenarios then run
    with a queue-delay budget of ``queue_budget_multiplier`` times that
    system's healthy P95 latency, so load shedding engages exactly when a
    fault inflates queueing beyond what the healthy system ever sees.

    The matrix runs as two parallelizable waves: the healthy references
    (which every faulty cell's SLO budget derives from), then all faulty
    cells at once.  ``jobs`` controls the process pool; rows come back in
    (system, scenario) order regardless.  A healthy run never depends on
    the fault seed (a zero fault config perturbs nothing), so the
    reference wave reproduces the matrix's own healthy cells exactly.

    ``cluster`` subjects a whole replica fleet to each scenario instead
    of a single engine: cells run through the cluster driver (router
    failover included) and rows aggregate fleet-wide counters — the
    :class:`~repro.cluster.metrics.ClusterReport` exposes the same
    latency/fault surface a :class:`ServingReport` does.

    ``validate`` attaches runtime invariant monitors to every cell —
    fault scenarios are exactly where a bookkeeping bug would hide, so
    the chaos matrix doubles as an invariant stress test.
    """
    base = config or ExperimentConfig()
    trace = tuple(_chaos_trace(base, trace_requests, rate_seconds))
    matrix = scenarios if scenarios is not None else default_scenarios(base.seed)

    def cell(system: str, faults: FaultConfig, slo: SLOConfig) -> SimCell:
        return SimCell(
            config=base,
            system=system,
            requests=trace,
            respect_arrivals=True,
            faults=faults,
            slo=slo,
            cluster=cluster,
            validate=validate,
        )

    healthy_faults = FaultConfig(seed=base.seed)
    reference_reports = run_cells(
        [cell(system, healthy_faults, SLOConfig()) for system in systems],
        jobs=jobs,
        executor=executor,
        cache=cache,
    )
    reference = dict(zip(systems, reference_reports))

    faulty_specs = [
        (system, index)
        for system in systems
        for index, scenario in enumerate(matrix)
        if not scenario.is_healthy
    ]
    faulty_cells = []
    for system, index in faulty_specs:
        healthy_p95 = reference[system].percentile_latency(95)
        slo = SLOConfig(
            queue_delay_budget_seconds=max(
                queue_budget_multiplier * healthy_p95, 1.0
            )
        )
        faulty_cells.append(cell(system, matrix[index].faults, slo))
    faulty_reports = dict(
        zip(
            faulty_specs,
            run_cells(
                faulty_cells, jobs=jobs, cache=cache, executor=executor
            ),
        )
    )

    rows: list[ChaosRow] = []
    for system in systems:
        healthy_p95 = reference[system].percentile_latency(95)
        for index, scenario in enumerate(matrix):
            report = (
                reference[system]
                if scenario.is_healthy
                else faulty_reports[(system, index)]
            )
            p95 = report.percentile_latency(95)
            rows.append(
                ChaosRow(
                    system=system,
                    scenario=scenario.name,
                    p95_seconds=p95,
                    p95_inflation=p95 / healthy_p95 if healthy_p95 else 0.0,
                    hit_rate=report.hit_rate,
                    retries=report.retries,
                    failovers=report.failovers,
                    shed_requests=report.shed_requests,
                    degraded_tokens=report.degraded_tokens,
                    recovery_seconds=report.recovery_seconds,
                )
            )
    return rows
