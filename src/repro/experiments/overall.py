"""Fig. 9: overall prefill/decode performance of the five systems.

TTFT, TPOT, and expert hit rate for fMoE and the four baselines across the
three MoE models and two datasets (offline setting: history warmed with the
7:3 split before serving).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import ExperimentConfig, SYSTEM_NAMES
from repro.experiments.runner import SimCell, WorldCache, run_cells


@dataclass(frozen=True)
class OverallRow:
    model: str
    dataset: str
    system: str
    ttft_seconds: float
    tpot_seconds: float
    hit_rate: float

    def format(self) -> str:
        """One printable row for the Fig. 9 table."""
        return (
            f"{self.model:14s} {self.dataset:14s} {self.system:20s} "
            f"TTFT={self.ttft_seconds:6.3f}s TPOT={self.tpot_seconds * 1000:8.1f}ms "
            f"hit={self.hit_rate:5.3f}"
        )


def overall_rows(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    datasets: tuple[str, ...] = ("lmsys-chat-1m", "sharegpt"),
    systems: tuple[str, ...] = SYSTEM_NAMES,
    config: ExperimentConfig | None = None,
    jobs: int | None = 1,
    executor: str = "process",
    cache: WorldCache | None = None,
    validate: bool = False,
) -> list[OverallRow]:
    """TTFT/TPOT/hit-rate rows for every (model, dataset, system) cell.

    Cells are independent simulations; ``jobs`` spreads them over a
    process pool (0 = all cores) with results merged in sweep order.
    ``validate`` attaches invariant monitors to every cell (see
    :class:`SimCell`).
    """
    base = config or ExperimentConfig()
    specs = [
        (model, dataset, system)
        for model in models
        for dataset in datasets
        for system in systems
    ]
    cells = [
        SimCell(
            config=base.with_(model_name=model, dataset=dataset),
            system=system,
            validate=validate,
        )
        for model, dataset, system in specs
    ]
    reports = run_cells(cells, jobs=jobs, cache=cache, executor=executor)
    return [
        OverallRow(
            model=model,
            dataset=dataset,
            system=system,
            ttft_seconds=report.mean_ttft(),
            tpot_seconds=report.mean_tpot(),
            hit_rate=report.hit_rate,
        )
        for (model, dataset, system), report in zip(specs, reports)
    ]


def improvement_summary(rows: list[OverallRow]) -> dict[str, dict[str, float]]:
    """fMoE's mean relative improvements over each baseline.

    Returns ``{baseline: {"ttft": ..., "tpot": ..., "hit": ...}}`` where
    ttft/tpot are fractional reductions and hit is fractional improvement,
    averaged over (model, dataset) pairs — the aggregation behind the
    paper's headline 47% latency / 36% hit-rate numbers.
    """
    from collections import defaultdict

    fmoe = {
        (r.model, r.dataset): r for r in rows if r.system == "fmoe"
    }
    sums: dict[str, dict[str, list[float]]] = defaultdict(
        lambda: {"ttft": [], "tpot": [], "hit": []}
    )
    for row in rows:
        if row.system == "fmoe":
            continue
        ours = fmoe.get((row.model, row.dataset))
        if ours is None:
            continue
        if row.ttft_seconds > 0:
            sums[row.system]["ttft"].append(
                1.0 - ours.ttft_seconds / row.ttft_seconds
            )
        if row.tpot_seconds > 0:
            sums[row.system]["tpot"].append(
                1.0 - ours.tpot_seconds / row.tpot_seconds
            )
        if row.hit_rate > 0:
            sums[row.system]["hit"].append(ours.hit_rate / row.hit_rate - 1.0)
    return {
        system: {
            metric: sum(vals) / len(vals) if vals else 0.0
            for metric, vals in metrics.items()
        }
        for system, metrics in sums.items()
    }
