"""Fig. 3: entropy analysis of coarse vs fine expert patterns.

3a — activation heatmaps (coarse request-aggregated vs fine per-iteration);
3b — mean per-layer entropy for three models × two datasets;
3c — mean entropy through inference iterations (cumulative aggregation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.entropy import (
    activation_heatmaps,
    coarse_fine_entropy,
    entropy_through_iterations,
)
from repro.experiments.common import ExperimentConfig, build_world


@dataclass(frozen=True)
class EntropyRow:
    model: str
    dataset: str
    coarse_mean_entropy: float
    fine_mean_entropy: float
    max_entropy: float


def entropy_comparison(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    datasets: tuple[str, ...] = ("lmsys-chat-1m", "sharegpt"),
    num_requests: int = 24,
    seed: int = 0,
) -> list[EntropyRow]:
    """Fig. 3b rows: coarse vs fine mean entropy per (model, dataset)."""
    rows = []
    for model in models:
        for dataset in datasets:
            world = build_world(
                ExperimentConfig(
                    model_name=model,
                    dataset=dataset,
                    num_requests=num_requests,
                    seed=seed,
                )
            )
            coarse, fine = coarse_fine_entropy(world.warm_traces)
            rows.append(
                EntropyRow(
                    model=model,
                    dataset=dataset,
                    coarse_mean_entropy=float(np.mean(coarse)),
                    fine_mean_entropy=float(np.mean(fine)),
                    max_entropy=float(
                        np.log2(world.model_config.experts_per_layer)
                    ),
                )
            )
    return rows


@dataclass(frozen=True)
class EntropyCurve:
    model: str
    dataset: str
    entropy_by_iteration: np.ndarray


def entropy_iteration_curves(
    models: tuple[str, ...] = ("mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"),
    datasets: tuple[str, ...] = ("lmsys-chat-1m", "sharegpt"),
    num_requests: int = 24,
    max_iterations: int = 24,
    seed: int = 0,
) -> list[EntropyCurve]:
    """Fig. 3c curves: mean entropy vs cumulative iteration count."""
    curves = []
    for model in models:
        for dataset in datasets:
            world = build_world(
                ExperimentConfig(
                    model_name=model,
                    dataset=dataset,
                    num_requests=num_requests,
                    seed=seed,
                )
            )
            curves.append(
                EntropyCurve(
                    model=model,
                    dataset=dataset,
                    entropy_by_iteration=entropy_through_iterations(
                        world.warm_traces, max_iterations=max_iterations
                    ),
                )
            )
    return curves


def heatmap_example(
    model: str = "mixtral-8x7b",
    dataset: str = "lmsys-chat-1m",
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Fig. 3a: (coarse, fine) heatmaps for one request."""
    world = build_world(
        ExperimentConfig(
            model_name=model, dataset=dataset, num_requests=8, seed=seed
        )
    )
    return activation_heatmaps(world.warm_traces[0], iteration=0)
