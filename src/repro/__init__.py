"""fMoE reproduction: fine-grained expert offloading for MoE-based LLM serving.

This package reproduces the EuroSys 2026 paper *"Taming Latency-Memory
Trade-Off in MoE-Based LLM Serving via Fine-Grained Expert Offloading"*
(the fMoE system) as a discrete-event simulation:

- :mod:`repro.moe` — synthetic MoE routing substrate (model configs, gate,
  embeddings) calibrated to the statistics the paper measures on real models.
- :mod:`repro.serving` — virtual-time serving engine, device memory and
  transfer models, request/metric plumbing.
- :mod:`repro.workloads` — synthetic LMSYS-like / ShareGPT-like prompt
  corpora and Azure-style online inference traces.
- :mod:`repro.core` — the paper's contribution: expert maps, the expert map
  store, semantic/trajectory matching, similarity-aware prefetching, and the
  priority-based expert cache, assembled into :class:`repro.core.FMoEPolicy`.
- :mod:`repro.baselines` — DeepSpeed-Inference, Mixtral-Offloading,
  MoE-Infinity, ProMoE, no-offload, and an oracle upper bound.
- :mod:`repro.analysis` — entropy / correlation / ILP analyses from the
  paper's motivation and formulation sections.
- :mod:`repro.experiments` — one module per paper table/figure.
"""

from repro.moe.config import (
    MIXTRAL_8X7B,
    PHI35_MOE,
    QWEN15_MOE,
    EVALUATED_MODELS,
    MoEModelConfig,
    get_model_config,
)
from repro.moe.model import MoEModel
from repro.serving.engine import ServingEngine
from repro.serving.hardware import HardwareConfig
from repro.core.policy import FMoEPolicy
from repro.core.expert_map import ExpertMap
from repro.core.store import ExpertMapStore
from repro.workloads.datasets import make_dataset

__all__ = [
    "MIXTRAL_8X7B",
    "QWEN15_MOE",
    "PHI35_MOE",
    "EVALUATED_MODELS",
    "MoEModelConfig",
    "get_model_config",
    "MoEModel",
    "ServingEngine",
    "HardwareConfig",
    "FMoEPolicy",
    "ExpertMap",
    "ExpertMapStore",
    "make_dataset",
]

__version__ = "1.0.0"
