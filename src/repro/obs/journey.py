"""Request journeys: per-request phase records across the cluster.

A :class:`JourneyRecorder` rides the cluster driver's dispatch loop and
every replica engine's event stream to assemble, for each request the
fleet was presented, the full story of how it was served: admission (at
which degradation rung), every dispatch attempt (primary, retries after
sheds or crashes, speculative hedges) with its expert-fetch stalls, and
the final client-visible resolution.  From that story it attributes the
client-perceived latency to phases —

- ``queue``        — arrival until the winning serve actually started
  (engine queueing, hedge delay, retry round-trips);
- ``expert_fetch`` — blocking on-demand loads plus prefetch stalls
  during the winning serve (the paper's PCIe critical path);
- ``compute``      — the rest of the winning serve window

— and names the **critical phase**, the one that dominated.  Hedged and
retried requests are attributed to exactly one winner attempt, matching
the driver's :class:`~repro.cluster.metrics.RequestOutcome` accounting.

The recorder is a pure observer: it never touches the virtual clock, so
a run with journeys attached produces byte-identical reports.  Journeys
export as JSONL (:func:`write_journeys_jsonl` /
:func:`read_journeys_jsonl`) and render through ``repro journeys``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TelemetryError
from repro.serving.events import Event, EventKind

#: Phase names, in pipeline order.
PHASE_QUEUE = "queue"
PHASE_FETCH = "expert_fetch"
PHASE_COMPUTE = "compute"
PHASES: tuple[str, ...] = (PHASE_QUEUE, PHASE_FETCH, PHASE_COMPUTE)


@dataclass
class AttemptRecord:
    """One dispatch of a request onto a replica (primary/retry/hedge)."""

    kind: str
    """``primary``, ``retry``, or ``hedge``."""

    replica_id: int
    dispatch_time: float
    status: str = "pending"
    """``served`` or ``shed`` once the attempt resolved."""

    start_time: float | None = None
    finish_time: float | None = None
    ttft: float | None = None
    """Seconds from this attempt's (possibly delayed) arrival to its
    first token — the engine-side TTFT, not the client-perceived one."""

    hits: int = 0
    misses: int = 0
    ondemand_loads: int = 0
    ondemand_seconds: float = 0.0
    prefetch_stalls: int = 0
    prefetch_stall_seconds: float = 0.0
    winner: bool = False
    """True for exactly one attempt of a served journey."""

    @property
    def fetch_seconds(self) -> float:
        """Expert-fetch seconds on this attempt's critical path."""
        return self.ondemand_seconds + self.prefetch_stall_seconds

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "replica_id": self.replica_id,
            "dispatch_time": self.dispatch_time,
            "status": self.status,
            "start_time": self.start_time,
            "finish_time": self.finish_time,
            "ttft": self.ttft,
            "hits": self.hits,
            "misses": self.misses,
            "ondemand_loads": self.ondemand_loads,
            "ondemand_seconds": self.ondemand_seconds,
            "prefetch_stalls": self.prefetch_stalls,
            "prefetch_stall_seconds": self.prefetch_stall_seconds,
            "winner": self.winner,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AttemptRecord":
        return cls(**payload)


@dataclass
class Journey:
    """The full per-request record: attempts plus the client resolution."""

    request_id: int
    arrival: float
    rung: int = 0
    outcome: str = "pending"
    """``served`` / ``shed`` / ``failed`` (``pending`` only mid-run)."""

    reason: str = ""
    replica_id: int | None = None
    """The winner replica for served journeys."""

    latency: float | None = None
    ttft: float | None = None
    hedged: bool = False
    hedge_won: bool = False
    attempts: list[AttemptRecord] = field(default_factory=list)

    def winner_attempt(self) -> AttemptRecord | None:
        """The single attempt whose serve defined a served outcome."""
        for attempt in self.attempts:
            if attempt.winner:
                return attempt
        return None

    def phases(self) -> dict[str, float]:
        """Client-latency seconds attributed to each phase.

        Empty for journeys that never served (shed/failed requests have
        no serve window to attribute).
        """
        winner = self.winner_attempt()
        if (
            self.outcome != "served"
            or winner is None
            or winner.start_time is None
            or winner.finish_time is None
            or self.latency is None
        ):
            return {}
        queue = max(winner.start_time - self.arrival, 0.0)
        fetch = winner.fetch_seconds
        serve = winner.finish_time - winner.start_time
        compute = max(serve - fetch, 0.0)
        return {
            PHASE_QUEUE: queue,
            PHASE_FETCH: fetch,
            PHASE_COMPUTE: compute,
        }

    def critical_phase(self) -> str:
        """The phase that dominated the client latency ('' if not served)."""
        phases = self.phases()
        if not phases:
            return ""
        # Ties break in pipeline order: queue before fetch before compute.
        return max(PHASES, key=lambda name: phases[name])

    def to_dict(self) -> dict:
        """JSONL row: scalars plus derived phases and critical_phase."""
        phases = self.phases()
        return {
            "request_id": self.request_id,
            "arrival": self.arrival,
            "rung": self.rung,
            "outcome": self.outcome,
            "reason": self.reason,
            "replica_id": self.replica_id,
            "latency": self.latency,
            "ttft": self.ttft,
            "hedged": self.hedged,
            "hedge_won": self.hedge_won,
            "phases": phases,
            "critical_phase": self.critical_phase(),
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Journey":
        journey = cls(
            request_id=payload["request_id"],
            arrival=payload["arrival"],
            rung=payload.get("rung", 0),
            outcome=payload.get("outcome", "pending"),
            reason=payload.get("reason", ""),
            replica_id=payload.get("replica_id"),
            latency=payload.get("latency"),
            ttft=payload.get("ttft"),
            hedged=payload.get("hedged", False),
            hedge_won=payload.get("hedge_won", False),
        )
        journey.attempts = [
            AttemptRecord.from_dict(a) for a in payload.get("attempts", [])
        ]
        return journey


#: Event kinds a journey attributes to the attempt being served.
_FETCH_KINDS = (
    EventKind.EXPERT_HIT,
    EventKind.EXPERT_MISS,
    EventKind.ONDEMAND_LOAD,
    EventKind.PREFETCH_STALL,
)


class _ReplicaSink:
    """Event-sink forwarder one replica engine streams into.

    Satisfies the sink protocol (``emit`` / ``close`` / ``dropped``) so
    it can ride ``engine.set_recorder`` — and tee with the validate
    monitors, which compose with whatever recorder is already attached.
    """

    dropped = 0

    def __init__(self, recorder: "JourneyRecorder", replica_id: int) -> None:
        self._recorder = recorder
        self.replica_id = replica_id

    def emit(self, event: Event) -> None:
        self._recorder._on_replica_event(self.replica_id, event)

    def close(self) -> None:  # pragma: no cover - protocol completeness
        pass


class JourneyRecorder:
    """Assembles request journeys from driver hooks and engine events.

    The cluster driver serves eagerly — each routed request runs to
    completion on its replica before the next dispatch — so at most one
    attempt is ever in flight, and every event a replica engine emits
    between :meth:`begin_attempt` and :meth:`end_attempt` belongs to
    that attempt.
    """

    def __init__(self) -> None:
        self.journeys: dict[int, Journey] = {}
        self._active: AttemptRecord | None = None
        self._active_replica: int | None = None

    # ------------------------------------------------------------------ #
    # Driver hooks
    # ------------------------------------------------------------------ #

    def replica_sink(self, replica_id: int) -> _ReplicaSink:
        """The event sink to attach to one replica's engine."""
        return _ReplicaSink(self, replica_id)

    def begin_request(
        self, request_id: int, arrival: float, rung: int = 0
    ) -> Journey:
        """A request was presented to the cluster (admission point)."""
        journey = Journey(request_id=request_id, arrival=arrival, rung=rung)
        self.journeys[request_id] = journey
        return journey

    def begin_attempt(
        self,
        request_id: int,
        kind: str,
        replica_id: int,
        dispatch_time: float,
    ) -> None:
        """A dispatch is about to serve on ``replica_id``."""
        journey = self.journeys.get(request_id)
        if journey is None:  # pragma: no cover - defensive
            journey = self.begin_request(request_id, dispatch_time)
        attempt = AttemptRecord(
            kind=kind, replica_id=replica_id, dispatch_time=dispatch_time
        )
        journey.attempts.append(attempt)
        self._active = attempt
        self._active_replica = replica_id

    def end_attempt(self, status: str, served=None) -> None:
        """The in-flight dispatch resolved (``served`` metrics or shed)."""
        attempt = self._active
        self._active = None
        self._active_replica = None
        if attempt is None:  # pragma: no cover - defensive
            return
        attempt.status = status
        if served is not None:
            attempt.start_time = served.start_time
            attempt.finish_time = served.finish_time
            attempt.ttft = served.ttft

    def resolve_served(
        self,
        request_id: int,
        replica_id: int,
        latency: float,
        ttft: float,
        winner_finish: float,
        hedged: bool = False,
        hedge_won: bool = False,
    ) -> None:
        """The request resolved served; mark exactly one winner attempt."""
        journey = self.journeys[request_id]
        journey.outcome = "served"
        journey.reason = ""
        journey.replica_id = replica_id
        journey.latency = latency
        journey.ttft = ttft
        journey.hedged = journey.hedged or hedged
        journey.hedge_won = hedge_won
        # A crash retraction can re-resolve a journey: clear stale winner
        # marks so exactly one attempt carries the flag at any time.
        for attempt in journey.attempts:
            attempt.winner = False
        winner = None
        for attempt in journey.attempts:
            if (
                attempt.status == "served"
                and attempt.replica_id == replica_id
                and attempt.finish_time == winner_finish
            ):
                winner = attempt
        if winner is None:  # pragma: no cover - defensive
            raise TelemetryError(
                f"journey {request_id}: no served attempt on replica "
                f"{replica_id} finishing at {winner_finish}"
            )
        winner.winner = True

    def resolve_shed(self, request_id: int, reason: str) -> None:
        """The request resolved shed (admission, ladder, breaker, ...)."""
        journey = self.journeys[request_id]
        journey.outcome = "shed"
        journey.reason = reason
        self._clear_resolution(journey)

    def resolve_failed(self, request_id: int, reason: str) -> None:
        """The request was lost (crash) and not recovered."""
        journey = self.journeys[request_id]
        journey.outcome = "failed"
        journey.reason = reason
        self._clear_resolution(journey)

    @staticmethod
    def _clear_resolution(journey: Journey) -> None:
        journey.replica_id = None
        journey.latency = None
        journey.ttft = None
        for attempt in journey.attempts:
            attempt.winner = False

    # ------------------------------------------------------------------ #
    # Event attribution
    # ------------------------------------------------------------------ #

    def _on_replica_event(self, replica_id: int, event: Event) -> None:
        attempt = self._active
        if attempt is None or replica_id != self._active_replica:
            return
        if event.kind is EventKind.EXPERT_HIT:
            attempt.hits += 1
        elif event.kind is EventKind.EXPERT_MISS:
            attempt.misses += 1
        elif event.kind is EventKind.ONDEMAND_LOAD:
            attempt.ondemand_loads += 1
            attempt.ondemand_seconds += event.detail or 0.0
        elif event.kind is EventKind.PREFETCH_STALL:
            attempt.prefetch_stalls += 1
            attempt.prefetch_stall_seconds += event.detail or 0.0

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def ordered(self) -> list[Journey]:
        """All journeys in request-id order."""
        return [self.journeys[k] for k in sorted(self.journeys)]

    def write_jsonl(self, path: str | Path) -> Path:
        """Stream every journey to ``path`` as one JSON object per line."""
        path = Path(path)
        with path.open("w") as fh:
            for journey in self.ordered():
                fh.write(json.dumps(journey.to_dict(), sort_keys=True) + "\n")
        return path


def read_journeys_jsonl(path: str | Path) -> list[Journey]:
    """Load journeys written by :meth:`JourneyRecorder.write_jsonl`."""
    journeys = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                journeys.append(Journey.from_dict(json.loads(line)))
    return journeys


# ---------------------------------------------------------------------- #
# Rendering (the ``repro journeys`` backend)
# ---------------------------------------------------------------------- #


def render_journeys(journeys: list[Journey], top: int = 5) -> str:
    """The ``repro journeys`` summary: totals, top-K slowest, phases."""
    from repro.obs.inspect import format_table

    lines: list[str] = []
    by_outcome: dict[str, int] = {}
    for journey in journeys:
        by_outcome[journey.outcome] = by_outcome.get(journey.outcome, 0) + 1
    total = len(journeys)
    summary = " ".join(
        f"{outcome}={count}" for outcome, count in sorted(by_outcome.items())
    )
    lines.append(f"journeys: {total} requests — {summary}")

    served = [j for j in journeys if j.outcome == "served"]
    hedged = sum(1 for j in served if j.hedged)
    retried = sum(1 for j in served if len(j.attempts) > 1)
    lines.append(
        f"served: {len(served)} ({hedged} hedged, {retried} multi-attempt)"
    )

    lines += ["", f"== top {top} slowest served requests =="]
    slowest = sorted(served, key=lambda j: -(j.latency or 0.0))[:top]
    rows = []
    for journey in slowest:
        phases = journey.phases()
        rows.append(
            [
                str(journey.request_id),
                f"{journey.latency:.4f}",
                f"{journey.ttft:.4f}",
                str(len(journey.attempts)),
                "yes" if journey.hedged else "no",
                str(journey.replica_id),
                journey.critical_phase(),
                f"{phases.get(PHASE_QUEUE, 0.0):.4f}",
                f"{phases.get(PHASE_FETCH, 0.0):.4f}",
                f"{phases.get(PHASE_COMPUTE, 0.0):.4f}",
            ]
        )
    lines += format_table(
        [
            "request",
            "latency_s",
            "ttft_s",
            "attempts",
            "hedged",
            "replica",
            "critical",
            "queue_s",
            "fetch_s",
            "compute_s",
        ],
        rows,
    )

    lines += ["", "== phase breakdown (served requests) =="]
    totals = {name: 0.0 for name in PHASES}
    dominant = {name: 0 for name in PHASES}
    for journey in served:
        for name, seconds in journey.phases().items():
            totals[name] += seconds
        critical = journey.critical_phase()
        if critical:
            dominant[critical] += 1
    grand = sum(totals.values())
    rows = []
    for name in PHASES:
        share = totals[name] / grand if grand else 0.0
        rows.append(
            [name, f"{totals[name]:.4f}", f"{share:6.1%}", str(dominant[name])]
        )
    lines += format_table(["phase", "seconds", "share", "dominant_in"], rows)

    unserved = [j for j in journeys if j.outcome != "served"]
    if unserved:
        lines += ["", "== shed / failed =="]
        rows = [
            [
                str(j.request_id),
                j.outcome,
                j.reason or "-",
                str(len(j.attempts)),
            ]
            for j in unserved
        ]
        lines += format_table(
            ["request", "outcome", "reason", "attempts"], rows
        )
    return "\n".join(lines)
