"""Engine throughput benchmark: columnar core vs the scalar reference.

The columnar-engine rewrite (ROADMAP open item #1) restructured the
serving hot loop around iteration-batch array operations.  This module
measures what that bought: it serves the same worlds through the
columnar core (``columnar=True``, the default everywhere) and through
the scalar reference interpreter (``columnar=False``) and reports
simulated-requests-per-second side by side.

The scalar reference is not a strawman and not the repository's own
history — it is the naive per-request interpreter the differential
parity suite anchors on, with the classic O(C·L²·J) full-prefix
trajectory re-match per layer (the straightforward reading of the
paper's Eq. 5), per-expert readiness probes, and per-candidate eviction
scoring.  Both cores produce **byte-identical** serving reports; every
benchmark cell re-verifies that equality and records it as
``reports_identical``.

Honesty note on the headline: the 10x aspiration assumed the hot loop
was dominated by vectorizable math.  It is not — a large share is
golden-pinned discrete-event bookkeeping (tens of thousands of pool
transfer/evict events per run that must materialize in exact legacy
order), which bounds the achievable ratio.  The committed
``BENCH_engine.json`` records the measured speedups as they are; the CI
smoke gate enforces the ≥5x floor.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import TelemetryError

#: Schema tag stamped into every payload (bump on breaking changes).
ENGINE_BENCH_SCHEMA = "repro-engine-bench/v1"

#: The (model, dataset) worlds benchmarked by default — the two default
#: models of the evaluation grid.
DEFAULT_WORLDS: tuple[tuple[str, str], ...] = (
    ("mixtral-8x7b", "lmsys-chat-1m"),
    ("qwen1.5-moe", "sharegpt"),
)

#: Batch sizes swept per world.
DEFAULT_BATCH_SIZES: tuple[int, ...] = (1, 8, 32)

#: What the "old" side of the comparison actually is.
BASELINE_DESCRIPTION = (
    "scalar_reference: naive per-request interpreter — full Eq. 5 "
    "prefix re-match per layer (O(C*L^2*J)), per-expert readiness "
    "probes, per-candidate eviction scoring; byte-identical reports "
    "to the columnar core (verified per cell)"
)

#: Keys every BENCH_engine.json payload must carry.
REQUIRED_KEYS: tuple[str, ...] = (
    "schema",
    "system",
    "baseline",
    "target_speedup",
    "repeats",
    "batch_sizes",
    "models",
    "max_speedup",
)

#: Keys every per-batch-size cell must carry.
CELL_KEYS: tuple[str, ...] = (
    "scalar_reference_rps",
    "columnar_rps",
    "speedup",
    "reports_identical",
)


def _serve_once(world, batch_size: int, columnar: bool):
    """One fresh warm engine serving the world; (wall seconds, report json)."""
    from repro.experiments.common import make_engine
    from repro.serving.export import report_to_dict

    engine = make_engine(world, "fmoe", columnar=columnar)
    engine.policy.warm(world.warm_traces)
    start = time.perf_counter()
    report = engine.run(world.test_requests, batch_size=batch_size)
    elapsed = time.perf_counter() - start
    return elapsed, json.dumps(report_to_dict(report), sort_keys=True)


def _best_of(world, batch_size: int, columnar: bool, repeats: int):
    """Best-of-``repeats`` wall time (noise-robust) plus the report JSON.

    Every repeat builds a fresh engine; the report is identical across
    repeats (the simulation is deterministic), so keeping the last one
    suffices for the parity check.
    """
    best = float("inf")
    report_json = ""
    for _ in range(repeats):
        elapsed, report_json = _serve_once(world, batch_size, columnar)
        best = min(best, elapsed)
    return best, report_json


def run_engine_bench(
    worlds=None,
    batch_sizes=None,
    repeats: int = 3,
    config=None,
    target_speedup: float = 10.0,
):
    """Benchmark columnar vs scalar-reference cores; returns the payload.

    For each (model, dataset) world and batch size, serves the world's
    test requests through both cores on fresh warm engines, taking the
    best wall time of ``repeats`` runs per core.  Each cell records both
    throughputs, the speedup, and whether the two serving reports were
    byte-identical (they must be — the cores are differentially pinned).

    ``config`` is a base :class:`~repro.experiments.common.ExperimentConfig`
    whose model/dataset fields are overridden per world (worlds built
    once per model, shared across batch sizes and cores).
    """
    from repro.experiments.common import ExperimentConfig, build_world

    if repeats < 1:
        raise TelemetryError(f"repeats must be >= 1 (got {repeats})")
    worlds = tuple(worlds) if worlds is not None else DEFAULT_WORLDS
    batch_sizes = (
        tuple(batch_sizes) if batch_sizes is not None else DEFAULT_BATCH_SIZES
    )
    if not worlds or not batch_sizes:
        raise TelemetryError("need at least one world and one batch size")
    base = config or ExperimentConfig()
    models = {}
    max_speedup = 0.0
    for model_name, dataset in worlds:
        world = build_world(base.with_(model_name=model_name, dataset=dataset))
        by_batch_size = {}
        for batch_size in batch_sizes:
            scalar_wall, scalar_json = _best_of(
                world, batch_size, columnar=False, repeats=repeats
            )
            columnar_wall, columnar_json = _best_of(
                world, batch_size, columnar=True, repeats=repeats
            )
            requests = len(world.test_requests)
            scalar_rps = requests / scalar_wall if scalar_wall else 0.0
            columnar_rps = requests / columnar_wall if columnar_wall else 0.0
            speedup = scalar_wall / columnar_wall if columnar_wall else 0.0
            max_speedup = max(max_speedup, speedup)
            by_batch_size[str(batch_size)] = {
                "scalar_reference_rps": scalar_rps,
                "columnar_rps": columnar_rps,
                "speedup": speedup,
                "reports_identical": scalar_json == columnar_json,
            }
        models[model_name] = {
            "dataset": dataset,
            "requests": len(world.test_requests),
            "by_batch_size": by_batch_size,
        }
    return {
        "schema": ENGINE_BENCH_SCHEMA,
        "system": "fmoe",
        "baseline": BASELINE_DESCRIPTION,
        "target_speedup": target_speedup,
        "repeats": repeats,
        "batch_sizes": list(batch_sizes),
        "models": models,
        "max_speedup": max_speedup,
    }


def write_engine_bench(payload: dict, path: str | Path) -> Path:
    """Serialize an engine-bench payload as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_engine_bench_payload(
    payload: dict, min_speedup: float = 0.0
) -> list[str]:
    """Validate a BENCH_engine.json payload; returns problem strings.

    The CI engine-bench-smoke gate: schema tag, required keys, complete
    per-cell structure, **byte-identical reports in every cell**, and
    the best-speedup floor.  An empty list means the payload passes.
    """
    problems = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["schema"] != ENGINE_BENCH_SCHEMA:
        problems.append(
            f"schema mismatch: {payload['schema']!r} != "
            f"{ENGINE_BENCH_SCHEMA!r}"
        )
    if not payload["models"]:
        problems.append("no models benchmarked")
    for model, block in payload["models"].items():
        cells = block.get("by_batch_size", {})
        if not cells:
            problems.append(f"model {model}: no batch sizes")
        for batch_size, cell in cells.items():
            for field in CELL_KEYS:
                if field not in cell:
                    problems.append(
                        f"{model}/B={batch_size}: missing {field}"
                    )
            if not cell.get("reports_identical", False):
                problems.append(
                    f"{model}/B={batch_size}: columnar and scalar "
                    "reports differ"
                )
    best = payload["max_speedup"]
    if best < min_speedup:
        problems.append(
            f"max_speedup {best:.2f}x below floor {min_speedup:.2f}x"
        )
    return problems
