"""The ``repro inspect`` backend: summarize a recorded trace directory.

Works from the Chrome trace-event JSON alone (plus ``report.json`` when
present), so any trace produced by ``repro trace`` — or by a custom
:class:`~repro.obs.trace.Tracer` user following the same span naming —
can be summarized without re-running the simulation:

- top-N slowest iterations,
- stall attribution (which causes ate the critical path, and how much),
- a per-layer hit/stall table,
- a per-device PCIe transfer table.

Pointing it at a :class:`~repro.cluster.metrics.ClusterReport` JSON
(``repro cluster --out``) instead renders the fleet view: a per-replica
summary table, load-imbalance CV, resilience counters, and the SLO
burn-rate section when present.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path

from repro.errors import TelemetryError

_MICROS = 1e6


def load_trace_events(path: str | Path) -> list[dict]:
    """The ``traceEvents`` array of one Chrome trace-event JSON file."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise TelemetryError(f"{path} is not a Chrome trace-event file")
    return payload["traceEvents"]


def _spans(events: list[dict], category: str) -> list[dict]:
    return [
        e for e in events if e.get("ph") == "X" and e.get("cat") == category
    ]


def _fmt_seconds(us: float) -> str:
    return f"{us / _MICROS:.6f}"


def format_table(headers: list[str], rows: list[list[str]]) -> list[str]:
    """Fixed-width text table lines (header, rule, then rows)."""
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows else len(headers[i])
        for i in range(len(headers))
    ]
    out = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        out.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return out


_table = format_table


def slowest_iterations(events: list[dict], top: int = 5) -> list[str]:
    """Top-``top`` iterations by duration, rendered as table lines."""
    iterations = _spans(events, "iteration")
    iterations.sort(key=lambda e: e.get("dur", 0.0), reverse=True)
    rows = [
        [
            str(e["args"].get("index", "?")),
            e["args"].get("stage", "?"),
            str(e["args"].get("batch", "?")),
            _fmt_seconds(e["ts"]),
            _fmt_seconds(e["dur"]),
        ]
        for e in iterations[:top]
    ]
    return _table(
        ["iteration", "stage", "batch", "start_s", "duration_s"], rows
    )


def stall_attribution(events: list[dict]) -> list[str]:
    """Where critical-path time went: compute vs stall causes."""
    iterations = _spans(events, "iteration")
    total = sum(e.get("dur", 0.0) for e in iterations)
    by_cause: dict[str, tuple[int, float]] = {}
    for span in _spans(events, "stall"):
        count, seconds = by_cause.get(span["name"], (0, 0.0))
        by_cause[span["name"]] = (count + 1, seconds + span.get("dur", 0.0))
    stall_total = sum(seconds for _, seconds in by_cause.values())
    rows = []
    for cause in sorted(by_cause, key=lambda c: -by_cause[c][1]):
        count, seconds = by_cause[cause]
        share = seconds / total if total else 0.0
        rows.append(
            [cause, str(count), _fmt_seconds(seconds), f"{share:6.1%}"]
        )
    other = max(total - stall_total, 0.0)
    rows.append(
        [
            "compute+overheads",
            "",
            _fmt_seconds(other),
            f"{(other / total if total else 0.0):6.1%}",
        ]
    )
    lines = _table(["cause", "count", "seconds", "share"], rows)
    lines.append(f"total iteration time: {_fmt_seconds(total)}s")
    return lines


def per_layer_table(events: list[dict]) -> list[str]:
    """Hits, misses, and stall seconds per model layer."""
    stats: dict[int, dict[str, float]] = defaultdict(
        lambda: {"hits": 0, "misses": 0, "stall_us": 0.0, "serve_us": 0.0}
    )
    for span in _spans(events, "expert"):
        args = span.get("args", {})
        layer = args.get("layer")
        if layer is None:
            continue
        entry = stats[int(layer)]
        if args.get("hit"):
            entry["hits"] += 1
        else:
            entry["misses"] += 1
        entry["stall_us"] += args.get("stall_seconds", 0.0) * _MICROS
        entry["serve_us"] += span.get("dur", 0.0)
    rows = []
    for layer in sorted(stats):
        entry = stats[layer]
        activations = entry["hits"] + entry["misses"]
        rate = entry["hits"] / activations if activations else 0.0
        rows.append(
            [
                str(layer),
                str(int(entry["hits"])),
                str(int(entry["misses"])),
                f"{rate:5.1%}",
                _fmt_seconds(entry["stall_us"]),
                _fmt_seconds(entry["serve_us"]),
            ]
        )
    return _table(
        ["layer", "hits", "misses", "hit_rate", "stall_s", "serve_s"], rows
    )


def per_device_table(events: list[dict]) -> list[str]:
    """Transfer counts, bytes, and busy seconds per PCIe link."""
    stats: dict[int, dict[str, float]] = defaultdict(
        lambda: {"prefetch": 0, "ondemand": 0, "bytes": 0.0, "busy_us": 0.0}
    )
    for span in _spans(events, "transfer"):
        args = span.get("args", {})
        device = int(args.get("device", 0))
        entry = stats[device]
        if span["name"] in ("prefetch", "ondemand"):
            entry[span["name"]] += 1
        entry["bytes"] += args.get("bytes", 0)
        entry["busy_us"] += span.get("dur", 0.0)
    rows = []
    for device in sorted(stats):
        entry = stats[device]
        rows.append(
            [
                str(device),
                str(int(entry["prefetch"])),
                str(int(entry["ondemand"])),
                f"{entry['bytes'] / 1e9:.3f}",
                _fmt_seconds(entry["busy_us"]),
            ]
        )
    return _table(
        ["device", "prefetches", "ondemand", "GB_moved", "busy_s"], rows
    )


def is_cluster_report(payload: object) -> bool:
    """Whether a loaded JSON object is a serialized ClusterReport."""
    return (
        isinstance(payload, dict)
        and "traceEvents" not in payload
        and "routed" in payload
        and "replicas" in payload
    )


def inspect_cluster_report(payload: dict) -> str:
    """Render the fleet summary of one ClusterReport JSON object."""
    lines = [
        f"cluster: system={payload.get('system')} "
        f"router={payload.get('router')} routed={payload.get('routed')} "
        f"served={payload.get('served')} "
        f"final_replicas={payload.get('final_replicas')}",
        f"hit_rate={payload.get('hit_rate', 0.0):.3f} "
        f"mean_ttft={payload.get('mean_ttft_seconds', 0.0):.4f}s "
        f"p95_e2e={payload.get('p95_e2e_seconds', 0.0):.4f}s "
        f"load_imbalance_cv={payload.get('load_imbalance', 0.0):.3f}",
        "",
        "== per-replica summary ==",
    ]
    rows = []
    for r in payload.get("replicas", []):
        status = "ok"
        if r.get("crashed"):
            status = "crashed"
        elif r.get("retired"):
            status = "retired"
        elif r.get("draining"):
            status = "draining"
        rows.append(
            [
                str(r.get("replica_id")),
                str(r.get("assigned")),
                str(r.get("served")),
                str(r.get("shed_requests")),
                f"{r.get('hit_rate', 0.0):.3f}",
                f"{r.get('mean_ttft_seconds', 0.0):.4f}",
                f"{r.get('p95_e2e_seconds', 0.0):.4f}",
                status,
            ]
        )
    lines += format_table(
        [
            "replica",
            "assigned",
            "served",
            "shed",
            "hit_rate",
            "mean_ttft_s",
            "p95_e2e_s",
            "status",
        ],
        rows,
    )
    res = payload.get("resilience")
    if res is not None:
        lines += ["", "== resilience counters =="]
        rows = [
            [name, str(res.get(name, 0))]
            for name in (
                "admitted",
                "total_shed",
                "shed_admission",
                "shed_ladder",
                "shed_breaker",
                "shed_replica",
                "failed",
                "retry_dispatches",
                "hedges",
                "hedge_wins",
                "hedges_cancelled",
                "breaker_opens",
                "breaker_closes",
                "crashes",
                "restarts",
                "lost_in_flight",
            )
        ]
        lines += format_table(["counter", "value"], rows)
    slo = payload.get("slo")
    if slo is not None:
        from repro.obs.slo import render_slo_summary

        lines += ["", "== SLO burn-rate summary =="]
        lines.append(render_slo_summary(slo))
    return "\n".join(lines)


def inspect_path(path: str | Path, top: int = 5) -> str:
    """Render the full inspection summary for a trace file or directory."""
    path = Path(path)
    trace_path = path / "trace.json" if path.is_dir() else path
    if not trace_path.exists():
        raise TelemetryError(f"no trace file at {trace_path}")
    if trace_path.is_file():
        payload = json.loads(trace_path.read_text())
        if is_cluster_report(payload):
            return inspect_cluster_report(payload)
    events = load_trace_events(trace_path)
    lines: list[str] = [f"trace: {trace_path}"]
    report_path = (
        path / "report.json" if path.is_dir() else path.parent / "report.json"
    )
    if report_path.exists():
        report = json.loads(report_path.read_text())
        lines.append(
            f"policy={report.get('policy')} requests={report.get('requests')} "
            f"iterations={report.get('iterations')} "
            f"hit_rate={report.get('hit_rate', 0.0):.3f} "
            f"events_dropped={report.get('events_dropped', 0)}"
        )
    lines += ["", f"== top {top} slowest iterations =="]
    lines += slowest_iterations(events, top)
    lines += ["", "== stall attribution =="]
    lines += stall_attribution(events)
    lines += ["", "== per-layer table =="]
    lines += per_layer_table(events)
    lines += ["", "== per-device PCIe table =="]
    lines += per_device_table(events)
    return "\n".join(lines)
