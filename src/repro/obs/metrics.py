"""Labeled metrics primitives with virtual-clock time-series sampling.

Prometheus-style instruments without the dependency: a
:class:`MetricsRegistry` owns named :class:`Counter` / :class:`Gauge` /
:class:`Histogram` instruments, each holding one value (or bucket vector)
per label set.  The registry can snapshot every instrument into a time
series keyed by the virtual clock (:meth:`MetricsRegistry.sample`), render
the current state in the Prometheus text exposition format
(:meth:`MetricsRegistry.to_prometheus`), and stream the sampled series as
JSONL (:meth:`MetricsRegistry.write_series_jsonl`).

Histogram buckets are fixed at registration time; :func:`log_buckets`
builds the geometric (log-scale) ladders latency distributions need.
"""

from __future__ import annotations

import json
import math
import re
from collections import deque
from pathlib import Path
from typing import Iterator

from repro.errors import TelemetryError

#: ``(key, value), ...`` — the canonical (sorted) form of one label set.
LabelKey = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def log_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` geometric bucket upper bounds: start, start*factor, ...

    The implicit ``+Inf`` bucket is always appended by the histogram, so
    these are the *finite* bounds only.
    """
    if start <= 0:
        raise TelemetryError("bucket start must be > 0")
    if factor <= 1.0:
        raise TelemetryError("bucket factor must be > 1")
    if count < 1:
        raise TelemetryError("bucket count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default latency ladder: 1 µs doubling up to ~8 s (24 finite buckets).
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-6, 2.0, 24)

#: Default byte ladder: 1 MiB quadrupling up to ~1 TiB.
DEFAULT_BYTE_BUCKETS = log_buckets(2.0**20, 4.0, 11)


def _label_key(labels: dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise TelemetryError(f"invalid label name {name!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*key, *extra]
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + body + "}"


class _Instrument:
    """Shared naming/label plumbing of all three instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        if not _NAME_RE.match(name):
            raise TelemetryError(f"invalid metric name {name!r}")
        self.name = name
        self.help_text = help_text

    def label_keys(self) -> list[LabelKey]:
        """Every label set this instrument has recorded, sorted."""
        raise NotImplementedError

    def exposition_lines(self) -> Iterator[str]:
        """Prometheus sample lines (without the HELP/TYPE header)."""
        raise NotImplementedError

    def sample_values(self) -> Iterator[tuple[LabelKey, float]]:
        """(label set, scalar value) pairs recorded by time-series sampling."""
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically non-decreasing count, one per label set."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (must be >= 0) to this counter's label set."""
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current count for one label set (0 when never incremented)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._values)

    def sample_values(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def exposition_lines(self) -> Iterator[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class Gauge(_Instrument):
    """Point-in-time value that can move both ways, one per label set."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        """Set the gauge for one label set."""
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        """Shift the gauge for one label set by ``amount``."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value for one label set (0 when never set)."""
        return self._values.get(_label_key(labels), 0.0)

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._values)

    def sample_values(self) -> Iterator[tuple[LabelKey, float]]:
        yield from sorted(self._values.items())

    def exposition_lines(self) -> Iterator[str]:
        for key, value in sorted(self._values.items()):
            yield f"{self.name}{_render_labels(key)} {_format_value(value)}"


class _HistogramSeries:
    __slots__ = ("counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket distribution; bounds are upper-inclusive (Prometheus).

    Observations land in the first bucket whose bound is >= the value;
    values above every finite bound land in the implicit ``+Inf`` bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        super().__init__(name, help_text)
        bounds = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError("histogram buckets must strictly increase")
        self.bounds = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation under this histogram's label set."""
        if math.isnan(value):
            raise TelemetryError(f"histogram {self.name} observed NaN")
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(
                len(self.bounds) + 1
            )
        series.counts[self.bucket_index(value)] += 1
        series.total += value
        series.count += 1

    def bucket_index(self, value: float) -> int:
        """Index (binary search) of the bucket ``value`` falls into."""
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def count(self, **labels: str) -> int:
        """Total observations for one label set."""
        series = self._series.get(_label_key(labels))
        return 0 if series is None else series.count

    def sum(self, **labels: str) -> float:
        """Sum of observations for one label set."""
        series = self._series.get(_label_key(labels))
        return 0.0 if series is None else series.total

    def cumulative_counts(self, **labels: str) -> list[int]:
        """Cumulative per-bucket counts, ``+Inf`` bucket last."""
        series = self._series.get(_label_key(labels))
        if series is None:
            return [0] * (len(self.bounds) + 1)
        out, running = [], 0
        for c in series.counts:
            running += c
            out.append(running)
        return out

    def quantile(self, q: float, **labels: str) -> float:
        """Bucket-bound estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper bound of the bucket holding the target rank (the
        last finite bound for the ``+Inf`` bucket), 0 with no data.
        """
        if not 0.0 <= q <= 1.0:
            raise TelemetryError("quantile must be in [0, 1]")
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return 0.0
        rank = q * series.count
        running = 0
        for i, c in enumerate(series.counts):
            running += c
            if running >= rank:
                return self.bounds[min(i, len(self.bounds) - 1)]
        return self.bounds[-1]

    def label_keys(self) -> list[LabelKey]:
        return sorted(self._series)

    def sample_values(self) -> Iterator[tuple[LabelKey, float]]:
        # Time series track the running count; bucket vectors stay in the
        # exposition output where their cardinality is paid once.
        for key, series in sorted(self._series.items()):
            yield key, float(series.count)

    def exposition_lines(self) -> Iterator[str]:
        for key, series in sorted(self._series.items()):
            running = 0
            for bound, c in zip(self.bounds, series.counts):
                running += c
                labels = _render_labels(key, (("le", _format_value(bound)),))
                yield f"{self.name}_bucket{labels} {running}"
            running += series.counts[-1]
            labels = _render_labels(key, (("le", "+Inf"),))
            yield f"{self.name}_bucket{labels} {running}"
            yield (
                f"{self.name}_sum{_render_labels(key)} "
                f"{_format_value(series.total)}"
            )
            yield f"{self.name}_count{_render_labels(key)} {series.count}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class SlidingWindowRatio:
    """Hit ratio over a sliding window of virtual time.

    ``record(now, hit)`` appends one outcome; ``value(now)`` evicts
    outcomes older than ``window_seconds`` and returns hits/total (0 when
    the window is empty).  O(1) amortized, bounded by the event rate.
    """

    def __init__(self, window_seconds: float = 1.0) -> None:
        if window_seconds <= 0:
            raise TelemetryError("window_seconds must be > 0")
        self.window_seconds = window_seconds
        self._outcomes: deque[tuple[float, bool]] = deque()
        self._hits = 0

    def record(self, now: float, hit: bool) -> None:
        """Append one hit/miss outcome at virtual time ``now``."""
        self._outcomes.append((now, hit))
        if hit:
            self._hits += 1
        self._expire(now)

    def value(self, now: float) -> float:
        """Hit fraction over the window ending at ``now``."""
        self._expire(now)
        if not self._outcomes:
            return 0.0
        return self._hits / len(self._outcomes)

    def _expire(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._outcomes and self._outcomes[0][0] < cutoff:
            _, hit = self._outcomes.popleft()
            if hit:
                self._hits -= 1


class MetricsRegistry:
    """Owns named instruments; samples, exposes, and exports them."""

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}
        #: (metric name, label set) → [(virtual time, value), ...]
        self.series: dict[tuple[str, LabelKey], list[tuple[float, float]]] = {}

    def _register(self, instrument: _Instrument) -> _Instrument:
        existing = self._instruments.get(instrument.name)
        if existing is not None:
            if type(existing) is not type(instrument):
                raise TelemetryError(
                    f"metric {instrument.name!r} already registered as "
                    f"{existing.kind}"
                )
            return existing
        self._instruments[instrument.name] = instrument
        return instrument

    def counter(self, name: str, help_text: str = "") -> Counter:
        """Get or create a counter (idempotent for the same kind)."""
        instrument = self._register(Counter(name, help_text))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        """Get or create a gauge (idempotent for the same kind)."""
        instrument = self._register(Gauge(name, help_text))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        """Get or create a histogram (idempotent for the same kind)."""
        instrument = self._register(Histogram(name, help_text, buckets))
        assert isinstance(instrument, Histogram)
        return instrument

    def instruments(self) -> list[_Instrument]:
        """All registered instruments, in registration order."""
        return list(self._instruments.values())

    def sample(self, now: float) -> None:
        """Snapshot every instrument's scalar values at virtual ``now``."""
        for instrument in self._instruments.values():
            for key, value in instrument.sample_values():
                self.series.setdefault((instrument.name, key), []).append(
                    (now, value)
                )

    def to_prometheus(self) -> str:
        """Current state in the Prometheus text exposition format."""
        lines: list[str] = []
        for instrument in self._instruments.values():
            if instrument.help_text:
                lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument.exposition_lines())
        return "\n".join(lines) + "\n" if lines else ""

    def write_prometheus(self, path: str | Path) -> Path:
        """Write the exposition text to ``path``; returns the path."""
        path = Path(path)
        path.write_text(self.to_prometheus())
        return path

    def series_rows(self) -> Iterator[dict]:
        """One JSON-ready row per sampled (metric, labels, time, value)."""
        for (name, key), points in sorted(self.series.items()):
            for time, value in points:
                yield {
                    "metric": name,
                    "labels": dict(key),
                    "time": time,
                    "value": value,
                }

    def write_series_jsonl(self, path: str | Path) -> Path:
        """Stream the sampled time series to ``path`` as JSONL."""
        path = Path(path)
        with path.open("w") as fh:
            for row in self.series_rows():
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return path
