"""Virtual-clock span tracing with Chrome trace-event export.

A :class:`Tracer` records nested spans against the engine's virtual clock
and serializes them as Chrome trace-event JSON — the format
``chrome://tracing`` and Perfetto load natively — so one serving run can
be inspected visually lane by lane.

Spans come in two flavours:

- ``begin(name, ts)`` / ``end(ts)`` pairs maintain a per-lane stack and
  enforce LIFO nesting plus monotone timestamps (iteration and layer
  spans use these);
- ``complete(name, start, end)`` records a span whose bounds are already
  known (expert serves, transfers, requests) without touching the stack.

Lane (``tid``) conventions used by the serving stack:

- lane 0 — the engine timeline (iteration → layer → serve spans);
- lane 500 — the cluster-router timeline (routing/scaling decisions);
- lanes ``1000 + device`` — per-GPU PCIe transfer lanes;
- lanes ``10000 + request_id`` — per-request lifetime spans;
- lanes ``20000 + replica`` — per-replica serve lanes (cluster runs).

Timestamps are virtual seconds; export converts to the microseconds the
trace-event schema expects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import TelemetryError

#: Lane conventions (see module docstring).
ENGINE_LANE = 0
CLUSTER_LANE = 500
DEVICE_LANE_BASE = 1_000
REQUEST_LANE_BASE = 10_000
REPLICA_LANE_BASE = 20_000


def device_lane(device: int) -> int:
    """Trace lane of one GPU's PCIe transfer timeline."""
    return DEVICE_LANE_BASE + device


def request_lane(request_id: int) -> int:
    """Trace lane of one request's lifetime span."""
    return REQUEST_LANE_BASE + request_id


def replica_lane(replica_id: int) -> int:
    """Trace lane of one cluster replica's serve timeline."""
    return REPLICA_LANE_BASE + replica_id


@dataclass
class Span:
    """One completed span: ``[start, end]`` virtual seconds on a lane."""

    name: str
    start: float
    end: float
    tid: int = ENGINE_LANE
    category: str = "sim"
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class _OpenSpan:
    name: str
    start: float
    tid: int
    category: str
    args: dict


@dataclass
class _Instant:
    name: str
    ts: float
    tid: int
    category: str
    args: dict


@dataclass(frozen=True)
class Flow:
    """One flow arrow linking two points in the trace (span link).

    Exported as a Chrome flow-event pair (``ph: "s"`` at the source,
    ``ph: "f"`` at the destination) so viewers draw an arrow between the
    two lanes — the rendering hedged request pairs use.
    """

    name: str
    flow_id: int
    start_ts: float
    start_tid: int
    end_ts: float
    end_tid: int
    category: str = "sim"


class Tracer:
    """Accumulates spans and instants; exports Chrome trace-event JSON."""

    def __init__(self, process_name: str = "repro-sim") -> None:
        self.process_name = process_name
        self.spans: list[Span] = []
        self.instants: list[_Instant] = []
        self.flows: list[Flow] = []
        self._stacks: dict[int, list[_OpenSpan]] = {}
        self._lane_names: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def set_lane_name(self, tid: int, name: str) -> None:
        """Human-readable name shown for one lane in the trace viewer."""
        self._lane_names[tid] = name

    @staticmethod
    def _check_ts(ts: float) -> None:
        if ts < 0:
            raise TelemetryError(f"trace timestamps must be >= 0 (got {ts})")

    def begin(
        self,
        name: str,
        ts: float,
        tid: int = ENGINE_LANE,
        category: str = "sim",
        **args: object,
    ) -> None:
        """Open a nested span on lane ``tid`` at virtual time ``ts``."""
        self._check_ts(ts)
        stack = self._stacks.setdefault(tid, [])
        if stack and ts < stack[-1].start:
            raise TelemetryError(
                f"span {name!r} begins at {ts} before its parent "
                f"{stack[-1].name!r} at {stack[-1].start}"
            )
        stack.append(_OpenSpan(name, ts, tid, category, dict(args)))

    def end(self, ts: float, tid: int = ENGINE_LANE, **args: object) -> Span:
        """Close the innermost open span on lane ``tid`` (LIFO order)."""
        self._check_ts(ts)
        stack = self._stacks.get(tid)
        if not stack:
            raise TelemetryError(f"end() with no open span on lane {tid}")
        open_span = stack.pop()
        if ts < open_span.start:
            raise TelemetryError(
                f"span {open_span.name!r} ends at {ts} before its start "
                f"{open_span.start}"
            )
        open_span.args.update(args)
        span = Span(
            name=open_span.name,
            start=open_span.start,
            end=ts,
            tid=tid,
            category=open_span.category,
            args=open_span.args,
        )
        self.spans.append(span)
        return span

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        tid: int = ENGINE_LANE,
        category: str = "sim",
        **args: object,
    ) -> Span:
        """Record a span whose bounds are already known (stack untouched)."""
        self._check_ts(start)
        if end < start:
            raise TelemetryError(
                f"span {name!r} ends at {end} before its start {start}"
            )
        span = Span(name, start, end, tid, category, dict(args))
        self.spans.append(span)
        return span

    def instant(
        self,
        name: str,
        ts: float,
        tid: int = ENGINE_LANE,
        category: str = "sim",
        **args: object,
    ) -> None:
        """Record a zero-duration marker event."""
        self._check_ts(ts)
        self.instants.append(_Instant(name, ts, tid, category, dict(args)))

    def flow(
        self,
        name: str,
        flow_id: int,
        start_ts: float,
        start_tid: int,
        end_ts: float,
        end_tid: int,
        category: str = "sim",
    ) -> Flow:
        """Link two trace points with a flow arrow (span link).

        The source point should lie inside a span on ``start_tid`` and
        the destination inside one on ``end_tid``; viewers bind each
        flow endpoint to the enclosing slice.  Used to connect a hedged
        request's primary and speculative serve spans across replica
        lanes.
        """
        self._check_ts(start_ts)
        self._check_ts(end_ts)
        record = Flow(
            name, flow_id, start_ts, start_tid, end_ts, end_tid, category
        )
        self.flows.append(record)
        return record

    def open_depth(self, tid: int = ENGINE_LANE) -> int:
        """How many spans are currently open on lane ``tid``."""
        return len(self._stacks.get(tid, []))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @staticmethod
    def _micros(seconds: float) -> float:
        return round(seconds * 1e6, 3)

    def to_chrome(self, strict: bool = True) -> dict:
        """The Chrome trace-event JSON object for this trace.

        With ``strict`` (the default) unbalanced ``begin()`` calls raise,
        so exported traces always contain matched spans.
        """
        if strict:
            open_spans = [
                s.name for stack in self._stacks.values() for s in stack
            ]
            if open_spans:
                raise TelemetryError(
                    f"cannot export with open spans: {open_spans}"
                )
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": self.process_name},
            }
        ]
        for tid, name in sorted(self._lane_names.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        records: list[tuple[float, int, dict]] = []
        for span in self.spans:
            records.append(
                (
                    span.start,
                    span.tid,
                    {
                        "name": span.name,
                        "cat": span.category,
                        "ph": "X",
                        "ts": self._micros(span.start),
                        "dur": self._micros(span.duration),
                        "pid": 0,
                        "tid": span.tid,
                        "args": span.args,
                    },
                )
            )
        for inst in self.instants:
            records.append(
                (
                    inst.ts,
                    inst.tid,
                    {
                        "name": inst.name,
                        "cat": inst.category,
                        "ph": "i",
                        "ts": self._micros(inst.ts),
                        "s": "t",
                        "pid": 0,
                        "tid": inst.tid,
                        "args": inst.args,
                    },
                )
            )
        for flow in self.flows:
            records.append(
                (
                    flow.start_ts,
                    flow.start_tid,
                    {
                        "name": flow.name,
                        "cat": flow.category,
                        "ph": "s",
                        "id": flow.flow_id,
                        "ts": self._micros(flow.start_ts),
                        "pid": 0,
                        "tid": flow.start_tid,
                    },
                )
            )
            records.append(
                (
                    flow.end_ts,
                    flow.end_tid,
                    {
                        "name": flow.name,
                        "cat": flow.category,
                        "ph": "f",
                        "bp": "e",
                        "id": flow.flow_id,
                        "ts": self._micros(flow.end_ts),
                        "pid": 0,
                        "tid": flow.end_tid,
                    },
                )
            )
        records.sort(key=lambda r: (r[0], r[1]))
        events.extend(record for _, _, record in records)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome(self, path: str | Path, strict: bool = True) -> Path:
        """Serialize :meth:`to_chrome` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome(strict=strict)) + "\n")
        return path
