"""Streaming event sinks: bounded-memory destinations for engine events.

The engine (and everything it drives) emits structured
:class:`~repro.serving.events.Event` records through whatever sink is
attached.  The legacy :class:`~repro.serving.events.EventRecorder` keeps
an unbounded list and stops past ``max_events``; the sinks here make
million-iteration runs safe:

- :class:`RingBufferSink` — keeps the most recent ``capacity`` events and
  counts what it displaced (nothing is lost silently);
- :class:`JsonlSink` — streams every event to a JSONL file with O(1)
  memory;
- :class:`NullSink` — swallows events (for measuring emission overhead).

All sinks satisfy the :class:`Sink` protocol; any object with a matching
``emit`` also satisfies the engine's narrower
:class:`~repro.serving.events.EventSink`, so custom exporters plug in
without subclassing.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Protocol, runtime_checkable

from repro.serving.events import Event, EventKind


@runtime_checkable
class Sink(Protocol):
    """Streaming destination for engine events."""

    dropped: int
    """Events this sink displaced or discarded (0 for lossless sinks)."""

    def emit(self, event: Event) -> None:
        """Record one event."""
        ...

    def close(self) -> None:
        """Flush and release any underlying resources (idempotent)."""
        ...


class NullSink(Sink):
    """Swallows every event; useful for overhead measurements."""

    def __init__(self) -> None:
        self.dropped = 0
        self.emitted = 0

    def emit(self, event: Event) -> None:
        self.emitted += 1

    def close(self) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the newest ``capacity`` events; counts displaced ones.

    Unlike ``EventRecorder`` (which keeps the *oldest* events and stops),
    a ring buffer retains the run's tail — what you want when a long run
    ends somewhere interesting.
    """

    def __init__(self, capacity: int = 65_536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: deque[Event] = deque(maxlen=capacity)
        self.dropped = 0

    def emit(self, event: Event) -> None:
        if len(self.events) == self.capacity:
            self.dropped += 1
        self.events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """Buffered events of one kind, oldest first."""
        return [e for e in self.events if e.kind is kind]


class JsonlSink(Sink):
    """Streams events to a JSONL file; memory stays O(1) in run length."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = self.path.open("w")
        self.dropped = 0
        self.emitted = 0

    def emit(self, event: Event) -> None:
        if self._fh is None:
            raise ValueError(f"sink for {self.path} is closed")
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.emitted += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_events_jsonl(path: str | Path) -> Iterable[Event]:
    """Parse a :class:`JsonlSink` file back into :class:`Event` objects."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield Event.from_dict(json.loads(line))


class TeeSink(Sink):
    """Fans one event stream out to several sinks."""

    def __init__(self, *sinks: Sink) -> None:
        self.sinks = list(sinks)

    @property
    def dropped(self) -> int:
        return sum(s.dropped for s in self.sinks)

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
