"""Fleet time-series: fixed-cadence snapshots of per-replica health.

A :class:`FleetSeries` rides the cluster driver's dispatch loop and, on a
fixed virtual-clock cadence, snapshots every live replica's externally
observable health — queue depth, circuit-breaker state, degradation
rung, expert-cache hit rate, and VRAM occupancy — into a windowed store.
The sampler is a pure observer (it peeks at breaker state without
transitioning it), so attaching it never perturbs the run.

Samples export as JSONL (one object per sample) or CSV for plotting and
downstream analysis.
"""

from __future__ import annotations

import csv
import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.errors import TelemetryError

#: Column order for CSV export (matches FleetSample fields).
SAMPLE_FIELDS = (
    "time",
    "replica_id",
    "queue_depth",
    "breaker_state",
    "rung",
    "hit_rate",
    "vram_used_bytes",
    "vram_budget_bytes",
)


@dataclass(frozen=True)
class FleetSample:
    """One replica's health at one virtual-clock instant."""

    time: float
    replica_id: int
    queue_depth: int
    breaker_state: str
    rung: int
    hit_rate: float
    vram_used_bytes: int
    vram_budget_bytes: int

    def to_dict(self) -> dict:
        """JSON/CSV row form (field order matches SAMPLE_FIELDS)."""
        return asdict(self)


class FleetSeries:
    """Windowed store of :class:`FleetSample` rows on a fixed cadence.

    ``interval_seconds`` sets the sampling cadence on the virtual clock;
    ``max_samples`` bounds memory by keeping only the most recent window
    (0 means unbounded).  The driver calls :meth:`maybe_sample` at every
    dispatch point; samples land only when the cadence has elapsed, so
    the series density is independent of request arrival density.
    """

    def __init__(
        self, interval_seconds: float = 1.0, max_samples: int = 0
    ) -> None:
        if interval_seconds <= 0:
            raise TelemetryError(
                f"interval_seconds must be > 0 (got {interval_seconds})"
            )
        if max_samples < 0:
            raise TelemetryError(
                f"max_samples must be >= 0 (got {max_samples})"
            )
        self.interval_seconds = interval_seconds
        self.max_samples = max_samples
        self.samples: deque[FleetSample] = deque(
            maxlen=max_samples or None
        )
        self.dropped = 0
        self._next_due: float | None = None

    def __len__(self) -> int:
        return len(self.samples)

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def maybe_sample(self, now: float, driver) -> int:
        """Sample the fleet if the cadence has elapsed; returns rows added.

        Catches up by whole intervals when ``now`` jumped past several
        due times (quiet stretches between arrivals), sampling fleet
        state once at each missed tick — all at the state visible *now*,
        which is exact because nothing changes between dispatches.
        """
        if self._next_due is None:
            self._next_due = now
        added = 0
        while now >= self._next_due:
            added += self.sample(self._next_due, driver)
            self._next_due += self.interval_seconds
        return added

    def sample(self, now: float, driver) -> int:
        """Snapshot every live replica at virtual time ``now``."""
        added = 0
        for replica in driver.replicas:
            if replica.retired:
                continue
            pool = replica.engine.pool
            breaker = driver.breaker_for(replica.replica_id)
            record = FleetSample(
                time=now,
                replica_id=replica.replica_id,
                queue_depth=replica.outstanding_requests(now),
                breaker_state=(
                    breaker.peek(now) if breaker is not None else ""
                ),
                rung=driver.peek_rung(now),
                hit_rate=replica.report.hit_rate,
                vram_used_bytes=pool.used_bytes(),
                vram_budget_bytes=pool.cache_budget_bytes,
            )
            if (
                self.samples.maxlen is not None
                and len(self.samples) == self.samples.maxlen
            ):
                self.dropped += 1
            self.samples.append(record)
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def rows(self) -> list[dict]:
        """All retained samples as plain dicts, oldest first."""
        return [sample.to_dict() for sample in self.samples]

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON object per sample; returns the path."""
        path = Path(path)
        with path.open("w") as fh:
            for row in self.rows():
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        return path

    def write_csv(self, path: str | Path) -> Path:
        """CSV with a fixed header (:data:`SAMPLE_FIELDS`); returns path."""
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=SAMPLE_FIELDS)
            writer.writeheader()
            for row in self.rows():
                writer.writerow(row)
        return path


def read_fleet_jsonl(path: str | Path) -> list[FleetSample]:
    """Load samples written by :meth:`FleetSeries.write_jsonl`."""
    samples = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                samples.append(FleetSample(**json.loads(line)))
    return samples
