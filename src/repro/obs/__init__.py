"""Observability: span tracing, labeled metrics, and streaming event sinks.

The package is dependency-free and driven entirely by the engine's
virtual clock, so telemetry never perturbs simulated time.  Four parts:

- :mod:`repro.obs.trace` — a nesting :class:`~repro.obs.trace.Tracer`
  that exports Chrome trace-event JSON (loadable in ``chrome://tracing``
  or Perfetto).
- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` primitives with label sets, virtual-clock time-series
  sampling, Prometheus text exposition, and JSONL export.
- :mod:`repro.obs.sinks` — streaming :class:`~repro.obs.sinks.Sink`
  implementations (bounded ring buffer, JSONL file writer, null) for the
  engine's structured event stream.
- :mod:`repro.obs.telemetry` — the :class:`~repro.obs.telemetry.Telemetry`
  bundle the serving stack threads through, plus the ``repro trace`` /
  ``repro inspect`` toolchain (:mod:`repro.obs.runner`,
  :mod:`repro.obs.inspect`).
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlidingWindowRatio,
    log_buckets,
)
from repro.obs.sinks import JsonlSink, NullSink, RingBufferSink, Sink
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "Sink",
    "SlidingWindowRatio",
    "Telemetry",
    "Tracer",
    "log_buckets",
]
