"""Observability: span tracing, labeled metrics, and streaming event sinks.

The package is dependency-free and driven entirely by the engine's
virtual clock, so telemetry never perturbs simulated time.  Core parts:

- :mod:`repro.obs.trace` — a nesting :class:`~repro.obs.trace.Tracer`
  that exports Chrome trace-event JSON (loadable in ``chrome://tracing``
  or Perfetto), including flow arrows (span links) between lanes.
- :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` primitives with label sets, virtual-clock time-series
  sampling, Prometheus text exposition, and JSONL export.
- :mod:`repro.obs.sinks` — streaming :class:`~repro.obs.sinks.Sink`
  implementations (bounded ring buffer, JSONL file writer, null) for the
  engine's structured event stream.
- :mod:`repro.obs.telemetry` — the :class:`~repro.obs.telemetry.Telemetry`
  bundle the serving stack threads through, plus the ``repro trace`` /
  ``repro inspect`` toolchain (:mod:`repro.obs.runner`,
  :mod:`repro.obs.inspect`).

The cluster-scale observability plane builds on those:

- :mod:`repro.obs.journey` — per-request journeys with critical-path
  phase attribution (``repro journeys``).
- :mod:`repro.obs.timeseries` — fixed-cadence fleet health snapshots
  with JSONL/CSV export.
- :mod:`repro.obs.slo` — SRE-style multi-window error-budget burn-rate
  alerting over the attainment stream (``repro slo``).
- :mod:`repro.obs.profile` — a host-time hot-loop profiler producing the
  ``BENCH_profile.json`` regression baseline (``repro profile``).
- :mod:`repro.obs.enginebench` — columnar-vs-scalar-reference engine
  throughput benchmark producing ``BENCH_engine.json``
  (``repro engine-bench``).
"""

from repro.obs.enginebench import (
    check_engine_bench_payload,
    run_engine_bench,
    write_engine_bench,
)

from repro.obs.journey import (
    AttemptRecord,
    Journey,
    JourneyRecorder,
    read_journeys_jsonl,
    render_journeys,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlidingWindowRatio,
    log_buckets,
)
from repro.obs.profile import (
    PhaseTimer,
    check_profile_payload,
    run_profile,
    write_profile,
)
from repro.obs.sinks import JsonlSink, NullSink, RingBufferSink, Sink
from repro.obs.slo import (
    BurnRateRule,
    SLOAlert,
    SLOTracker,
    TieredSLOTracker,
    default_burn_rules,
    render_slo_summary,
)
from repro.obs.telemetry import Telemetry
from repro.obs.timeseries import FleetSample, FleetSeries, read_fleet_jsonl
from repro.obs.trace import Tracer

__all__ = [
    "AttemptRecord",
    "BurnRateRule",
    "Counter",
    "FleetSample",
    "FleetSeries",
    "Gauge",
    "Histogram",
    "Journey",
    "JourneyRecorder",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "PhaseTimer",
    "RingBufferSink",
    "SLOAlert",
    "SLOTracker",
    "Sink",
    "SlidingWindowRatio",
    "TieredSLOTracker",
    "Telemetry",
    "Tracer",
    "check_engine_bench_payload",
    "check_profile_payload",
    "default_burn_rules",
    "log_buckets",
    "read_fleet_jsonl",
    "read_journeys_jsonl",
    "render_journeys",
    "render_slo_summary",
    "run_engine_bench",
    "run_profile",
    "write_engine_bench",
    "write_profile",
]
