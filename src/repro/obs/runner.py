"""The ``repro trace`` backend: run one policy with full telemetry.

Builds a world, attaches a :class:`~repro.obs.telemetry.Telemetry` whose
event stream goes to a JSONL file, serves the workload, and writes the
whole observability bundle into one output directory:

- ``trace.json``    — Chrome trace-event JSON (chrome://tracing, Perfetto)
- ``metrics.prom``  — Prometheus text exposition of the final state
- ``metrics.jsonl`` — the sampled time series, one point per line
- ``events.jsonl``  — the raw structured event stream
- ``report.json``   — the :class:`~repro.serving.metrics.ServingReport`

``repro inspect`` (:mod:`repro.obs.inspect`) summarizes the directory.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.experiments.common import ExperimentConfig, build_world, run_system
from repro.obs.sinks import JsonlSink
from repro.obs.telemetry import Telemetry
from repro.serving.export import report_to_json
from repro.serving.faults import FaultSchedule, SLOConfig
from repro.serving.metrics import ServingReport


@dataclass
class TraceRunResult:
    """What one traced run produced."""

    report: ServingReport
    telemetry: Telemetry
    paths: dict[str, Path]


def run_traced(
    config: ExperimentConfig,
    system: str,
    out_dir: str | Path,
    online: bool = False,
    trace_requests: int = 16,
    rate_seconds: float = 2.0,
    sample_interval_seconds: float = 0.05,
    faults: FaultSchedule | None = None,
    slo: SLOConfig | None = None,
) -> TraceRunResult:
    """Serve one workload under ``system`` with telemetry attached.

    With ``online`` the workload is a generated Azure-style arrival trace
    replayed with queueing; otherwise the world's offline test requests
    are served back to back.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    world = build_world(config)
    telemetry = Telemetry(
        sink=JsonlSink(out / "events.jsonl"),
        sample_interval_seconds=sample_interval_seconds,
    )
    requests = None
    if online:
        from repro.workloads.azure import AzureTraceConfig, make_azure_trace
        from repro.workloads.datasets import get_dataset_profile

        requests = make_azure_trace(
            AzureTraceConfig(
                num_requests=trace_requests,
                mean_interarrival_seconds=rate_seconds,
            ),
            get_dataset_profile(config.dataset),
            seed=config.seed + 10,
        )
    report = run_system(
        world,
        system,
        requests=requests,
        respect_arrivals=online,
        faults=faults,
        slo=slo,
        telemetry=telemetry,
    )
    paths = telemetry.write_outputs(out)
    report_path = out / "report.json"
    report_to_json(report, report_path)
    paths["report"] = report_path
    return TraceRunResult(report=report, telemetry=telemetry, paths=paths)
