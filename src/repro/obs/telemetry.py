"""The telemetry bundle the serving stack threads through.

One :class:`Telemetry` object owns the three observability primitives —
an event :class:`~repro.obs.sinks.Sink`, a :class:`~repro.obs.trace.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry` — and exposes the
narrow instrumentation surface the engine, pool, scheduler, KV tracker
and fault layer call into.  Everything is driven by the virtual clock and
never advances it, so an attached telemetry object observes a run without
perturbing a single latency.

The standard instrument set (all ``repro_``-prefixed) is registered up
front; event-derived counters are updated centrally in :meth:`emit`, so
emitting components never touch metrics directly.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SlidingWindowRatio,
)
from repro.obs.sinks import NullSink, Sink
from repro.obs.trace import (
    ENGINE_LANE,
    Tracer,
    device_lane,
    request_lane,
)
from repro.serving.events import Event, EventKind


class Telemetry:
    """Sink + tracer + metrics, wired for the serving stack."""

    def __init__(
        self,
        sink: Sink | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        sample_interval_seconds: float = 0.05,
        hit_window_seconds: float = 1.0,
    ) -> None:
        self.sink: Sink = sink if sink is not None else NullSink()
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sample_interval_seconds = sample_interval_seconds
        self.tracer.set_lane_name(ENGINE_LANE, "engine")

        m = self.metrics
        self.hits = m.counter(
            "repro_expert_hits_total", "Expert activations served from cache."
        )
        self.misses = m.counter(
            "repro_expert_misses_total", "Expert activations that missed."
        )
        self.ondemand_loads = m.counter(
            "repro_ondemand_loads_total", "Blocking on-demand expert loads."
        )
        self.prefetch_stalls = m.counter(
            "repro_prefetch_stalls_total",
            "Misses that stalled on an in-flight prefetch.",
        )
        self.prefetches = m.counter(
            "repro_prefetch_issued_total", "Prefetch copies scheduled."
        )
        self.evictions = m.counter(
            "repro_evictions_total", "Experts evicted from the cache."
        )
        self.shed = m.counter(
            "repro_requests_shed_total", "Requests dropped past the SLO budget."
        )
        self.dispatches = m.counter(
            "repro_requests_dispatched_total", "Requests handed to the engine."
        )
        self.device_failures = m.counter(
            "repro_device_failures_total", "Whole-GPU losses applied."
        )
        self.failovers = m.counter(
            "repro_failovers_total", "Lost residents re-placed on survivors."
        )
        self.degraded = m.counter(
            "repro_degraded_tokens_total",
            "Activations served by a substituted expert.",
        )
        self.slo_violations = m.counter(
            "repro_slo_violations_total", "Missed TTFT deadlines."
        )
        self.requests_finished = m.counter(
            "repro_requests_finished_total", "Requests served to completion."
        )

        self.iteration_seconds = m.histogram(
            "repro_iteration_seconds",
            "Wall (virtual) seconds per inference iteration.",
            DEFAULT_LATENCY_BUCKETS,
        )
        self.stall_seconds = m.histogram(
            "repro_stall_seconds",
            "Critical-path stall seconds by cause.",
            DEFAULT_LATENCY_BUCKETS,
        )
        self.ttft_seconds = m.histogram(
            "repro_ttft_seconds", "Time-to-first-token.", DEFAULT_LATENCY_BUCKETS
        )
        self.tpot_seconds = m.histogram(
            "repro_tpot_seconds",
            "Per-decode-iteration latency.",
            DEFAULT_LATENCY_BUCKETS,
        )

        self.cache_used_bytes = m.gauge(
            "repro_cache_used_bytes", "Expert-cache bytes in use per GPU."
        )
        self.kv_bytes = m.gauge(
            "repro_kv_bytes", "Live KV-cache bytes across active requests."
        )
        self.queue_depth = m.gauge(
            "repro_queue_depth", "Arrived-but-undispatched requests."
        )
        self.inflight_bytes = m.gauge(
            "repro_inflight_transfer_bytes",
            "Bytes currently on (or queued for) each PCIe link.",
        )
        self.link_bytes = m.gauge(
            "repro_pcie_bytes_transferred",
            "Cumulative bytes copied over each PCIe link.",
        )
        self.bandwidth_multiplier = m.gauge(
            "repro_bandwidth_multiplier",
            "Fault-injected PCIe bandwidth factor per link (1 = healthy).",
        )
        self.compute_multiplier = m.gauge(
            "repro_compute_multiplier",
            "Fault-injected fleet compute-time factor (1 = healthy).",
        )
        self.hit_rate_window = m.gauge(
            "repro_hit_rate_window",
            f"Expert hit rate over a {hit_window_seconds:g}s sliding window.",
        )
        self.events_dropped = m.gauge(
            "repro_events_dropped", "Events the attached sink discarded."
        )

        self._hit_window = SlidingWindowRatio(hit_window_seconds)
        self._last_sample: float | None = None
        self._last_time = 0.0
        #: kind, device, expert, live task — flushed into trace lanes at
        #: finalize time because task bounds shift while transfers pause.
        self._transfers: dict[int, tuple[str, int, object, object]] = {}
        self._request_lanes: set[int] = set()
        self._finalized = False

    # ------------------------------------------------------------------ #
    # Event stream (counters derive here, centrally)
    # ------------------------------------------------------------------ #

    def emit(self, event: Event) -> None:
        """Forward one engine event to the sink and derived counters."""
        self._last_time = max(self._last_time, event.time)
        self.sink.emit(event)
        kind = event.kind
        layer = "" if event.layer is None else str(event.layer)
        if kind is EventKind.EXPERT_HIT:
            self.hits.inc(layer=layer)
            self._hit_window.record(event.time, True)
        elif kind is EventKind.EXPERT_MISS:
            self.misses.inc(layer=layer)
            self._hit_window.record(event.time, False)
        elif kind is EventKind.ONDEMAND_LOAD:
            self.ondemand_loads.inc()
            if event.detail is not None:
                self.stall_seconds.observe(event.detail, cause="ondemand")
        elif kind is EventKind.PREFETCH_STALL:
            self.prefetch_stalls.inc()
            if event.detail is not None:
                self.stall_seconds.observe(event.detail, cause="prefetch")
        elif kind is EventKind.PREFETCH_ISSUED:
            self.prefetches.inc(event.detail or 1.0)
        elif kind is EventKind.EVICTION:
            self.evictions.inc()
        elif kind is EventKind.REQUEST_SHED:
            self.shed.inc()
        elif kind is EventKind.REQUEST_DISPATCH:
            self.dispatches.inc()
        elif kind is EventKind.DEVICE_FAILURE:
            self.device_failures.inc()
        elif kind is EventKind.FAILOVER:
            self.failovers.inc(event.detail or 1.0)
        elif kind is EventKind.DEGRADED_SERVE:
            self.degraded.inc()
        elif kind is EventKind.SLO_VIOLATION:
            self.slo_violations.inc()

    # ------------------------------------------------------------------ #
    # Span surface (called by the engine)
    # ------------------------------------------------------------------ #

    def iteration_begin(
        self, index: int, now: float, batch_size: int, stage: str
    ) -> None:
        """Open the iteration span on the engine lane."""
        self.tracer.begin(
            "iteration",
            now,
            category="iteration",
            index=index,
            batch=batch_size,
            stage=stage,
        )

    def iteration_end(self, now: float) -> None:
        """Close the iteration span; records its duration histogram."""
        span = self.tracer.end(now)
        self.iteration_seconds.observe(span.duration)
        self._last_time = max(self._last_time, now)

    def layer_begin(self, layer: int, now: float) -> None:
        """Open one layer's span inside the current iteration."""
        self.tracer.begin("layer", now, category="layer", layer=layer)

    def layer_end(self, now: float) -> None:
        """Close the current layer span."""
        self.tracer.end(now)

    def serve_span(
        self,
        start: float,
        end: float,
        expert: object,
        layer: int,
        hit: bool,
        stall_seconds: float = 0.0,
        stall_cause: str | None = None,
    ) -> None:
        """One expert activation's serve window (stall included)."""
        self.tracer.complete(
            "serve",
            start,
            end,
            category="expert",
            expert=str(expert),
            layer=layer,
            hit=hit,
            stall_seconds=stall_seconds,
            stall_cause=stall_cause or "",
        )

    def stall_span(
        self, name: str, start: float, end: float, expert: object, layer: int
    ) -> None:
        """An on-demand load or prefetch stall nested inside a serve."""
        self.tracer.complete(
            name,
            start,
            end,
            category="stall",
            expert=str(expert),
            layer=layer,
        )

    def request_span(
        self,
        request_id: int,
        start: float,
        end: float,
        ttft: float,
        decode_iterations: int,
    ) -> None:
        """One request's lifetime span on its own lane."""
        lane = request_lane(request_id)
        if request_id not in self._request_lanes:
            self._request_lanes.add(request_id)
            self.tracer.set_lane_name(lane, f"request {request_id}")
        self.tracer.complete(
            "request",
            start,
            end,
            tid=lane,
            category="request",
            request_id=request_id,
            ttft_seconds=ttft,
            decode_iterations=decode_iterations,
        )
        self.requests_finished.inc()

    def fault_recovery_span(
        self, device: int, start: float, end: float, replaced: int
    ) -> None:
        """The window from a device loss to its last re-placement copy."""
        self.tracer.complete(
            "fault_recovery",
            start,
            end,
            tid=self._device_lane(device),
            category="fault",
            device=device,
            replaced=replaced,
        )

    # ------------------------------------------------------------------ #
    # Transfer tracking (called by the pool via listeners)
    # ------------------------------------------------------------------ #

    def _device_lane(self, device: int) -> int:
        lane = device_lane(device)
        self.tracer.set_lane_name(lane, f"pcie gpu{device}")
        return lane

    def note_transfer(
        self, kind: str, device: int, expert: object, task: object
    ) -> None:
        """Register a live transfer task for flush at finalize time.

        Task start/end shift in place while urgent loads pause queued
        prefetches, so spans are materialized only when the run is over
        and the bounds are final.
        """
        self._transfers[id(task)] = (kind, device, expert, task)

    def drop_transfer(self, task: object) -> None:
        """Forget a cancelled (or lost) transfer; no span is recorded."""
        self._transfers.pop(id(task), None)

    # ------------------------------------------------------------------ #
    # Gauges and time-series sampling
    # ------------------------------------------------------------------ #

    def set_queue_depth(self, now: float, depth: int) -> None:
        """Scheduler hook: arrived-but-undispatched request count."""
        self.queue_depth.set(depth)
        self._last_time = max(self._last_time, now)

    def set_kv_bytes(self, current_bytes: int) -> None:
        """KV-tracker hook: live KV footprint after a mutation."""
        self.kv_bytes.set(current_bytes)

    def maybe_sample(self, now: float, pool=None, kv_tracker=None) -> bool:
        """Sample the time series if the interval elapsed; True when taken."""
        if (
            self._last_sample is not None
            and now - self._last_sample < self.sample_interval_seconds
        ):
            return False
        self.sample(now, pool=pool, kv_tracker=kv_tracker)
        return True

    def sample(self, now: float, pool=None, kv_tracker=None) -> None:
        """Refresh provider-backed gauges, then snapshot every instrument."""
        self._last_time = max(self._last_time, now)
        if pool is not None:
            faults = getattr(pool, "faults", None)
            for device in pool.devices:
                label = str(device.index)
                self.cache_used_bytes.set(device.used_bytes, device=label)
                channel = device.channel
                pending = sum(
                    t.num_bytes for t in channel.pending_tasks(now)
                )
                self.inflight_bytes.set(pending, device=label)
                self.link_bytes.set(channel.bytes_transferred, device=label)
                if faults is not None:
                    self.bandwidth_multiplier.set(
                        faults.bandwidth_multiplier(device.index, now),
                        device=label,
                    )
            if faults is not None:
                self.compute_multiplier.set(faults.compute_multiplier(now))
        if kv_tracker is not None:
            self.kv_bytes.set(kv_tracker.current_bytes())
        self.hit_rate_window.set(self._hit_window.value(now))
        self.events_dropped.set(getattr(self.sink, "dropped", 0))
        self.metrics.sample(now)
        self._last_sample = now

    # ------------------------------------------------------------------ #
    # Finalization and export
    # ------------------------------------------------------------------ #

    @property
    def last_time(self) -> float:
        """Latest virtual time any instrumentation point reported."""
        return self._last_time

    def finalize(self, now: float | None = None) -> None:
        """Flush live transfer spans and take a closing sample (idempotent)."""
        if self._finalized:
            return
        self._finalized = True
        end_time = self._last_time if now is None else now
        for kind, device, expert, task in self._transfers.values():
            self.tracer.complete(
                kind,
                task.start,
                task.end,
                tid=self._device_lane(device),
                category="transfer",
                expert=str(expert),
                device=device,
                bytes=getattr(task, "num_bytes", 0),
            )
        self._transfers.clear()
        self.events_dropped.set(getattr(self.sink, "dropped", 0))
        self.metrics.sample(max(end_time, self._last_sample or 0.0))
        self.sink.close()

    def write_outputs(self, out_dir: str | Path) -> dict[str, Path]:
        """Write trace + metrics files into ``out_dir``; returns the paths.

        Calls :meth:`finalize` first, so it is safe (and expected) to call
        exactly once after the run.
        """
        self.finalize()
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths = {
            "trace": self.tracer.write_chrome(out / "trace.json"),
            "metrics_prom": self.metrics.write_prometheus(
                out / "metrics.prom"
            ),
            "metrics_jsonl": self.metrics.write_series_jsonl(
                out / "metrics.jsonl"
            ),
        }
        sink_path = getattr(self.sink, "path", None)
        if sink_path is not None:
            paths["events"] = Path(sink_path)
        return paths
