"""SLO error-budget burn-rate alerting over the attainment stream.

Classic SRE multi-window alerting, transplanted onto the simulator's
virtual clock: each request resolution is an observation (``good`` when
the request served within its SLO deadline, bad when it missed, shed, or
failed), and a **burn rate** is how fast those observations consume the
error budget relative to the objective —

    ``burn = window_error_rate / (1 - objective)``

A burn of 1.0 spends the budget exactly on schedule; 14.4 exhausts a
30-day budget in ~2 days.  Each :class:`BurnRateRule` pairs a long
window (significance) with a short window (reset responsiveness) and
fires only when **both** exceed the threshold — the standard defence
against stale long-window alerts and noisy short-window ones.  Window
lengths here are virtual seconds scaled to simulation timescales rather
than the SRE book's hours.

:class:`SLOTracker` consumes the stream, maintains the windows, records
rising-edge :class:`SLOAlert` events (fire + resolve), and summarises
budget consumption for :class:`~repro.cluster.metrics.ClusterReport`
and the ``repro slo`` CLI.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.errors import TelemetryError


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alerting rule."""

    name: str
    long_window: float
    """Significance window, virtual seconds."""

    short_window: float
    """Reset window, virtual seconds (must be <= long_window)."""

    burn_threshold: float
    """Fire when both windows burn faster than this multiple of budget."""

    def __post_init__(self) -> None:
        if self.long_window <= 0 or self.short_window <= 0:
            raise TelemetryError(
                f"rule {self.name!r}: windows must be > 0 "
                f"(got {self.long_window}/{self.short_window})"
            )
        if self.short_window > self.long_window:
            raise TelemetryError(
                f"rule {self.name!r}: short window {self.short_window} "
                f"exceeds long window {self.long_window}"
            )
        if self.burn_threshold <= 0:
            raise TelemetryError(
                f"rule {self.name!r}: burn threshold must be > 0 "
                f"(got {self.burn_threshold})"
            )


def default_burn_rules(scale: float = 1.0) -> list[BurnRateRule]:
    """The classic fast/slow rule pair, scaled to simulation time.

    At ``scale=1`` the fast page fires on a 60 s long / 5 s short pair
    at 14.4x budget burn, the slow ticket on 600 s / 60 s at 6x — the
    SRE-book ratios with seconds standing in for hours.
    """
    if scale <= 0:
        raise TelemetryError(f"scale must be > 0 (got {scale})")
    return [
        BurnRateRule("fast-burn", 60.0 * scale, 5.0 * scale, 14.4),
        BurnRateRule("slow-burn", 600.0 * scale, 60.0 * scale, 6.0),
    ]


@dataclass(frozen=True)
class SLOAlert:
    """One rising-edge alert transition (``firing`` or ``resolved``)."""

    time: float
    rule: str
    state: str
    burn_rate: float
    """Long-window burn at the transition."""

    short_burn_rate: float

    def to_dict(self) -> dict:
        """JSON-serializable form for the report's alert timeline."""
        return {
            "time": self.time,
            "rule": self.rule,
            "state": self.state,
            "burn_rate": self.burn_rate,
            "short_burn_rate": self.short_burn_rate,
        }


class _Window:
    """Sliding count of (time, good) observations over a fixed span."""

    def __init__(self, span: float) -> None:
        self.span = span
        self._events: deque[tuple[float, bool]] = deque()
        self._bad = 0

    def observe(self, time: float, good: bool) -> None:
        self._events.append((time, good))
        if not good:
            self._bad += 1
        self.advance(time)

    def advance(self, time: float) -> None:
        cutoff = time - self.span
        while self._events and self._events[0][0] <= cutoff:
            _, was_good = self._events.popleft()
            if not was_good:
                self._bad -= 1

    def error_rate(self) -> float:
        if not self._events:
            return 0.0
        return self._bad / len(self._events)


class SLOTracker:
    """Burn-rate alerting over a stream of request resolutions.

    Feed resolutions in non-decreasing time order via :meth:`observe`;
    alerts accumulate in :attr:`alerts` as rising/falling edges.  The
    tracker is a pure observer — it holds no reference to the driver and
    never touches the virtual clock.
    """

    def __init__(
        self,
        objective: float = 0.9,
        deadline_seconds: float = 1.0,
        rules: Iterable[BurnRateRule] | None = None,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise TelemetryError(
                f"objective must be in (0, 1) (got {objective})"
            )
        if deadline_seconds <= 0:
            raise TelemetryError(
                f"deadline_seconds must be > 0 (got {deadline_seconds})"
            )
        self.objective = objective
        self.deadline_seconds = deadline_seconds
        self.rules = (
            list(rules) if rules is not None else default_burn_rules()
        )
        self.alerts: list[SLOAlert] = []
        self.good = 0
        self.bad = 0
        self._windows = {
            rule.name: (_Window(rule.long_window), _Window(rule.short_window))
            for rule in self.rules
        }
        self._firing: dict[str, bool] = {rule.name: False for rule in self.rules}
        self._last_time: float | None = None

    @property
    def error_budget(self) -> float:
        """The tolerated error fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def observe(self, time: float, good: bool) -> None:
        """One request resolution at virtual ``time`` (monotone order)."""
        if self._last_time is not None and time < self._last_time:
            raise TelemetryError(
                f"observations must be time-ordered "
                f"({time} < {self._last_time})"
            )
        self._last_time = time
        if good:
            self.good += 1
        else:
            self.bad += 1
        for rule in self.rules:
            long_w, short_w = self._windows[rule.name]
            long_w.observe(time, good)
            short_w.observe(time, good)
            long_burn = long_w.error_rate() / self.error_budget
            short_burn = short_w.error_rate() / self.error_budget
            firing = (
                long_burn >= rule.burn_threshold
                and short_burn >= rule.burn_threshold
            )
            if firing != self._firing[rule.name]:
                self._firing[rule.name] = firing
                self.alerts.append(
                    SLOAlert(
                        time=time,
                        rule=rule.name,
                        state="firing" if firing else "resolved",
                        burn_rate=long_burn,
                        short_burn_rate=short_burn,
                    )
                )

    def observe_outcomes(
        self, outcomes, deadline_seconds: float | None = None
    ) -> None:
        """Replay a driver's request outcomes through the tracker.

        Outcomes are resolved at the client-visible moment: served
        requests when their last token lands, shed/failed requests at
        arrival (the client learns immediately).  Feeding the stream at
        finalize time — rather than live — keeps the alert history
        exact even when a crash retracts an already-served outcome.
        """
        deadline = (
            deadline_seconds
            if deadline_seconds is not None
            else self.deadline_seconds
        )
        resolutions = []
        for outcome in outcomes:
            if outcome.outcome == "served":
                when = outcome.arrival + (outcome.latency or 0.0)
                good = (outcome.latency or 0.0) <= deadline
            else:
                when = outcome.arrival
                good = False
            resolutions.append((when, outcome.request_id, good))
        for when, _, good in sorted(resolutions):
            self.observe(when, good)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #

    @property
    def total(self) -> int:
        return self.good + self.bad

    def attainment(self) -> float:
        """Overall fraction of good observations (1.0 when empty)."""
        return self.good / self.total if self.total else 1.0

    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (can exceed 1.0)."""
        if not self.total:
            return 0.0
        return (self.bad / self.total) / self.error_budget

    def firing(self) -> list[str]:
        """Rules currently in the firing state, in rule order."""
        return [r.name for r in self.rules if self._firing[r.name]]

    def to_dict(self) -> dict:
        """The summary that lands in ClusterReport / ``repro slo``."""
        fired = {rule.name: 0 for rule in self.rules}
        for alert in self.alerts:
            if alert.state == "firing":
                fired[alert.rule] += 1
        return {
            "objective": self.objective,
            "deadline_seconds": self.deadline_seconds,
            "observations": self.total,
            "attainment": self.attainment(),
            "budget_consumed": self.budget_consumed(),
            "alerts": [alert.to_dict() for alert in self.alerts],
            "firing": self.firing(),
            "fired_counts": fired,
            "rules": [
                {
                    "name": rule.name,
                    "long_window": rule.long_window,
                    "short_window": rule.short_window,
                    "burn_threshold": rule.burn_threshold,
                }
                for rule in self.rules
            ],
        }


class TieredSLOTracker:
    """Per-SLO-tier burn-rate tracking: one :class:`SLOTracker` per tier.

    Multi-tenant runs burn budget at very different speeds per tier —
    under overload the driver sheds batch traffic first, so the batch
    tier's fast-burn rule should page long before premium's does.  This
    wrapper partitions the outcome stream by tier (via a request-id →
    tier mapping) and runs an independent tracker, with independent
    windows and alert timelines, over each partition.
    """

    def __init__(
        self,
        objective: float = 0.9,
        deadline_seconds: float = 1.0,
        rules: Iterable[BurnRateRule] | None = None,
    ) -> None:
        self.objective = objective
        self.deadline_seconds = deadline_seconds
        self.rules = list(rules) if rules is not None else None
        self.trackers: dict[str, SLOTracker] = {}

    def tracker_for(self, tier: str) -> SLOTracker:
        """The (lazily created) tracker owning one tier's stream."""
        if tier not in self.trackers:
            self.trackers[tier] = SLOTracker(
                objective=self.objective,
                deadline_seconds=self.deadline_seconds,
                rules=self.rules,
            )
        return self.trackers[tier]

    def observe_outcomes(self, outcomes, tiers: dict[int, str]) -> None:
        """Replay outcomes, partitioned by ``tiers`` (request-id → tier).

        Outcomes whose request id is missing from the mapping land in an
        ``""`` (untiered) partition rather than being dropped, so the
        per-tier observation counts always conserve the outcome count.
        """
        by_tier: dict[str, list] = {}
        for outcome in outcomes:
            tier = tiers.get(outcome.request_id, "")
            by_tier.setdefault(tier, []).append(outcome)
        for tier, tier_outcomes in sorted(by_tier.items()):
            self.tracker_for(tier).observe_outcomes(tier_outcomes)

    def to_dict(self) -> dict:
        """Tier → :meth:`SLOTracker.to_dict` summary, sorted by tier."""
        return {
            tier: tracker.to_dict()
            for tier, tracker in sorted(self.trackers.items())
        }

    def firing(self) -> dict[str, list[str]]:
        """Tiers with at least one rule firing (tier → rule names)."""
        result = {}
        for tier, tracker in sorted(self.trackers.items()):
            names = tracker.firing()
            if names:
                result[tier] = names
        return result


def tracker_from_outcome_dicts(
    outcome_dicts: Iterable[dict],
    objective: float = 0.9,
    deadline_seconds: float = 1.0,
    rules: Iterable[BurnRateRule] | None = None,
) -> SLOTracker:
    """Replay serialized request outcomes (cluster-report JSON form).

    The ``repro slo`` backend: rebuilds the alert timeline offline from
    a saved report's ``resilience.outcomes`` array, so burn-rate rules
    can be re-tuned without re-running the simulation.
    """
    tracker = SLOTracker(
        objective=objective, deadline_seconds=deadline_seconds, rules=rules
    )
    resolutions = []
    for o in outcome_dicts:
        if o.get("outcome") == "served":
            when = o["arrival"] + (o.get("latency") or 0.0)
            good = (o.get("latency") or 0.0) <= deadline_seconds
        else:
            when = o["arrival"]
            good = False
        resolutions.append((when, o.get("request_id", 0), good))
    for when, _, good in sorted(resolutions):
        tracker.observe(when, good)
    return tracker


def render_slo_summary(summary: dict) -> str:
    """Human-readable rendering of :meth:`SLOTracker.to_dict` output."""
    lines = [
        f"objective: {summary['objective']:.3f} "
        f"(error budget {1 - summary['objective']:.3f})",
        f"observations: {summary['observations']}  "
        f"attainment: {summary['attainment']:.3f}  "
        f"budget consumed: {summary['budget_consumed']:.2f}x",
    ]
    fired = summary.get("fired_counts", {})
    for rule in summary.get("rules", []):
        name = rule["name"]
        state = "FIRING" if name in summary.get("firing", []) else "ok"
        lines.append(
            f"rule {name}: {state} — fired {fired.get(name, 0)}x "
            f"(windows {rule['long_window']:g}s/{rule['short_window']:g}s "
            f"@ {rule['burn_threshold']:g}x)"
        )
    alerts = summary.get("alerts", [])
    if alerts:
        lines.append("alert timeline:")
        for alert in alerts:
            lines.append(
                f"  t={alert['time']:.3f} {alert['rule']} "
                f"{alert['state']} (burn {alert['burn_rate']:.1f}x, "
                f"short {alert['short_burn_rate']:.1f}x)"
            )
    else:
        lines.append("alert timeline: (no alerts)")
    return "\n".join(lines)
