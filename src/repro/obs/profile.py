"""Wall-clock (host-time) profiler for the engine hot loop.

Everything else in ``repro.obs`` observes the *virtual* clock; this
module measures how much *host* CPU time one simulated serving run
costs, split across the hot-loop phases the columnar-engine rewrite
(ROADMAP open item #1) will attack:

- ``gate_draws``               — ``session.next_iteration()`` routing draws;
- ``hit_miss_classification``  — ``engine._snapshot_hits`` at the gate;
- ``transfer_charging``        — pool ``load_on_demand`` / ``prefetch``
  and columnar block issue;
- ``eviction_scoring``         — ``pool._make_space`` victim selection;
- ``policy_hooks``             — the policy's iteration/gate callbacks;
- ``other``                    — everything else in the serve loop.

Phases nest (an on-demand load can trigger eviction scoring), so the
profiler keeps a stack and attributes **self time**: entering a nested
phase pauses the enclosing one.  Instrumentation is instance-level
method wrapping on a throwaway engine — the same patching idiom the
mutant harness uses — so nothing leaks into other runs.  Phase
``calls`` count *logical scalar operations*, not Python invocations:
one batched snapshot or prefetch block reports one call per expert it
covered, so counts stay comparable across the columnar and scalar
cores.

``run_profile`` executes a full world-build + warm + serve cycle under
the timer and produces the ``BENCH_profile.json`` payload: per-phase
seconds/calls/shares plus ``simulated_requests_per_second``, the
regression baseline CI's profile-smoke job gates on via
:func:`check_profile_payload`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.errors import TelemetryError

#: Schema tag stamped into every payload (bump on breaking changes).
PROFILE_SCHEMA = "repro-profile/v1"

#: Instrumented phases, in hot-loop order (``other`` is the remainder).
PHASE_NAMES: tuple[str, ...] = (
    "gate_draws",
    "hit_miss_classification",
    "transfer_charging",
    "eviction_scoring",
    "policy_hooks",
    "other",
)

#: Keys every BENCH_profile.json payload must carry.
REQUIRED_KEYS: tuple[str, ...] = (
    "schema",
    "model",
    "dataset",
    "system",
    "repeats",
    "requests",
    "iterations",
    "activations",
    "simulated_seconds",
    "wall_seconds",
    "setup_seconds",
    "simulated_requests_per_second",
    "simulated_iterations_per_second",
    "phases",
)


class PhaseTimer:
    """Stack-based self-time accumulator over host ``perf_counter``."""

    def __init__(self) -> None:
        self.seconds = {name: 0.0 for name in PHASE_NAMES}
        self.calls = {name: 0 for name in PHASE_NAMES}
        self._stack: list[list] = []  # [phase, resumed_at]

    def push(self, phase: str) -> None:
        """Enter ``phase``, pausing the enclosing phase's clock."""
        now = time.perf_counter()
        if self._stack:
            top = self._stack[-1]
            self.seconds[top[0]] += now - top[1]
        self._stack.append([phase, now])

    def pop(self, count: int = 1) -> None:
        """Leave the current phase, resuming its parent's clock.

        ``count`` is how many *logical scalar operations* the window
        covered.  Batched phases (one array invocation classifying a
        whole expert set, one block prefetch charging many transfers)
        pass the element count so ``calls`` stays comparable between
        the columnar core and the scalar reference — calls measure
        work, not Python function invocations.
        """
        now = time.perf_counter()
        phase, resumed_at = self._stack.pop()
        self.seconds[phase] += now - resumed_at
        self.calls[phase] += count
        if self._stack:
            self._stack[-1][1] = now

    def wrap(self, obj, attr: str, phase: str, count=None):
        """Replace ``obj.attr`` with a timed wrapper (instance-level).

        ``count`` (optional) maps one invocation to its logical
        operation count: called as ``count(args, kwargs, result)`` after
        the original returns.  Nested same-phase calls made *inside* the
        window already incremented ``calls``; the wrapper charges only
        the remainder, so wrapping both a batched entry point and the
        scalar helpers it delegates to never double-counts.
        """
        original = getattr(obj, attr)

        def timed(*args, **kwargs):
            before = self.calls[phase]
            self.push(phase)
            n = 1
            try:
                result = original(*args, **kwargs)
                if count is not None:
                    n = count(args, kwargs, result)
                return result
            finally:
                inner = self.calls[phase] - before
                self.pop(count=max(n - inner, 0) if count is not None else 1)

        setattr(obj, attr, timed)
        return timed

    def instrument_engine(self, engine) -> None:
        """Attach every hot-loop phase probe to one throwaway engine."""
        # Gate draws live on per-request sessions the model hands out
        # mid-run; wrap the factory so each session's bound
        # ``next_iteration`` is timed the moment it is created.
        original_start = engine.model.start_session

        def timed_start_session(*args, **kwargs):
            session = original_start(*args, **kwargs)
            self.wrap(session, "next_iteration", "gate_draws")
            return session

        engine.model.start_session = timed_start_session
        # Batched phases report logical scalar-operation counts so the
        # columnar core and the scalar reference profile comparably: one
        # snapshot call classifies every expert the layer touches, and
        # one prefetch block charges one transfer per block entry
        # (entries already tracked count too — the scalar path pays a
        # pool call for its "present" early return).
        self.wrap(
            engine,
            "_snapshot_hits",
            "hit_miss_classification",
            count=lambda args, kwargs, result: len(result),
        )
        self.wrap(engine.pool, "load_on_demand", "transfer_charging")
        self.wrap(engine.pool, "prefetch", "transfer_charging")
        self.wrap(
            engine,
            "_issue_prefetch_block",
            "transfer_charging",
            count=lambda args, kwargs, result: len(args[1][0]),
        )
        self.wrap(engine.pool, "_make_space", "eviction_scoring")
        for hook in (
            "on_iteration_start",
            "on_gate_output",
            "on_iteration_end",
        ):
            if hasattr(engine.policy, hook):
                self.wrap(engine.policy, hook, "policy_hooks")


def run_profile(
    config=None,
    system: str = "fmoe",
    repeats: int = 3,
    world=None,
):
    """Profile the engine hot loop; returns the BENCH payload dict.

    Builds a world from ``config`` (or reuses ``world``), then serves
    its test requests ``repeats`` times on fresh instrumented engines.
    World building and policy warm-up count as ``setup_seconds``; only
    the serve loops feed the phase timer and the throughput figures.
    """
    from repro.experiments.common import (
        ExperimentConfig,
        build_world,
        make_engine,
    )

    if repeats < 1:
        raise TelemetryError(f"repeats must be >= 1 (got {repeats})")
    setup_start = time.perf_counter()
    if world is None:
        world = build_world(config or ExperimentConfig())
    timer = PhaseTimer()
    requests = 0
    activations = 0
    simulated_seconds = 0.0
    serve_seconds = 0.0
    engines = []
    for _ in range(repeats):
        engine = make_engine(world, system)
        engine.policy.warm(world.warm_traces)
        engines.append(engine)
    setup_seconds = time.perf_counter() - setup_start
    for engine in engines:
        timer.instrument_engine(engine)
        serve_start = time.perf_counter()
        report = engine.run(world.test_requests)
        serve_seconds += time.perf_counter() - serve_start
        requests += len(report.requests)
        activations += report.activations
        simulated_seconds += engine.now
    iterations = timer.calls["gate_draws"]
    instrumented = sum(
        timer.seconds[name] for name in PHASE_NAMES if name != "other"
    )
    timer.seconds["other"] = max(serve_seconds - instrumented, 0.0)
    phases = {
        name: {
            "seconds": timer.seconds[name],
            "calls": timer.calls[name],
            "share": (
                timer.seconds[name] / serve_seconds if serve_seconds else 0.0
            ),
        }
        for name in PHASE_NAMES
    }
    return {
        "schema": PROFILE_SCHEMA,
        "model": world.config.model_name,
        "dataset": world.config.dataset,
        "system": system,
        "repeats": repeats,
        "requests": requests,
        "iterations": iterations,
        "activations": activations,
        "simulated_seconds": simulated_seconds,
        "wall_seconds": serve_seconds,
        "setup_seconds": setup_seconds,
        "simulated_requests_per_second": (
            requests / serve_seconds if serve_seconds else 0.0
        ),
        "simulated_iterations_per_second": (
            iterations / serve_seconds if serve_seconds else 0.0
        ),
        "phases": phases,
    }


def write_profile(payload: dict, path: str | Path) -> Path:
    """Serialize a profile payload as stable, diff-friendly JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def check_profile_payload(
    payload: dict, min_requests_per_second: float = 0.0
) -> list[str]:
    """Validate a BENCH_profile.json payload; returns problem strings.

    The CI regression gate: schema tag, required keys, per-phase
    structure with shares summing to ~1, and the
    simulated-requests/sec floor.  An empty list means the payload
    passes.
    """
    problems = []
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing key: {key}")
    if problems:
        return problems
    if payload["schema"] != PROFILE_SCHEMA:
        problems.append(
            f"schema mismatch: {payload['schema']!r} != {PROFILE_SCHEMA!r}"
        )
    phases = payload["phases"]
    for name in PHASE_NAMES:
        if name not in phases:
            problems.append(f"missing phase: {name}")
            continue
        for field in ("seconds", "calls", "share"):
            if field not in phases[name]:
                problems.append(f"phase {name}: missing {field}")
    if not problems and payload["wall_seconds"] > 0:
        total_share = sum(phases[name]["share"] for name in PHASE_NAMES)
        if abs(total_share - 1.0) > 1e-6:
            problems.append(
                f"phase shares sum to {total_share}, expected 1.0"
            )
    rps = payload["simulated_requests_per_second"]
    if rps < min_requests_per_second:
        problems.append(
            f"simulated_requests_per_second {rps:.3f} below floor "
            f"{min_requests_per_second:.3f}"
        )
    return problems
