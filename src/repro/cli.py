"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``models``   — print the Table-1 model characteristics.
- ``compare``  — offline fMoE-vs-baselines comparison (Fig. 9 style).
- ``overall``  — the full Fig. 9 (model × dataset × system) table.
- ``online``   — cold-start online trace replay (Fig. 10 style).
- ``sweep``    — TPOT vs expert-cache budget (Fig. 11 style).
- ``entropy``  — coarse vs fine entropy analysis (Fig. 3b style).
- ``pearson``  — similarity/hit-rate Pearson coefficients (Fig. 8 style).
- ``tune``     — prefetch-distance profiling (the paper's §6.1 setup step).
- ``faults``   — chaos matrix: systems under scripted fault scenarios.
- ``cluster``  — multi-replica cluster simulation with affinity routing
  (``--chaos`` / ``--resilience`` engage the cluster resilience layer).
- ``storm-lite`` — resilience off vs. on under cluster-scope chaos.
- ``storm``    — multi-tenant traffic storm: full-day census plus a
  priority-aware simulation window at 10k/100k/1m offered requests.
- ``fleet``    — heterogeneous fleet-shape sweep: cost-aware placement +
  routing vs. the uniform baseline, scored as SLO attainment per dollar.
- ``grid``     — sweep (model, dataset, system, budget) grids to CSV.
- ``report``   — collate ``benchmarks/results`` into one markdown report.
- ``profile``  — save traces / a warm store, or (``--quick`` /
  ``--bench-out``) profile the engine hot loop's host wall-clock cost.
- ``trace``    — run one policy with full telemetry; write trace + metrics.
- ``inspect``  — summarize a recorded trace directory (stalls, tables) or
  a cluster-report JSON (replica table, resilience counters).
- ``journeys`` — per-request journeys with critical-path attribution for
  one cluster run (top-K slowest, phase breakdown).
- ``slo``      — burn-rate alert replay over a saved cluster report.
- ``validate`` — invariant monitors, metamorphic laws, mutant detection.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

MODEL_CHOICES = (
    "mixtral-8x7b",
    "qwen1.5-moe",
    "phi-3.5-moe",
    "deepseek-moe",
)
DATASET_CHOICES = ("lmsys-chat-1m", "sharegpt")
POLICY_CHOICES = (
    "fmoe",
    "deepspeed-inference",
    "mixtral-offloading",
    "promoe",
    "moe-infinity",
    "no-offload",
    "oracle",
)
ROUTER_CHOICES = (
    "round-robin",
    "least-outstanding",
    "semantic-affinity",
    "cost-aware",
)


def _prefix_choice(choices: tuple[str, ...]):
    """An argparse ``type`` accepting any unambiguous prefix of ``choices``."""

    def resolve(value: str) -> str:
        if value in choices:
            return value
        matches = [c for c in choices if c.startswith(value)]
        if len(matches) == 1:
            return matches[0]
        kind = "ambiguous" if matches else "unknown"
        raise argparse.ArgumentTypeError(
            f"{kind} choice {value!r}; choose from: {', '.join(choices)}"
        )

    return resolve


def _add_world_args(
    parser: argparse.ArgumentParser, fuzzy: bool = False
) -> None:
    if fuzzy:
        # ``repro trace --model mixtral`` style: unambiguous prefixes OK.
        parser.add_argument(
            "--model",
            default="mixtral-8x7b",
            type=_prefix_choice(MODEL_CHOICES),
        )
        parser.add_argument(
            "--dataset",
            default="lmsys-chat-1m",
            type=_prefix_choice(DATASET_CHOICES),
        )
    else:
        parser.add_argument(
            "--model", default="mixtral-8x7b", choices=MODEL_CHOICES
        )
        parser.add_argument(
            "--dataset", default="lmsys-chat-1m", choices=DATASET_CHOICES
        )
    parser.add_argument("--requests", type=int, default=40)
    parser.add_argument("--test-requests", type=int, default=6)
    parser.add_argument(
        "--cache-fraction",
        type=float,
        default=None,
        help="expert-cache budget as a fraction of total expert bytes "
        "(default: 0.9x one iteration's working set)",
    )
    parser.add_argument("--prefetch-distance", type=int, default=3)
    parser.add_argument("--store-capacity", type=int, default=1024)
    parser.add_argument("--seed", type=int, default=0)


def _add_validate_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--validate",
        action="store_true",
        help="attach runtime invariant monitors to every cell and fail "
        "on the first breach (results are unchanged otherwise)",
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="workers for independent simulation cells "
        "(0 = all cores; results are identical at any level)",
    )
    parser.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="pool flavor for --jobs > 1: isolated worker processes or "
        "one shared-cache thread pool (identical results either way)",
    )


def _config_from_args(args: argparse.Namespace):
    from repro.experiments.common import ExperimentConfig

    return ExperimentConfig(
        model_name=args.model,
        dataset=args.dataset,
        num_requests=args.requests,
        num_test_requests=args.test_requests,
        cache_fraction=args.cache_fraction,
        prefetch_distance=args.prefetch_distance,
        store_capacity=args.store_capacity,
        seed=args.seed,
    )


def cmd_models(args: argparse.Namespace) -> int:
    """Print the Table-1 model characteristics."""
    from repro.experiments.table1 import table1_rows

    for row in table1_rows():
        print(row.format())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Offline fMoE-vs-baselines comparison (Fig. 9 style)."""
    from repro.experiments.common import (
        SYSTEM_NAMES,
        build_world,
        run_system,
    )

    config = _config_from_args(args)
    world = build_world(config)
    systems = args.systems or list(SYSTEM_NAMES)
    reports = {}
    for system in systems:
        report = run_system(world, system)
        reports[system] = report
        print(
            f"{system:22s} TTFT={report.mean_ttft():7.3f}s "
            f"TPOT={report.mean_tpot() * 1000:8.1f}ms "
            f"hit={report.hit_rate:5.3f}"
        )
    if args.chart:
        from repro.viz import bar_chart

        print("\nTPOT (ms):")
        print(
            bar_chart(
                {s: r.mean_tpot() * 1000 for s, r in reports.items()},
                unit="ms",
                fmt="{:.1f}",
            )
        )
        print("\nexpert hit rate:")
        print(bar_chart({s: r.hit_rate for s, r in reports.items()}))
    return 0


def cmd_overall(args: argparse.Namespace) -> int:
    """The full Fig. 9 table: every (model, dataset, system) cell."""
    from repro.experiments.common import SYSTEM_NAMES
    from repro.experiments.overall import improvement_summary, overall_rows

    config = _config_from_args(args)
    rows = overall_rows(
        models=tuple(args.models),
        datasets=tuple(args.datasets),
        systems=tuple(args.systems or SYSTEM_NAMES),
        config=config,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for row in rows:
        print(row.format())
    if args.summary:
        print("\nfMoE mean improvement over each baseline:")
        for system, metrics in sorted(improvement_summary(rows).items()):
            print(
                f"  {system:22s} TTFT -{metrics['ttft'] * 100:5.1f}% "
                f"TPOT -{metrics['tpot'] * 100:5.1f}% "
                f"hit +{metrics['hit'] * 100:5.1f}%"
            )
    return 0


def cmd_online(args: argparse.Namespace) -> int:
    """Cold-start online trace replay (Fig. 10 style)."""
    import numpy as np

    from repro.experiments.common import (
        SYSTEM_NAMES,
        build_world,
        run_system,
    )
    from repro.workloads.azure import AzureTraceConfig, make_azure_trace
    from repro.workloads.datasets import get_dataset_profile

    config = _config_from_args(args)
    world = build_world(config.with_(num_requests=8))
    if args.trace_file:
        from repro.workloads.tracefile import read_trace_csv

        trace = read_trace_csv(
            args.trace_file,
            profile=get_dataset_profile(args.dataset),
            seed=args.seed + 10,
            max_requests=args.trace_requests,
        )
    else:
        trace = make_azure_trace(
            AzureTraceConfig(
                num_requests=args.trace_requests,
                mean_interarrival_seconds=args.rate,
            ),
            get_dataset_profile(args.dataset),
            seed=args.seed + 10,
        )
    for system in args.systems or list(SYSTEM_NAMES):
        report = run_system(
            world, system, warm=False, requests=trace, respect_arrivals=True
        )
        p50, p90 = np.percentile(report.e2e_latencies(), [50, 90])
        print(f"{system:22s} p50={p50:8.2f}s p90={p90:8.2f}s")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """TPOT vs expert-cache budget sweep (Fig. 11 style)."""
    from repro.experiments.cache_limits import tpot_vs_cache_limit

    config = _config_from_args(args)
    rows = tpot_vs_cache_limit(
        models=(args.model,),
        dataset=args.dataset,
        limits_gb=tuple(args.limits),
        config=config,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for row in rows:
        print(
            f"{row.system:22s} {row.cache_gb:6.1f} GB: "
            f"TPOT={row.tpot_seconds * 1000:8.1f}ms hit={row.hit_rate:5.3f}"
        )
    return 0


def cmd_entropy(args: argparse.Namespace) -> int:
    """Coarse vs fine entropy analysis (Fig. 3b style)."""
    from repro.experiments.entropy_motivation import entropy_comparison

    rows = entropy_comparison(
        models=(args.model,),
        datasets=(args.dataset,),
        num_requests=args.requests,
        seed=args.seed,
    )
    for row in rows:
        print(
            f"{row.model:14s} {row.dataset:14s} "
            f"coarse={row.coarse_mean_entropy:5.2f} "
            f"fine={row.fine_mean_entropy:5.2f} "
            f"(max {row.max_entropy:4.2f} bits)"
        )
    return 0


def cmd_pearson(args: argparse.Namespace) -> int:
    """Similarity/hit-rate Pearson coefficients (Fig. 8 style)."""
    from repro.experiments.pearson import pearson_rows

    rows = pearson_rows(
        models=(args.model,),
        datasets=(args.dataset,),
        distance=args.prefetch_distance,
        num_requests=args.requests,
        seed=args.seed,
    )
    for row in rows:
        print(
            f"{row.model:14s} {row.dataset:14s} "
            f"semantic={row.semantic_pearson:+5.2f} "
            f"trajectory={row.trajectory_pearson:+5.2f}"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Save traces / a warm store, or wall-clock-profile the hot loop."""
    wallclock = args.quick or args.bench_out is not None
    if not (args.traces_out or args.store_out or wallclock):
        print(
            "nothing to do: pass --traces-out and/or --store-out "
            "(or --quick / --bench-out for hot-loop profiling)"
        )
        return 2
    from repro.experiments.common import build_world

    config = _config_from_args(args)
    world = build_world(config)
    if args.traces_out:
        from repro.core.persistence import save_traces

        save_traces(world.warm_traces, args.traces_out)
        print(f"wrote {len(world.warm_traces)} traces to {args.traces_out}")
    if args.store_out:
        from repro.analysis.tracking import build_store
        from repro.core.persistence import save_store

        store = build_store(
            world.model_config,
            world.warm_traces,
            distance=config.prefetch_distance,
            capacity=config.store_capacity,
        )
        save_store(store, args.store_out)
        print(
            f"wrote store with {len(store)} maps "
            f"({store.memory_bytes() / 1e6:.1f} MB) to {args.store_out}"
        )
    if wallclock:
        from repro.obs.profile import (
            check_profile_payload,
            run_profile,
            write_profile,
        )

        repeats = 1 if args.quick else args.repeats
        payload = run_profile(
            config, args.system, repeats=repeats, world=world
        )
        bench_path = args.bench_out or "benchmarks/BENCH_profile.json"
        write_profile(payload, bench_path)
        print(
            f"{args.system} hot loop: "
            f"{payload['simulated_requests_per_second']:.2f} simulated "
            f"requests/s ({payload['requests']} requests, "
            f"{payload['iterations']} iterations in "
            f"{payload['wall_seconds']:.3f}s wall)"
        )
        for name, phase in payload["phases"].items():
            print(
                f"  {name:24s} {phase['seconds']:8.4f}s "
                f"{phase['share']:6.1%} ({phase['calls']} calls)"
            )
        print(f"wrote {bench_path}")
        problems = check_profile_payload(payload, args.min_rps)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
    return 0


def cmd_engine_bench(args: argparse.Namespace) -> int:
    """Benchmark the columnar engine core against the scalar reference."""
    from repro.obs.enginebench import (
        DEFAULT_BATCH_SIZES,
        DEFAULT_WORLDS,
        check_engine_bench_payload,
        run_engine_bench,
        write_engine_bench,
    )

    worlds = DEFAULT_WORLDS
    if args.models:
        worlds = tuple(w for w in DEFAULT_WORLDS if w[0] in args.models)
        unknown = set(args.models) - {w[0] for w in DEFAULT_WORLDS}
        if unknown:
            print(f"unknown model(s): {', '.join(sorted(unknown))}")
            return 2
    repeats = args.repeats
    if args.quick:
        # Keep the repeats (best-of-N absorbs shared-runner noise; a
        # single timing can undershoot the floor) but trim the grid to
        # the batch-1 cell.
        batch_sizes = tuple(args.batch_sizes or (1,))
    else:
        batch_sizes = tuple(args.batch_sizes or DEFAULT_BATCH_SIZES)
    payload = run_engine_bench(
        worlds=worlds, batch_sizes=batch_sizes, repeats=repeats
    )
    bench_path = args.bench_out or "benchmarks/BENCH_engine.json"
    write_engine_bench(payload, bench_path)
    for model, block in payload["models"].items():
        for batch_size, cell in block["by_batch_size"].items():
            parity = "ok" if cell["reports_identical"] else "DIFFER"
            print(
                f"{model:14s} B={batch_size:>3s} "
                f"columnar {cell['columnar_rps']:7.2f} req/s vs "
                f"scalar {cell['scalar_reference_rps']:7.2f} req/s = "
                f"{cell['speedup']:5.2f}x (reports {parity})"
            )
    print(f"best speedup {payload['max_speedup']:.2f}x")
    print(f"wrote {bench_path}")
    problems = check_engine_bench_payload(payload, args.min_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    return 0


def cmd_grid(args: argparse.Namespace) -> int:
    """Sweep (model, dataset, system, budget) grids to CSV."""
    from repro.experiments.grid import grid_to_csv, run_grid

    config = _config_from_args(args)
    cells = run_grid(
        models=args.models,
        datasets=args.datasets,
        systems=args.systems,
        budgets_gb=args.budgets or None,
        config=config,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    text = grid_to_csv(cells, args.output)
    if args.output:
        print(f"wrote {len(cells)} cells to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Collate benchmarks/results into one markdown report."""
    from repro.experiments.report import write_report

    path = write_report(args.results_dir, args.output)
    print(f"wrote {path}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    """Profile candidate prefetch distances (the paper's §6.1 step)."""
    from repro.core.autotune import tune_prefetch_distance
    from repro.experiments.common import build_world
    from repro.workloads.profiler import collect_history

    config = _config_from_args(args)
    world = build_world(config)
    probes = collect_history(
        world.fresh_model(), world.test_requests[: args.test_requests]
    )
    result = tune_prefetch_distance(
        world.model_config,
        world.warm_traces,
        probes,
        store_capacity=config.store_capacity,
    )
    for score in result.scores:
        marker = " <== best" if score.distance == result.best_distance else ""
        print(
            f"d={score.distance}: hit={score.hit_rate:5.3f} "
            f"coverage={score.coverage:5.3f} "
            f"utility={score.utility:5.3f}{marker}"
        )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Chaos matrix: systems under scripted fault scenarios."""
    from repro.experiments.faults import (
        CHAOS_SYSTEMS,
        chaos_rows,
        default_scenarios,
    )

    config = _config_from_args(args)
    scenarios = default_scenarios(args.seed)
    if args.scenarios:
        by_name = {s.name: s for s in scenarios}
        unknown = [name for name in args.scenarios if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"unknown scenario(s) {unknown}; choose from: {known}")
            return 2
        scenarios = tuple(by_name[name] for name in args.scenarios)
    rows = chaos_rows(
        systems=tuple(args.systems or CHAOS_SYSTEMS),
        scenarios=scenarios,
        config=config,
        trace_requests=args.trace_requests,
        rate_seconds=args.rate,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for row in rows:
        print(row.format())
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Multi-replica cluster simulation with pluggable routing."""
    from repro.cluster import (
        AutoscalerConfig,
        ClusterSpec,
        ResilienceConfig,
        cluster_report_to_json,
        run_cluster,
    )
    from repro.experiments.cluster_scaling import (
        _scaling_trace,
        cluster_scaling_rows,
    )
    from repro.experiments.common import build_world
    from repro.experiments.resilience import default_storm_scenarios

    config = _config_from_args(args)
    if args.compare:
        rows = cluster_scaling_rows(
            replica_counts=tuple(args.replica_counts),
            config=config,
            system=args.system,
            trace_requests=args.trace_requests,
            rate_seconds=args.rate,
            jobs=args.jobs,
            executor=args.executor,
        )
        for row in rows:
            print(row.format())
        return 0
    autoscaler = None
    if args.autoscale:
        autoscaler = AutoscalerConfig(
            max_replicas=max(args.replicas, AutoscalerConfig().max_replicas)
        )
    cluster_faults = None
    if args.chaos:
        scenarios = {
            s.name: s for s in default_storm_scenarios(args.seed)
        }
        if args.chaos not in scenarios:
            known = ", ".join(sorted(scenarios))
            print(f"unknown chaos scenario {args.chaos!r}; "
                  f"choose from: {known}")
            return 2
        cluster_faults = scenarios[args.chaos].cluster_faults
    profiles = None
    if args.profiles:
        from repro.cluster import get_profile

        profiles = tuple(get_profile(name) for name in args.profiles)
    spec = ClusterSpec(
        replicas=args.replicas,
        router=args.router,
        shared_store=args.shared_store,
        warm=not args.cold,
        autoscaler=autoscaler,
        resilience=ResilienceConfig() if args.resilience else None,
        profiles=profiles,
        placement=args.placement,
    )
    world = build_world(config)
    trace = _scaling_trace(config, args.trace_requests, args.rate)
    report = run_cluster(
        world,
        args.system,
        spec,
        requests=trace,
        cluster_faults=cluster_faults,
        validate=args.validate,
    )
    print(
        f"{args.system} x{args.replicas} router={args.router}: "
        f"routed={report.routed} served={len(report.aggregate.requests)} "
        f"shed={report.shed_requests}"
    )
    print(
        f"  hit={report.hit_rate:.4f} "
        f"affinity={report.affinity_hit_rate:.3f} "
        f"imbalance={report.load_imbalance():.3f} "
        f"ttft={report.mean_ttft():.2f}s "
        f"p95={report.percentile_latency(95):.2f}s"
    )
    for summary in report.replicas:
        state = (
            "crashed"
            if summary.crashed
            else "retired"
            if summary.retired
            else "draining" if summary.draining else "active"
        )
        print(
            f"  replica {summary.replica_id}: {summary.assigned} assigned, "
            f"{summary.served} served, hit={summary.hit_rate:.4f}, "
            f"{state}"
        )
    if report.resilience is not None:
        res = report.resilience
        print(
            f"  resilience: shed={res.total_shed} failed={res.failed} "
            f"retries={res.retry_dispatches}/{res.retry_budget_limit} "
            f"hedges={res.hedges} (won {res.hedge_wins}) "
            f"breaker_opens={res.breaker_opens} "
            f"crashes={res.crashes} restarts={res.restarts} "
            f"lost={res.lost_in_flight}"
        )
    if report.fleet is not None:
        fleet = report.fleet
        names = "/".join(row["profile"] for row in fleet.profiles)
        print(
            f"  fleet: {names} ${fleet.dollars_per_hour:.2f}/h "
            f"placement={fleet.placement} "
            f"cost={fleet.placement_cost:.4f} "
            f"(seed {fleet.placement_seed_cost:.4f}) "
            f"preloaded={sum(r['preloaded'] for r in fleet.profiles)}"
        )
    if report.scale_events:
        for event in report.scale_events:
            print(
                f"  t={event.time:8.2f}s scale:{event.action} "
                f"replica={event.replica_id} "
                f"outstanding={event.outstanding}"
            )
    if args.out is not None:
        cluster_report_to_json(report, args.out)
        print(f"  report written to {args.out}")
    return 0


def cmd_storm_lite(args: argparse.Namespace) -> int:
    """Storm-lite: resilience off vs. on under cluster-scope chaos."""
    from repro.experiments.resilience import (
        default_storm_scenarios,
        storm_rows,
    )

    config = _config_from_args(args)
    scenarios = default_storm_scenarios(args.seed)
    if args.scenarios:
        by_name = {s.name: s for s in scenarios}
        unknown = [name for name in args.scenarios if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"unknown scenario(s) {unknown}; choose from: {known}")
            return 2
        scenarios = tuple(by_name[name] for name in args.scenarios)
    rows = storm_rows(
        scenarios=scenarios,
        config=config,
        system=args.system,
        trace_requests=args.trace_requests,
        rate_seconds=args.rate,
        deadline_multiplier=args.deadline_multiplier,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for row in rows:
        print(row.format())
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    """Multi-tenant storm: census + priority-aware window per scale."""
    import json
    from pathlib import Path

    from repro.experiments.storm import storm_results

    config = _config_from_args(args)
    results = storm_results(
        config=config,
        scales=args.scales,
        sim_requests=args.sim_requests,
        system=args.system,
        replicas=args.replicas,
        admission_rate=args.admission_rate,
        admission_burst=args.admission_burst,
        deadline_multiplier=args.deadline_multiplier,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for res in results:
        census = res.census
        print(
            f"scale {res.scale}: {res.total_requests} offered over "
            f"{census['span_seconds']:.0f}s "
            f"(mean {census['mean_rate']:.3f} rps, "
            f"peak {census['peak_rate']:.3f} rps); "
            f"window {res.sim_requests} requests, "
            f"deadline {res.deadline_seconds:.2f}s"
        )
        for row in res.tiers:
            print(f"  {row.format()}")
        for row in res.tenants:
            print(f"  {row.format()}")
    if args.bench_out:
        payload = {
            "experiment": "storm",
            "model": config.model_name,
            "seed": config.seed,
            "sim_requests": args.sim_requests,
            "replicas": args.replicas,
            "admission_rate": args.admission_rate,
            "admission_burst": args.admission_burst,
            "scales": [res.to_dict() for res in results],
        }
        path = Path(args.bench_out)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Heterogeneous fleet sweep: SLO-per-dollar, uniform vs. cost-aware."""
    import json
    from dataclasses import asdict
    from pathlib import Path

    from repro.experiments.fleet import default_fleet_shapes, fleet_rows

    config = _config_from_args(args)
    shapes = default_fleet_shapes()
    if args.shapes:
        by_name = {s.name: s for s in shapes}
        unknown = [name for name in args.shapes if name not in by_name]
        if unknown:
            known = ", ".join(sorted(by_name))
            print(f"unknown shape(s) {unknown}; choose from: {known}")
            return 2
        shapes = tuple(by_name[name] for name in args.shapes)
    rows = fleet_rows(
        shapes=shapes,
        config=config,
        system=args.system,
        trace_requests=args.trace_requests,
        rate_seconds=args.rate,
        deadline_multiplier=args.deadline_multiplier,
        jobs=args.jobs,
        executor=args.executor,
        validate=args.validate,
    )
    for row in rows:
        print(row.format())
    wins = sum(
        1
        for i in range(0, len(rows), 2)
        if rows[i + 1].slo_per_dollar > rows[i].slo_per_dollar
    )
    print(
        f"cost-aware strictly wins SLO-per-dollar on {wins} of "
        f"{len(rows) // 2} fleet shapes"
    )
    if args.bench_out:
        payload = {
            "experiment": "fleet",
            "model": config.model_name,
            "dataset": config.dataset,
            "seed": config.seed,
            "trace_requests": args.trace_requests,
            "deadline_seconds": rows[0].deadline_seconds if rows else 0.0,
            "cost_aware_wins": wins,
            "shapes": len(rows) // 2,
            "rows": [asdict(row) for row in rows],
        }
        path = Path(args.bench_out)
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run one policy with full telemetry; write trace + metrics files."""
    from repro.obs.runner import run_traced

    config = _config_from_args(args)
    result = run_traced(
        config,
        args.policy,
        args.out_dir,
        online=args.online,
        trace_requests=args.trace_requests,
        rate_seconds=args.rate,
        sample_interval_seconds=args.sample_interval,
    )
    report = result.report
    print(
        f"{args.policy}: {len(report.requests)} requests, "
        f"{report.iterations} iterations, hit={report.hit_rate:.3f}, "
        f"dropped_events={report.events_dropped}"
    )
    for name, path in sorted(result.paths.items()):
        print(f"  {name:13s} {path}")
    print(f"open {result.paths['trace']} in chrome://tracing or Perfetto")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Summarize a recorded trace directory (or trace file)."""
    from repro.obs.inspect import inspect_path

    print(inspect_path(args.path, top=args.top))
    return 0


def cmd_journeys(args: argparse.Namespace) -> int:
    """Per-request journeys with critical-path attribution."""
    from pathlib import Path

    from repro.cluster import (
        ClusterSpec,
        ResilienceConfig,
        cluster_report_to_json,
        run_cluster,
    )
    from repro.experiments.cluster_scaling import _scaling_trace
    from repro.experiments.common import build_world
    from repro.experiments.resilience import default_storm_scenarios
    from repro.obs import (
        FleetSeries,
        JourneyRecorder,
        SLOTracker,
        render_journeys,
        render_slo_summary,
    )

    config = _config_from_args(args)
    cluster_faults = None
    if args.chaos:
        scenarios = {
            s.name: s for s in default_storm_scenarios(args.seed)
        }
        if args.chaos not in scenarios:
            known = ", ".join(sorted(scenarios))
            print(f"unknown chaos scenario {args.chaos!r}; "
                  f"choose from: {known}")
            return 2
        cluster_faults = scenarios[args.chaos].cluster_faults
    spec = ClusterSpec(
        replicas=args.replicas,
        router=args.router,
        resilience=ResilienceConfig() if args.resilience else None,
    )
    world = build_world(config)
    trace = _scaling_trace(config, args.trace_requests, args.rate)
    journeys = JourneyRecorder()
    fleet = FleetSeries(interval_seconds=args.sample_interval)
    slo_tracker = SLOTracker(
        objective=args.slo_objective, deadline_seconds=args.slo_deadline
    )
    report = run_cluster(
        world,
        args.system,
        spec,
        requests=trace,
        cluster_faults=cluster_faults,
        journeys=journeys,
        fleet_series=fleet,
        slo_tracker=slo_tracker,
    )
    print(render_journeys(journeys.ordered(), top=args.top))
    print()
    print("== SLO burn-rate summary ==")
    print(render_slo_summary(report.slo_summary))
    if args.out_dir:
        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        journeys.write_jsonl(out / "journeys.jsonl")
        fleet.write_jsonl(out / "fleet.jsonl")
        fleet.write_csv(out / "fleet.csv")
        cluster_report_to_json(report, out / "cluster_report.json")
        print()
        for name in (
            "journeys.jsonl", "fleet.jsonl", "fleet.csv",
            "cluster_report.json",
        ):
            print(f"  wrote {out / name}")
    return 0


def cmd_slo(args: argparse.Namespace) -> int:
    """Replay burn-rate alerting over a saved cluster report."""
    import json
    from pathlib import Path

    from repro.obs.slo import (
        default_burn_rules,
        render_slo_summary,
        tracker_from_outcome_dicts,
    )

    payload = json.loads(Path(args.report).read_text())
    outcomes = (payload.get("resilience") or {}).get("outcomes")
    if outcomes:
        tracker = tracker_from_outcome_dicts(
            outcomes,
            objective=args.objective,
            deadline_seconds=args.deadline,
            rules=default_burn_rules(args.window_scale),
        )
        print(render_slo_summary(tracker.to_dict()))
        return 0
    if payload.get("slo"):
        # No replayable outcomes, but the run recorded a summary.
        print(render_slo_summary(payload["slo"]))
        return 0
    print(
        "no request outcomes in report (run the cluster with "
        "--resilience or --chaos to track them)"
    )
    return 2


def cmd_validate(args: argparse.Namespace) -> int:
    """Validate the simulator: invariants, laws, and mutant detection."""
    import json
    from pathlib import Path

    from repro.validate import validate_model, validation_config

    include_mutants = None
    if args.mutants:
        include_mutants = True
    elif args.no_mutants:
        include_mutants = False
    reports = []
    for model in args.models:
        config = validation_config(
            model,
            dataset=args.dataset,
            num_requests=args.requests,
            num_test_requests=args.test_requests,
            seed=args.seed,
        )
        report = validate_model(
            config,
            tier=args.tier,
            jobs=args.jobs,
            include_mutants=include_mutants,
        )
        reports.append(report)
        status = "PASS" if report.passed else "FAIL"
        print(
            f"{model:14s} [{args.tier}] {status}: "
            f"{len(report.checks)} checks, {len(report.mutants)} mutants"
        )
        for check in report.checks:
            mark = "ok " if check.passed else "FAIL"
            line = f"  {mark} {check.name}"
            if check.detail:
                line += f" — {check.detail}"
            print(line)
        for mutant in report.mutants:
            mark = "ok " if mutant.flagged else "MISS"
            detectors = ", ".join(mutant.detectors) or "undetected"
            print(f"  {mark} mutant:{mutant.name} ({detectors})")
    if args.json:
        payload = json.dumps([r.to_dict() for r in reports], indent=2)
        Path(args.json).write_text(payload + "\n")
        print(f"wrote {args.json}")
    return 0 if all(r.passed for r in reports) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="fMoE reproduction: fine-grained expert offloading",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("models", help="print Table-1 model characteristics")
    p.set_defaults(func=cmd_models)

    p = sub.add_parser("compare", help="offline comparison (Fig. 9 style)")
    _add_world_args(p)
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument(
        "--chart", action="store_true", help="render terminal bar charts"
    )
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "overall", help="full Fig. 9 (model x dataset x system) table"
    )
    _add_world_args(p)
    p.add_argument(
        "--models",
        nargs="*",
        default=["mixtral-8x7b", "qwen1.5-moe", "phi-3.5-moe"],
    )
    p.add_argument(
        "--datasets", nargs="*", default=["lmsys-chat-1m", "sharegpt"]
    )
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument(
        "--summary",
        action="store_true",
        help="print fMoE's mean improvement over each baseline",
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_overall)

    p = sub.add_parser("online", help="online trace replay (Fig. 10 style)")
    _add_world_args(p)
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument("--trace-requests", type=int, default=32)
    p.add_argument("--rate", type=float, default=2.0)
    p.add_argument(
        "--trace-file",
        default=None,
        help="replay a CSV trace (timestamp,input_tokens,output_tokens) "
        "instead of generating one",
    )
    p.set_defaults(func=cmd_online)

    p = sub.add_parser("sweep", help="cache-budget sweep (Fig. 11 style)")
    _add_world_args(p)
    p.add_argument(
        "--limits", nargs="*", type=float, default=[6, 12, 24, 48, 96]
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("entropy", help="entropy analysis (Fig. 3b style)")
    _add_world_args(p)
    p.set_defaults(func=cmd_entropy)

    p = sub.add_parser("pearson", help="correlation analysis (Fig. 8 style)")
    _add_world_args(p)
    p.set_defaults(func=cmd_pearson)

    p = sub.add_parser(
        "grid", help="sweep (model, dataset, system, budget) grids to CSV"
    )
    _add_world_args(p)
    p.add_argument("--models", nargs="*", default=["mixtral-8x7b"])
    p.add_argument("--datasets", nargs="*", default=["lmsys-chat-1m"])
    p.add_argument(
        "--systems",
        nargs="*",
        default=["fmoe", "moe-infinity"],
    )
    p.add_argument("--budgets", nargs="*", type=float, default=None)
    p.add_argument("--output", default=None)
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_grid)

    p = sub.add_parser(
        "report", help="collate benchmarks/results into one markdown report"
    )
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument("--output", default="REPRODUCTION_REPORT.md")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "tune", help="profile candidate prefetch distances (§6.1 setup)"
    )
    _add_world_args(p)
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "faults", help="chaos matrix: systems under fault scenarios"
    )
    _add_world_args(p)
    p.add_argument("--systems", nargs="*", default=None)
    p.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="subset of scenario names (default: the full matrix)",
    )
    p.add_argument("--trace-requests", type=int, default=24)
    p.add_argument("--rate", type=float, default=2.0)
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_faults)

    p = sub.add_parser(
        "cluster",
        help="multi-replica cluster simulation with affinity routing",
    )
    _add_world_args(p)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument(
        "--router",
        default="round-robin",
        type=_prefix_choice(ROUTER_CHOICES),
        help="placement policy (unambiguous prefixes accepted)",
    )
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--shared-store",
        action="store_true",
        help="share one expert-map store across every fmoe replica",
    )
    p.add_argument(
        "--cold",
        action="store_true",
        help="skip warm-up so per-replica stores diverge (what "
        "semantic-affinity routing exploits)",
    )
    p.add_argument(
        "--autoscale",
        action="store_true",
        help="enable the queue-depth autoscaler (drain-before-kill)",
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="run the router x replica-count comparison grid instead "
        "of one cluster",
    )
    p.add_argument(
        "--replica-counts",
        nargs="*",
        type=int,
        default=[1, 2, 4],
        help="replica counts for --compare",
    )
    p.add_argument(
        "--chaos",
        default=None,
        help="subject the fleet to a named storm scenario "
        "(see `repro storm-lite`)",
    )
    p.add_argument(
        "--resilience",
        action="store_true",
        help="enable the cluster resilience layer (admission control, "
        "degradation ladder, retry budgets, circuit breakers)",
    )
    p.add_argument(
        "--profiles",
        nargs="*",
        default=None,
        help="per-replica hardware profile names (replica i uses "
        "profiles[i %% len]); e.g. fast-nvlink slow-pcie3",
    )
    p.add_argument(
        "--placement",
        default=None,
        choices=("uniform", "cost-aware"),
        help="pre-warm each replica's expert cache from a placement plan",
    )
    p.add_argument("--trace-requests", type=int, default=24)
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument(
        "--out", default=None, help="write the cluster report JSON here"
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_cluster)

    p = sub.add_parser(
        "storm-lite",
        help="resilience off vs. on under cluster-scope chaos",
    )
    _add_world_args(p)
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="subset of storm scenario names (default: the full storm)",
    )
    p.add_argument("--trace-requests", type=int, default=24)
    p.add_argument("--rate", type=float, default=1.5)
    p.add_argument(
        "--deadline-multiplier",
        type=float,
        default=3.0,
        help="SLO deadline as a multiple of the healthy p95 latency",
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_storm_lite)

    p = sub.add_parser(
        "storm",
        help="multi-tenant traffic storm: full-day census + "
        "priority-aware simulation window per scale",
    )
    _add_world_args(p)
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--scales",
        nargs="*",
        default=["10k", "100k", "1m"],
        help="offered-request scales (10k/100k/1m style, or plain counts)",
    )
    p.add_argument(
        "--sim-requests",
        type=int,
        default=256,
        help="arrivals from the start of each day replayed through the "
        "cluster (the census always streams the whole day)",
    )
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument(
        "--admission-rate",
        type=float,
        default=4.0,
        help="token-bucket admission rate shared by all scales; fixed "
        "so higher scales overload naturally",
    )
    p.add_argument("--admission-burst", type=int, default=8)
    p.add_argument(
        "--deadline-multiplier",
        type=float,
        default=3.0,
        help="SLO deadline as a multiple of the healthy reference p95",
    )
    p.add_argument(
        "--bench-out",
        default=None,
        help="write the storm as JSON (e.g. benchmarks/BENCH_storm.json)",
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_storm)

    p = sub.add_parser(
        "fleet",
        help="heterogeneous fleet sweep: SLO-per-dollar, "
        "uniform vs. cost-aware placement + routing",
    )
    _add_world_args(p)
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--shapes",
        nargs="*",
        default=None,
        help="subset of fleet shape names (default: all three)",
    )
    p.add_argument("--trace-requests", type=int, default=24)
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument(
        "--deadline-multiplier",
        type=float,
        default=1.0,
        help="SLO deadline as a multiple of the homogeneous reference's "
        "p95 latency",
    )
    p.add_argument(
        "--bench-out",
        default=None,
        help="write the sweep as JSON (e.g. benchmarks/BENCH_fleet.json)",
    )
    _add_validate_arg(p)
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "profile",
        help="profile a workload: hot-loop wall-clock breakdown "
        "(--quick/--bench-out), saved traces, or a warm store",
    )
    _add_world_args(p)
    p.add_argument("--traces-out", default=None)
    p.add_argument("--store-out", default=None)
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="serving passes to average for the hot-loop profile",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="single-repeat hot-loop profile (the CI smoke mode)",
    )
    p.add_argument(
        "--bench-out",
        default=None,
        help="where to write the profile payload "
        "(default benchmarks/BENCH_profile.json)",
    )
    p.add_argument(
        "--min-rps",
        type=float,
        default=0.0,
        help="fail (exit 1) below this simulated-requests/sec floor",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "engine-bench",
        help="benchmark the columnar engine core against the scalar "
        "reference interpreter (writes BENCH_engine.json)",
    )
    p.add_argument(
        "--models",
        nargs="*",
        default=None,
        help="subset of default benchmark models (default: both)",
    )
    p.add_argument(
        "--batch-sizes",
        nargs="*",
        type=int,
        default=None,
        help="batch sizes to sweep (default 1 8 32; --quick default 1)",
    )
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="serving passes per cell; best wall time wins",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="batch size 1 only (the CI smoke mode)",
    )
    p.add_argument(
        "--bench-out",
        default=None,
        help="where to write the payload "
        "(default benchmarks/BENCH_engine.json)",
    )
    p.add_argument(
        "--min-speedup",
        type=float,
        default=0.0,
        help="fail (exit 1) when the best columnar-vs-scalar speedup "
        "is below this floor",
    )
    p.set_defaults(func=cmd_engine_bench)

    p = sub.add_parser(
        "journeys",
        help="per-request journeys with critical-path attribution",
    )
    _add_world_args(p)
    p.add_argument("--replicas", type=int, default=2)
    p.add_argument(
        "--router",
        default="round-robin",
        type=_prefix_choice(ROUTER_CHOICES),
    )
    p.add_argument(
        "--system", default="fmoe", type=_prefix_choice(POLICY_CHOICES)
    )
    p.add_argument(
        "--chaos",
        default=None,
        help="subject the fleet to a named storm scenario",
    )
    p.add_argument(
        "--resilience",
        action="store_true",
        help="enable the cluster resilience layer",
    )
    p.add_argument("--trace-requests", type=int, default=24)
    p.add_argument("--rate", type=float, default=1.0)
    p.add_argument(
        "--sample-interval",
        type=float,
        default=1.0,
        help="fleet time-series cadence, virtual seconds",
    )
    p.add_argument("--top", type=int, default=5)
    p.add_argument("--slo-objective", type=float, default=0.9)
    p.add_argument("--slo-deadline", type=float, default=1.0)
    p.add_argument(
        "--out-dir",
        default=None,
        help="write journeys.jsonl / fleet.jsonl / fleet.csv / "
        "cluster_report.json here",
    )
    p.set_defaults(func=cmd_journeys)

    p = sub.add_parser(
        "slo",
        help="burn-rate alerting summary from a saved cluster report",
    )
    p.add_argument("report", help="cluster report JSON (repro cluster --out)")
    p.add_argument("--objective", type=float, default=0.9)
    p.add_argument("--deadline", type=float, default=1.0)
    p.add_argument(
        "--window-scale",
        type=float,
        default=1.0,
        help="scale factor applied to the default burn-rate windows",
    )
    p.set_defaults(func=cmd_slo)

    p = sub.add_parser(
        "trace",
        help="run one policy with full telemetry; write trace + metrics",
    )
    _add_world_args(p, fuzzy=True)
    p.add_argument(
        "--policy",
        default="fmoe",
        type=_prefix_choice(POLICY_CHOICES),
        help="system to trace (unambiguous prefixes accepted)",
    )
    p.add_argument(
        "--out-dir",
        required=True,
        help="directory for trace.json / metrics.prom / metrics.jsonl / "
        "events.jsonl / report.json",
    )
    p.add_argument(
        "--online",
        action="store_true",
        help="replay a generated arrival trace (queueing included) "
        "instead of serving the offline test set",
    )
    p.add_argument("--trace-requests", type=int, default=16)
    p.add_argument("--rate", type=float, default=2.0)
    p.add_argument(
        "--sample-interval",
        type=float,
        default=0.05,
        help="virtual seconds between metric time-series samples",
    )
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "inspect", help="summarize a recorded trace directory"
    )
    p.add_argument("path", help="trace directory (or trace.json file)")
    p.add_argument("--top", type=int, default=5)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser(
        "validate",
        help="validate the simulator: invariants, laws, mutant detection",
    )
    p.add_argument(
        "--tier",
        default="fast",
        choices=("fast", "full"),
        help="fast = monitored runs + cheap laws; full adds every "
        "system, faulted/continuous/cluster runs, and mutant detection",
    )
    p.add_argument(
        "--models",
        nargs="*",
        default=["mixtral-8x7b", "qwen1.5-moe"],
        help="models to validate (each gets its own world and report)",
    )
    p.add_argument("--dataset", default="lmsys-chat-1m", choices=DATASET_CHOICES)
    p.add_argument("--requests", type=int, default=14)
    p.add_argument("--test-requests", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--mutants",
        action="store_true",
        help="force mutant detection even on the fast tier",
    )
    p.add_argument(
        "--no-mutants",
        action="store_true",
        help="skip mutant detection even on the full tier",
    )
    p.add_argument(
        "--json", default=None, help="write the validation reports here"
    )
    _add_jobs_arg(p)
    p.set_defaults(func=cmd_validate)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
