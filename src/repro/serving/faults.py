"""Deterministic fault injection and graceful-degradation knobs.

A production MoE serving fleet lives with degraded PCIe links, straggler
GPUs, flaky host-to-device copies, and outright device loss — conditions
the paper's healthy six-GPU testbed (§6.1) never exercises.  This module
supplies the *schedule* side of that story:

- :class:`FaultConfig` — seeded knobs describing how often and how hard
  each fault class strikes.  An all-zero config is exactly the healthy
  testbed: every query short-circuits and perturbs nothing.
- :class:`FaultSchedule` — a pure function of ``(seed, virtual clock)``.
  Every query derives a fresh :func:`numpy.random.default_rng` stream from
  ``(seed, fault kind, device, epoch-or-attempt)``, so outcomes depend
  only on the question asked, never on query order.  Two simulations with
  the same seed therefore replay byte-for-byte identical fault timelines.
- :class:`RetryPolicy` — exponential-backoff parameters the transfer
  layer uses to survive transient copy failures.
- :class:`SLOConfig` — the degradation contract: per-request deadlines,
  the queue-delay budget beyond which requests are shed, and whether a
  failing on-demand load is served by substituting a resident expert.

Degradation windows are drawn per fixed-size *epoch* of virtual time: for
epoch ``e`` a seeded stream decides whether a window opens, where inside
the epoch it sits, and how severe it is.  Windows never span an epoch
boundary, which keeps every query O(1) with no mutable state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: Stream discriminators so each fault class draws independent randomness.
_KIND_PCIE = 1
_KIND_STRAGGLER = 2
_KIND_TRANSFER = 3


@dataclass(frozen=True)
class DeviceFailure:
    """A scripted whole-GPU loss: ``device`` dies at virtual ``time``."""

    time: float
    device: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("failure time must be >= 0")
        if self.device < 0:
            raise ConfigError("failure device must be >= 0")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient transfer failures.

    A copy is attempted up to ``max_attempts`` times; after the ``k``-th
    failure (0-based) the link waits ``backoff_seconds * multiplier**k``
    before retrying.  Exhausting every attempt raises
    :class:`~repro.errors.TransferError`.
    """

    max_attempts: int = 4
    backoff_seconds: float = 1e-3
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.backoff_seconds < 0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")

    def backoff_after(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based)."""
        return self.backoff_seconds * self.backoff_multiplier**attempt


@dataclass(frozen=True)
class SLOConfig:
    """Service-level objectives and the graceful-degradation contract."""

    ttft_deadline_seconds: float | None = None
    """Per-request TTFT deadline; violations are counted (and raise
    :class:`~repro.errors.DeadlineExceededError` under ``strict``)."""

    queue_delay_budget_seconds: float | None = None
    """Maximum queueing delay before a request is shed instead of served."""

    substitute_on_failure: bool = True
    """Serve a failing on-demand load with the nearest resident expert of
    the same layer (counted as a degraded token) instead of crashing."""

    strict: bool = False
    """Raise on deadline violations instead of merely counting them."""

    def __post_init__(self) -> None:
        if (
            self.ttft_deadline_seconds is not None
            and self.ttft_deadline_seconds <= 0
        ):
            raise ConfigError("ttft_deadline_seconds must be > 0")
        if (
            self.queue_delay_budget_seconds is not None
            and self.queue_delay_budget_seconds < 0
        ):
            raise ConfigError("queue_delay_budget_seconds must be >= 0")


@dataclass(frozen=True)
class FaultConfig:
    """Seeded knobs of one fault timeline; all-zero means healthy."""

    seed: int = 0
    epoch_seconds: float = 10.0
    """Virtual-time granularity at which degradation windows are drawn."""

    pcie_degradation_prob: float = 0.0
    """Per-epoch, per-link probability that a bandwidth-degradation window
    opens somewhere inside the epoch."""

    pcie_degradation_seconds: float = 2.0
    pcie_degradation_factor: float = 0.25
    """Bandwidth multiplier inside a degradation window (0 < f <= 1)."""

    transfer_failure_prob: float = 0.0
    """Per-attempt probability that a host-to-device copy fails."""

    straggler_prob: float = 0.0
    """Per-epoch probability of a fleet-wide straggler window (the slowest
    GPU gates each layer, so one straggler slows the whole iteration)."""

    straggler_seconds: float = 2.0
    straggler_factor: float = 2.0
    """Compute-time multiplier inside a straggler window (>= 1)."""

    device_failures: tuple[DeviceFailure, ...] = ()
    """Scripted whole-GPU losses, applied at iteration granularity."""

    def __post_init__(self) -> None:
        if self.epoch_seconds <= 0:
            raise ConfigError("epoch_seconds must be > 0")
        for name in (
            "pcie_degradation_prob",
            "transfer_failure_prob",
            "straggler_prob",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1]")
        if not 0.0 < self.pcie_degradation_factor <= 1.0:
            raise ConfigError("pcie_degradation_factor must be in (0, 1]")
        if self.straggler_factor < 1.0:
            raise ConfigError("straggler_factor must be >= 1")
        for name in ("pcie_degradation_seconds", "straggler_seconds"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be > 0")
            if value > self.epoch_seconds:
                raise ConfigError(f"{name} must be <= epoch_seconds")

    @property
    def is_zero(self) -> bool:
        """True when this config injects no fault of any kind."""
        return (
            self.pcie_degradation_prob == 0.0
            and self.transfer_failure_prob == 0.0
            and self.straggler_prob == 0.0
            and not self.device_failures
        )


class FaultSchedule:
    """Pure, seeded oracle answering "what is broken at time ``t``?".

    Stateless by construction: every query opens an independent RNG stream
    keyed by ``(seed, kind, device, epoch-or-attempt)``, so the answer is
    a function of the arguments alone.  The serving stack may interleave
    queries in any order without perturbing the timeline.
    """

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()

    @property
    def is_zero(self) -> bool:
        """True when the underlying config injects no faults."""
        return self.config.is_zero

    def _stream(self, *key: int) -> np.random.Generator:
        """Independent RNG stream for one ``(kind, ...)`` query."""
        return np.random.default_rng([self.config.seed, *key])

    def _window_multiplier(
        self,
        kind: int,
        device: int,
        time: float,
        prob: float,
        window_seconds: float,
        factor: float,
    ) -> float:
        """Factor if ``time`` falls inside this kind's epoch window."""
        if prob <= 0.0 or time < 0.0:
            return 1.0
        epoch_seconds = self.config.epoch_seconds
        epoch = int(time // epoch_seconds)
        stream = self._stream(kind, device, epoch)
        if stream.random() >= prob:
            return 1.0
        slack = epoch_seconds - window_seconds
        start = epoch * epoch_seconds + stream.random() * slack
        if start <= time < start + window_seconds:
            return factor
        return 1.0

    def bandwidth_multiplier(self, device: int, time: float) -> float:
        """PCIe bandwidth multiplier for ``device``'s link at ``time``."""
        return self._window_multiplier(
            _KIND_PCIE,
            device,
            time,
            self.config.pcie_degradation_prob,
            self.config.pcie_degradation_seconds,
            self.config.pcie_degradation_factor,
        )

    def compute_multiplier(self, time: float) -> float:
        """Fleet compute-time multiplier at ``time`` (1.0 when healthy)."""
        return self._window_multiplier(
            _KIND_STRAGGLER,
            0,
            time,
            self.config.straggler_prob,
            self.config.straggler_seconds,
            self.config.straggler_factor,
        )

    def transfer_fails(self, device: int, attempt_index: int) -> bool:
        """Whether ``device``'s ``attempt_index``-th copy attempt fails."""
        prob = self.config.transfer_failure_prob
        if prob <= 0.0:
            return False
        if prob >= 1.0:
            return True
        stream = self._stream(_KIND_TRANSFER, device, attempt_index)
        return bool(stream.random() < prob)

    def snapshot(self, num_devices: int, time: float) -> dict:
        """Fault state at virtual ``time``, for telemetry sampling.

        Returns ``{"compute_multiplier": float, "bandwidth_multipliers":
        {device: float, ...}}`` — the same pure queries the transfer and
        compute paths make, exposed so metrics can chart *when* a run was
        degraded without re-deriving the epoch math.
        """
        return {
            "compute_multiplier": self.compute_multiplier(time),
            "bandwidth_multipliers": {
                device: self.bandwidth_multiplier(device, time)
                for device in range(num_devices)
            },
        }

    def failure_script(self) -> tuple[DeviceFailure, ...]:
        """Scripted device failures in chronological order."""
        return tuple(
            sorted(
                self.config.device_failures,
                key=lambda f: (f.time, f.device),
            )
        )


# ---------------------------------------------------------------------- #
# Cluster-scope fault specs
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultSpec:
    """One scripted fault window pinned to a device/replica.

    Unlike the probabilistic epoch windows of :class:`FaultConfig`, a
    ``FaultSpec`` is fully scripted: the window covers exactly
    ``[start, start + duration)`` on ``device`` with the given
    ``severity``.  The cluster layer uses these for inter-replica link
    degradation (``device`` is the replica id and ``severity`` the added
    hand-off delay in seconds); validation rejects the silent-corruption
    cases — negative/zero durations and malformed bounds — at
    construction time.
    """

    device: int
    start: float
    duration: float
    severity: float
    kind: str = "link-degradation"

    def __post_init__(self) -> None:
        if self.device < 0:
            raise ConfigError("FaultSpec device must be >= 0")
        if self.start < 0:
            raise ConfigError("FaultSpec start must be >= 0")
        if self.duration <= 0:
            raise ConfigError(
                f"FaultSpec duration must be > 0 (got {self.duration})"
            )
        if self.severity < 0:
            raise ConfigError("FaultSpec severity must be >= 0")
        if not self.kind:
            raise ConfigError("FaultSpec kind must be non-empty")

    @property
    def end(self) -> float:
        """Exclusive end of the window."""
        return self.start + self.duration

    def covers(self, time: float) -> bool:
        """Whether ``time`` falls inside this window."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class ReplicaCrash:
    """A scripted whole-replica crash at virtual ``time``.

    ``restart_delay`` of ``None`` means the replica never comes back;
    otherwise a cold replacement rejoins the fleet ``restart_delay``
    seconds after the crash.
    """

    time: float
    replica: int
    restart_delay: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("crash time must be >= 0")
        if self.replica < 0:
            raise ConfigError("crash replica must be >= 0")
        if self.restart_delay is not None and self.restart_delay <= 0:
            raise ConfigError("restart_delay must be > 0 (or None)")


@dataclass(frozen=True)
class ZoneFailure:
    """A correlated outage: every replica in ``zone`` crashes at ``time``."""

    time: float
    zone: int
    restart_delay: float | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ConfigError("zone failure time must be >= 0")
        if self.zone < 0:
            raise ConfigError("zone index must be >= 0")
        if self.restart_delay is not None and self.restart_delay <= 0:
            raise ConfigError("restart_delay must be > 0 (or None)")


@dataclass(frozen=True)
class ClusterFaultConfig:
    """Scripted cluster-scope faults: crashes, zoned outages, link windows.

    ``zones`` maps zone index → the replica ids it contains (used by
    ``zone_failures`` for correlated crashes).  Validation enforces the
    invariants the driver's crash machinery relies on: at most one crash
    per replica (a crashed replica id never serves again — restarts spawn
    a fresh replica id), disjoint zones, and non-overlapping
    :class:`FaultSpec` windows per device.
    """

    crashes: tuple[ReplicaCrash, ...] = ()
    zones: tuple[tuple[int, ...], ...] = ()
    zone_failures: tuple[ZoneFailure, ...] = ()
    link_faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen_zone_members: set[int] = set()
        for zone in self.zones:
            for replica in zone:
                if replica < 0:
                    raise ConfigError("zone members must be >= 0")
                if replica in seen_zone_members:
                    raise ConfigError(
                        f"replica {replica} appears in more than one zone"
                    )
                seen_zone_members.add(replica)
        for failure in self.zone_failures:
            if failure.zone >= len(self.zones):
                raise ConfigError(
                    f"zone_failures references zone {failure.zone} but "
                    f"only {len(self.zones)} zone(s) are defined"
                )
        crashed: set[int] = set()
        for crash in self.expand_crashes():
            if crash.replica in crashed:
                raise ConfigError(
                    f"replica {crash.replica} is crashed more than once "
                    "(restarted replicas rejoin under a fresh id)"
                )
            crashed.add(crash.replica)
        by_device: dict[int, list[FaultSpec]] = {}
        for spec in self.link_faults:
            by_device.setdefault(spec.device, []).append(spec)
        for device, specs in by_device.items():
            specs.sort(key=lambda s: s.start)
            for earlier, later in zip(specs, specs[1:]):
                if later.start < earlier.end:
                    raise ConfigError(
                        f"overlapping fault windows on device {device}: "
                        f"[{earlier.start}, {earlier.end}) and "
                        f"[{later.start}, {later.end})"
                    )

    @property
    def is_zero(self) -> bool:
        """True when this config scripts no cluster-scope fault at all."""
        return not (self.crashes or self.zone_failures or self.link_faults)

    def expand_crashes(self) -> tuple[ReplicaCrash, ...]:
        """Every crash, zone failures expanded, in chronological order."""
        crashes = list(self.crashes)
        for failure in self.zone_failures:
            if failure.zone < len(self.zones):
                crashes.extend(
                    ReplicaCrash(
                        time=failure.time,
                        replica=replica,
                        restart_delay=failure.restart_delay,
                    )
                    for replica in self.zones[failure.zone]
                )
        return tuple(sorted(crashes, key=lambda c: (c.time, c.replica)))

    def link_delay(self, replica: int, time: float) -> float:
        """Hand-off delay for dispatching to ``replica`` at ``time``."""
        for spec in self.link_faults:
            if spec.device == replica and spec.covers(time):
                return spec.severity
        return 0.0


#: Shared default retry policy (one instance; the dataclass is frozen).
DEFAULT_RETRY_POLICY = RetryPolicy()
