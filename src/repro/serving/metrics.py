"""Serving metrics: per-request latencies and run-level aggregation.

Follows the paper's methodology (§6.1): Time-To-First-Token for the prefill
stage, Time-Per-Output-Token for the decode stage, expert hit rate, and a
per-operation latency breakdown for the overhead study (Fig. 15).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


class LatencyBreakdown:
    """Accumulates seconds per named operation.

    ``sync`` components sit on the critical path (compute, on-demand
    loading, synchronous prediction); ``async`` components run off the
    critical path (map matching, prefetch transfers, map updates) and are
    reported for the Fig. 15 breakdown without contributing to latency.
    """

    def __init__(self) -> None:
        self.sync: dict[str, float] = defaultdict(float)
        self.asynchronous: dict[str, float] = defaultdict(float)

    def add_sync(self, name: str, seconds: float) -> None:
        """Accumulate critical-path seconds under ``name``."""
        self.sync[name] += seconds

    def add_async(self, name: str, seconds: float) -> None:
        """Accumulate off-critical-path seconds under ``name``."""
        self.asynchronous[name] += seconds

    def merge(self, other: "LatencyBreakdown") -> None:
        """Fold another breakdown's components into this one."""
        for name, s in other.sync.items():
            self.sync[name] += s
        for name, s in other.asynchronous.items():
            self.asynchronous[name] += s

    def total_sync(self) -> float:
        """Sum of all critical-path components."""
        return sum(self.sync.values())

    def as_dict(self) -> dict[str, float]:
        """Flat ``sync:*`` / ``async:*`` mapping for reporting."""
        out = {f"sync:{k}": v for k, v in sorted(self.sync.items())}
        out.update(
            {f"async:{k}": v for k, v in sorted(self.asynchronous.items())}
        )
        return out


@dataclass
class RequestMetrics:
    """Latency record of one served request."""

    request_id: int
    arrival_time: float
    start_time: float
    ttft: float
    decode_latencies: list[float] = field(default_factory=list)
    finish_time: float = 0.0
    hits: float = 0.0
    misses: float = 0.0
    """Expert hits/misses attributed to this request.  Exact for batch
    size 1; under batching, an iteration's counts are split evenly across
    the active requests (the engine resolves residency per batch union)."""

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    @property
    def tpot(self) -> float:
        """Mean decode-iteration latency (0 for single-token outputs)."""
        if not self.decode_latencies:
            return 0.0
        return float(np.mean(self.decode_latencies))

    @property
    def e2e_latency(self) -> float:
        return self.finish_time - self.arrival_time


@dataclass
class ServingReport:
    """Aggregated outcome of one engine run."""

    requests: list[RequestMetrics] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    prefetch_stall_misses: int = 0
    breakdown: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    iterations: int = 0
    policy_name: str = ""
    peak_cache_bytes: int = 0
    peak_kv_bytes: int = 0
    layer_hits: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    layer_misses: dict[int, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    retries: int = 0
    """Transfer attempts repeated after a transient copy failure."""
    failovers: int = 0
    """Lost residents successfully re-placed after a device failure."""
    device_failures: int = 0
    shed_requests: int = 0
    """Requests dropped because their queue delay exceeded the SLO budget."""
    shed_request_ids: list[int] = field(default_factory=list)
    degraded_tokens: int = 0
    """Expert activations served by a substituted resident expert after a
    failing on-demand load (graceful degradation)."""
    recovery_seconds: float = 0.0
    """Virtual seconds from each device failure until its surviving
    re-placement copies landed, summed over failures."""
    slo_violations: int = 0
    events_dropped: int = 0
    """Events the attached recorder/sink discarded (0 when none attached
    or nothing was lost); a non-zero value means the event stream is
    incomplete and derived analyses may undercount."""

    @property
    def activations(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.activations == 0:
            return 0.0
        return self.hits / self.activations

    def mean_ttft(self) -> float:
        """Mean Time-To-First-Token across served requests."""
        if not self.requests:
            return 0.0
        return float(np.mean([r.ttft for r in self.requests]))

    def mean_tpot(self) -> float:
        """Mean Time-Per-Output-Token across requests that decoded."""
        tpots = [r.tpot for r in self.requests if r.decode_latencies]
        if not tpots:
            return 0.0
        return float(np.mean(tpots))

    def e2e_latencies(self) -> np.ndarray:
        """End-to-end latency per request, in report order."""
        return np.array([r.e2e_latency for r in self.requests])

    def latency_cdf(self, points: int = 100) -> tuple[np.ndarray, np.ndarray]:
        """(latency, cumulative fraction) pairs for CDF plots (Fig. 10)."""
        lat = np.sort(self.e2e_latencies())
        if lat.size == 0:
            return np.array([]), np.array([])
        fractions = np.arange(1, lat.size + 1) / lat.size
        if lat.size <= points:
            return lat, fractions
        idx = np.linspace(0, lat.size - 1, points).astype(int)
        return lat[idx], fractions[idx]

    def percentile_latency(self, q: float) -> float:
        """The ``q``-th percentile of end-to-end request latency."""
        lat = self.e2e_latencies()
        if lat.size == 0:
            return 0.0
        return float(np.percentile(lat, q))

    def layer_hit_rates(self, num_layers: int) -> np.ndarray:
        """Per-layer hit rate, shape ``(num_layers,)``.

        Layers with no recorded activations return NaN; callers typically
        plot or assert over the populated range.
        """
        if num_layers < 1:
            raise ConfigError("num_layers must be >= 1")
        out = np.full(num_layers, np.nan)
        for layer in range(num_layers):
            hits = self.layer_hits.get(layer, 0)
            misses = self.layer_misses.get(layer, 0)
            if hits + misses:
                out[layer] = hits / (hits + misses)
        return out

    def fault_counters(self) -> dict[str, float]:
        """The robustness counters as one flat mapping (for reporting)."""
        return {
            "retries": self.retries,
            "failovers": self.failovers,
            "device_failures": self.device_failures,
            "shed_requests": self.shed_requests,
            "degraded_tokens": self.degraded_tokens,
            "recovery_seconds": self.recovery_seconds,
            "slo_violations": self.slo_violations,
        }

    def absorb(
        self, other: "ServingReport", distinct_sinks: bool = False
    ) -> None:
        """Fold another run's requests and counters into this report.

        Used by dispatch loops that serve one request at a time and merge
        the partial reports.  Counters add; peak byte gauges take the max
        (they are engine-level high-water marks, not additive).

        ``events_dropped`` depends on sink topology: partials from one
        engine share one sink, so each carries the cumulative count and
        the max is correct (the default).  Reports produced by separate
        engines with their own sinks — e.g. parallel-runner workers —
        must pass ``distinct_sinks=True`` so per-sink drop counts add up
        instead of being silently collapsed.
        """
        self.requests.extend(other.requests)
        self.hits += other.hits
        self.misses += other.misses
        self.prefetch_stall_misses += other.prefetch_stall_misses
        self.iterations += other.iterations
        self.breakdown.merge(other.breakdown)
        self.peak_cache_bytes = max(
            self.peak_cache_bytes, other.peak_cache_bytes
        )
        self.peak_kv_bytes = max(self.peak_kv_bytes, other.peak_kv_bytes)
        if distinct_sinks:
            self.events_dropped += other.events_dropped
        else:
            self.events_dropped = max(
                self.events_dropped, other.events_dropped
            )
        for layer, count in other.layer_hits.items():
            self.layer_hits[layer] += count
        for layer, count in other.layer_misses.items():
            self.layer_misses[layer] += count
        self.retries += other.retries
        self.failovers += other.failovers
        self.device_failures += other.device_failures
        self.shed_requests += other.shed_requests
        self.shed_request_ids.extend(other.shed_request_ids)
        self.degraded_tokens += other.degraded_tokens
        self.recovery_seconds += other.recovery_seconds
        self.slo_violations += other.slo_violations

    def mean_iteration_breakdown(self) -> dict[str, float]:
        """Per-iteration mean seconds for each breakdown component."""
        if self.iterations == 0:
            return {}
        return {
            name: seconds / self.iterations
            for name, seconds in self.breakdown.as_dict().items()
        }
