"""Virtual-time MoE serving substrate.

Replaces the paper's six-GPU testbed with an analytic discrete-event model:
per-layer compute latencies derived from published parameter counts and GPU
memory bandwidth, expert host-to-device copies charged against per-GPU PCIe
channels, and a serving engine that walks each iteration layer by layer,
consulting an offloading policy exactly where the paper's runtime hooks do.
"""

from repro.serving.hardware import HardwareConfig
from repro.serving.faults import (
    DeviceFailure,
    FaultConfig,
    FaultSchedule,
    RetryPolicy,
    SLOConfig,
)
from repro.serving.memory import TransferChannel, TransferTask
from repro.serving.pool import ExpertPool
from repro.serving.request import Request
from repro.serving.metrics import RequestMetrics, ServingReport
from repro.serving.engine import ServingEngine, IterationContext, PolicyAction
from repro.serving.kvcache import KVCacheTracker, expert_budget_after_kv
from repro.serving.scheduler import FCFSScheduler, SJFScheduler, run_scheduled
from repro.serving.export import report_to_dict, report_to_json, reports_to_csv

__all__ = [
    "HardwareConfig",
    "DeviceFailure",
    "FaultConfig",
    "FaultSchedule",
    "RetryPolicy",
    "SLOConfig",
    "TransferChannel",
    "TransferTask",
    "ExpertPool",
    "Request",
    "RequestMetrics",
    "ServingReport",
    "ServingEngine",
    "IterationContext",
    "PolicyAction",
    "KVCacheTracker",
    "expert_budget_after_kv",
    "FCFSScheduler",
    "SJFScheduler",
    "run_scheduled",
    "report_to_dict",
    "report_to_json",
    "reports_to_csv",
]
