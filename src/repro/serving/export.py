"""Serialization of serving reports to JSON and CSV.

Serving systems feed dashboards and offline analysis; these exporters turn
:class:`~repro.serving.metrics.ServingReport` objects into plain payloads
(JSON for structured consumers, CSV rows for spreadsheets) without any
external dependencies.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from repro.serving.metrics import ServingReport


def report_to_dict(report: ServingReport) -> dict:
    """A JSON-serializable summary of one run."""
    return {
        "policy": report.policy_name,
        "requests": len(report.requests),
        "iterations": report.iterations,
        "hits": report.hits,
        "misses": report.misses,
        "prefetch_stall_misses": report.prefetch_stall_misses,
        "hit_rate": report.hit_rate,
        "mean_ttft_seconds": report.mean_ttft(),
        "mean_tpot_seconds": report.mean_tpot(),
        "p95_e2e_seconds": report.percentile_latency(95),
        "peak_cache_bytes": report.peak_cache_bytes,
        "peak_kv_bytes": report.peak_kv_bytes,
        "events_dropped": report.events_dropped,
        "faults": report.fault_counters(),
        "breakdown": report.breakdown.as_dict(),
        "per_request": [
            {
                "request_id": r.request_id,
                "arrival_time": r.arrival_time,
                "start_time": r.start_time,
                "ttft_seconds": r.ttft,
                "tpot_seconds": r.tpot,
                "e2e_seconds": r.e2e_latency,
                "decode_iterations": len(r.decode_latencies),
            }
            for r in report.requests
        ],
    }


def report_to_json(report: ServingReport, path: str | Path | None = None) -> str:
    """Serialize a report to JSON; optionally also write it to ``path``."""
    text = json.dumps(report_to_dict(report), indent=2, sort_keys=True)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


REQUEST_CSV_FIELDS = (
    "policy",
    "request_id",
    "arrival_time",
    "start_time",
    "ttft_seconds",
    "tpot_seconds",
    "e2e_seconds",
    "decode_iterations",
)


def reports_to_csv(
    reports: Sequence[ServingReport], path: str | Path | None = None
) -> str:
    """One CSV row per served request across any number of reports."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=REQUEST_CSV_FIELDS)
    writer.writeheader()
    for report in reports:
        for r in report.requests:
            writer.writerow(
                {
                    "policy": report.policy_name,
                    "request_id": r.request_id,
                    "arrival_time": r.arrival_time,
                    "start_time": r.start_time,
                    "ttft_seconds": r.ttft,
                    "tpot_seconds": r.tpot,
                    "e2e_seconds": r.e2e_latency,
                    "decode_iterations": len(r.decode_latencies),
                }
            )
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text


#: Run-level summary columns: core latency/hit metrics, the fault
#: counters, and the telemetry summary fields, one row per report.
SUMMARY_CSV_FIELDS = (
    "policy",
    "requests",
    "iterations",
    "hits",
    "misses",
    "prefetch_stall_misses",
    "hit_rate",
    "mean_ttft_seconds",
    "mean_tpot_seconds",
    "p95_e2e_seconds",
    "peak_cache_bytes",
    "peak_kv_bytes",
    "events_dropped",
    "retries",
    "failovers",
    "device_failures",
    "shed_requests",
    "degraded_tokens",
    "recovery_seconds",
    "slo_violations",
)


def summary_row(payload: dict) -> dict:
    """Flatten one :func:`report_to_dict` payload into a summary CSV row.

    The ``faults`` sub-mapping is hoisted to top level; per-request and
    breakdown detail is dropped (it has its own exporters).
    """
    flat = {**payload, **payload.get("faults", {})}
    return {field: flat.get(field, 0) for field in SUMMARY_CSV_FIELDS}


def reports_summary_csv(
    reports: Sequence[ServingReport], path: str | Path | None = None
) -> str:
    """One CSV row per report: latency, hit, fault, telemetry summaries."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=SUMMARY_CSV_FIELDS)
    writer.writeheader()
    for report in reports:
        writer.writerow(summary_row(report_to_dict(report)))
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text)
    return text
