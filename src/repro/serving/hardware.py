"""Hardware model of the paper's testbed (§6.1).

Six NVIDIA RTX 3090s (24 GB each, ~936 GB/s memory bandwidth, ~35 effective
TFLOPS fp16 with tensor cores at realistic utilization), connected to host
memory over PCIe 4.0 x16 at 32 GB/s.  Latency terms:

- *decode* is memory-bound: per-layer latency = bytes of weights read /
  GPU memory bandwidth (non-expert weights once per layer, plus one read
  per activated expert);
- *prefill* is compute-bound: per-layer latency = 2 · params · tokens /
  effective FLOPS;
- *expert loading* = expert weight bytes / PCIe bandwidth, serialized per
  GPU link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.types import GiB


@dataclass(frozen=True)
class HardwareConfig:
    """Testbed description used to derive all latency constants."""

    num_gpus: int = 6
    gpu_memory_bytes: int = 24 * GiB
    pcie_bandwidth_bps: float = 32e9
    gpu_memory_bandwidth_bps: float = 936e9
    gpu_flops: float = 35e12
    cpu_memory_bytes: int = 480 * GiB
    framework_layer_overhead_seconds: float = 5e-3
    """Per-layer runtime overhead of the serving stack.

    The paper notes (§6.2) that all systems inherit the HuggingFace +
    MoE-Infinity codebase's latency: its measured iteration latencies
    (Fig. 15, ~600 ms for Mixtral over 32 layers) imply a per-layer cost far
    above the raw-hardware roofline.  This constant reproduces that floor;
    it also recreates the regime the paper's prefetch distance analysis
    assumes, where one expert copy (~11 ms) can be hidden behind roughly
    three layers of compute."""

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError("num_gpus must be >= 1")
        for field_name in (
            "pcie_bandwidth_bps",
            "gpu_memory_bandwidth_bps",
            "gpu_flops",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")
        for field_name in ("gpu_memory_bytes", "cpu_memory_bytes"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")
        if self.framework_layer_overhead_seconds < 0:
            raise ConfigError(
                "framework_layer_overhead_seconds must be >= 0"
            )

    # ------------------------------------------------------------------ #
    # Transfers
    # ------------------------------------------------------------------ #

    def expert_load_seconds(self, model: MoEModelConfig) -> float:
        """Host-to-device copy time of one expert's weights."""
        return model.expert_bytes / self.pcie_bandwidth_bps

    # ------------------------------------------------------------------ #
    # Decode (memory-bound)
    # ------------------------------------------------------------------ #

    def decode_layer_base_seconds(self, model: MoEModelConfig) -> float:
        """Attention + norms + always-on experts for one layer, one token."""
        per_layer_bytes = model.non_expert_bytes / model.num_layers
        return (
            per_layer_bytes / self.gpu_memory_bandwidth_bps
            + self.framework_layer_overhead_seconds
        )

    def decode_expert_seconds(self, model: MoEModelConfig) -> float:
        """One expert's weight read serving a decode layer."""
        return model.expert_bytes / self.gpu_memory_bandwidth_bps

    def decode_iteration_floor_seconds(self, model: MoEModelConfig) -> float:
        """Ideal (all-resident) decode iteration latency."""
        return model.num_layers * (
            self.decode_layer_base_seconds(model)
            + model.top_k * self.decode_expert_seconds(model)
        )

    # ------------------------------------------------------------------ #
    # Prefill (compute-bound)
    # ------------------------------------------------------------------ #

    def prefill_layer_base_seconds(
        self, model: MoEModelConfig, num_tokens: int
    ) -> float:
        """Attention/shared compute for one layer over ``num_tokens``."""
        per_layer_params = model.non_expert_params / model.num_layers
        flops = 2.0 * per_layer_params * num_tokens
        return flops / self.gpu_flops + self.framework_layer_overhead_seconds

    def prefill_expert_layer_seconds(
        self, model: MoEModelConfig, num_tokens: int
    ) -> float:
        """Total expert compute for one prefill layer (all routed tokens)."""
        flops = 2.0 * model.expert_params * model.top_k * num_tokens
        return flops / self.gpu_flops

    # ------------------------------------------------------------------ #
    # Memory envelopes
    # ------------------------------------------------------------------ #

    def total_gpu_memory_bytes(self) -> int:
        """Aggregate GPU memory across the fleet."""
        return self.num_gpus * self.gpu_memory_bytes

    def max_expert_cache_bytes(self, model: MoEModelConfig) -> int:
        """GPU memory left for experts after resident non-expert weights."""
        return max(self.total_gpu_memory_bytes() - model.non_expert_bytes, 0)


DEFAULT_HARDWARE = HardwareConfig()
