"""The discrete-event serving engine.

Walks every inference iteration layer by layer on a virtual clock, charging:

- per-layer base compute (attention, norms, always-on experts),
- per-expert compute for each activated expert,
- blocking on-demand loads for expert misses,
- stalls when an activated expert's prefetch is still in flight,
- synchronous policy overheads (prediction, context collection).

Policies receive hooks at exactly the points the paper's runtime exposes:
once before each iteration (semantic context is available), once after each
layer's gate output (the trajectory grows by one layer), and once after the
iteration completes (map update).  Policies never see future gate outputs;
baselines that model hidden-state speculation go through the bounded-noise
:meth:`IterationContext.speculate` oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.errors import (
    ConfigError,
    DeadlineExceededError,
    DeviceLostError,
    TransferError,
)
from repro.moe.model import IterationRouting, MoEModel, RequestSession
from repro.serving.faults import DeviceFailure, FaultSchedule, SLOConfig
from repro.serving.hardware import DEFAULT_HARDWARE, HardwareConfig
from repro.serving.events import Event, EventKind, EventSink
from repro.serving.kvcache import KVCacheTracker
from repro.serving.metrics import LatencyBreakdown, RequestMetrics, ServingReport
from repro.serving.pool import ExpertPool
from repro.serving.request import Request
from repro.types import ExpertId, Stage


@dataclass
class PrefetchInstruction:
    """One policy-requested expert prefetch with its issue priority."""

    expert: ExpertId
    priority: float = 0.0


@dataclass
class PolicyAction:
    """What a policy hook asks the engine to do.

    ``sync_overheads`` name → seconds added to the critical path (used by
    synchronous baselines and for fMoE's context collection).
    ``async_overheads`` name → seconds that delay when the prefetch
    instructions reach the PCIe queue but do not block compute (fMoE's
    asynchronous matcher).
    """

    prefetch: list[PrefetchInstruction] = field(default_factory=list)
    sync_overheads: dict[str, float] = field(default_factory=dict)
    async_overheads: dict[str, float] = field(default_factory=dict)
    block_until_arrival: bool = False
    """Synchronous-prefetch semantics: compute stalls until every prefetch
    issued by this action has landed (Mixtral-Offloading, MoE-Infinity)."""

    prefetch_block: tuple[np.ndarray, np.ndarray] | None = None
    """Columnar alternative to ``prefetch``: a pair of equal-length arrays
    (flat expert ids ``layer * J + j`` as int64, priorities as float64).
    The engine issues the block in stable descending-priority order —
    byte-identical to the equivalent instruction list, without one
    ``PrefetchInstruction`` object per expert.  When both forms are set,
    the block is materialized and appended to ``prefetch`` so a single
    sort orders everything."""


class IterationContext:
    """Progressively revealed view of the current iteration for policies."""

    def __init__(
        self,
        stage: Stage,
        iteration_index: int,
        requests: Sequence[Request],
        sessions: Sequence[RequestSession],
        routings: Sequence[IterationRouting],
        num_layers: int,
        num_experts: int,
    ) -> None:
        self.stage = stage
        self.iteration_index = iteration_index
        self.requests = list(requests)
        self._sessions = list(sessions)
        self._routings = list(routings)
        self.batch_size = len(requests)
        self.embeddings = np.stack([s.embedding for s in sessions])
        self.num_tokens = [r.num_tokens for r in routings]
        self.observed = np.zeros((self.batch_size, num_layers, num_experts))
        self.observed_layers = 0

    def reveal_layer(self, layer: int) -> None:
        """Engine-only: copy layer ``layer`` gate outputs into view."""
        for b, routing in enumerate(self._routings):
            self.observed[b, layer] = routing.distributions[layer]
        self.observed_layers = layer + 1

    def activated_at(self, layer: int) -> list[np.ndarray]:
        """Per-request activated expert indices for a revealed layer."""
        if layer >= self.observed_layers:
            raise ConfigError(
                f"layer {layer} not yet revealed ({self.observed_layers})"
            )
        return [r.activated[layer] for r in self._routings]

    def oracle_activated_at(self, layer: int) -> list[np.ndarray]:
        """Ground-truth activations for any layer, revealed or not.

        For hindsight upper-bound policies only; real policies must use
        :meth:`activated_at`, which enforces progressive reveal.
        """
        return [r.activated[layer] for r in self._routings]

    def speculate(
        self,
        request_pos: int,
        target_layer: int,
        distance: int,
        noise_multiplier: float = 1.0,
    ) -> np.ndarray:
        """Noisy hidden-state speculation oracle (baselines only)."""
        session = self._sessions[request_pos]
        routing = self._routings[request_pos]
        return session.speculate(
            routing, target_layer, distance, noise_multiplier=noise_multiplier
        )


class Policy(Protocol):
    """Structural interface every offloading policy implements."""

    name: str

    def attach(self, engine: "ServingEngine") -> None:
        """Bind the policy to its engine (config, pool access)."""
        ...

    def on_request_start(
        self, request: Request, embedding: np.ndarray
    ) -> None:
        """Observe a new request and its semantic embedding."""
        ...

    def on_iteration_start(self, ctx: IterationContext) -> PolicyAction:
        """Act before layer 0 (the semantic-search point)."""
        ...

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        """Act on a newly revealed layer (the trajectory-search point)."""
        ...

    def on_expert_served(
        self, expert: ExpertId, hit: bool, now: float
    ) -> None:
        """Observe one activated expert's hit/miss outcome."""
        ...

    def on_iteration_end(self, ctx: IterationContext) -> PolicyAction:
        """Act after the last layer (the map-update point)."""
        ...

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Score an eviction candidate; higher is evicted first."""
        ...


@dataclass
class _ActiveRequest:
    request: Request
    session: RequestSession
    metrics: RequestMetrics
    iterations_done: int = 0

    @property
    def finished(self) -> bool:
        return self.iterations_done >= self.request.total_iterations


class ServingEngine:
    """Serves batches of requests under one offloading policy."""

    def __init__(
        self,
        model: MoEModel,
        policy: Policy,
        cache_budget_bytes: int,
        hardware: HardwareConfig = DEFAULT_HARDWARE,
        placement: str = "round-robin",
        faults: FaultSchedule | None = None,
        slo: SLOConfig | None = None,
        columnar: bool = True,
    ) -> None:
        self.model = model
        self.config = model.config
        self.policy = policy
        self.hardware = hardware
        self.columnar = columnar
        """Route the hot loop through the batched (array-at-a-time) code
        paths.  Results are byte-identical to the scalar paths; ``False``
        keeps the legacy per-expert loops (the benchmark baseline)."""
        # An all-zero schedule must not perturb the healthy path, so it is
        # dropped entirely (no extra arithmetic anywhere).
        self.faults = (
            faults if faults is not None and not faults.is_zero else None
        )
        self.slo = slo or SLOConfig()
        self._failure_script: tuple[DeviceFailure, ...] = (
            self.faults.failure_script() if self.faults is not None else ()
        )
        self._failures_applied = 0
        self.pool = ExpertPool(
            model.config,
            hardware,
            cache_budget_bytes,
            placement=placement,
            faults=self.faults,
            columnar=columnar,
        )
        self.pool.set_eviction_oracle(policy)
        self.pool.evict_listener = lambda expert: self._emit(
            EventKind.EVICTION, expert=expert
        )
        self.kv_tracker = KVCacheTracker(model.config)
        # Degradation-ladder levers (cluster resilience): the dispatcher
        # may flip these around a serve to shed optional work under
        # overload.  Defaults preserve full service exactly.
        self.prefetch_enabled = True
        """When False, policy prefetch instructions are discarded (ladder
        rung 1: PCIe bandwidth is reserved for on-demand loads)."""

        self.force_substitution = False
        """When True, expert misses are served by nearest-resident
        substitution instead of blocking on-demand loads (ladder rung 2
        — the SMoE-style fallback applied as deliberate load shedding)."""

        self._recorder: EventSink | None = None
        self._telemetry = None
        self._iteration_counter = 0
        policy.attach(self)
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    @property
    def telemetry(self):
        """The attached :class:`~repro.obs.telemetry.Telemetry`, if any."""
        return self._telemetry

    def set_recorder(self, recorder: EventSink | None) -> None:
        """Attach (or detach) a structured event sink."""
        self._recorder = recorder

    def set_telemetry(self, telemetry) -> None:
        """Attach (or detach) a :class:`~repro.obs.telemetry.Telemetry`.

        Wires the pool's transfer listeners and the KV tracker's change
        hook; telemetry observes the run through the virtual clock and
        never advances it, so attaching one leaves every latency result
        bit-identical.
        """
        self._telemetry = telemetry
        if telemetry is not None:
            self.pool.transfer_listener = telemetry.note_transfer
            self.pool.cancel_listener = telemetry.drop_transfer
            self.kv_tracker.on_change = telemetry.set_kv_bytes
        else:
            self.pool.transfer_listener = None
            self.pool.cancel_listener = None
            self.kv_tracker.on_change = None

    def _emit(
        self,
        kind: EventKind,
        layer: int | None = None,
        expert: ExpertId | None = None,
        detail: float | None = None,
    ) -> None:
        if self._recorder is None and self._telemetry is None:
            return
        event = Event(
            kind=kind,
            time=self._now,
            iteration=self._iteration_counter,
            layer=layer,
            expert=expert,
            detail=detail,
        )
        if self._recorder is not None:
            self._recorder.emit(event)
        if self._telemetry is not None:
            self._telemetry.emit(event)

    # ------------------------------------------------------------------ #
    # Top-level runs
    # ------------------------------------------------------------------ #

    def run(
        self,
        requests: Sequence[Request],
        batch_size: int = 1,
        respect_arrivals: bool = False,
    ) -> ServingReport:
        """Serve ``requests`` in order, batching greedily.

        With ``respect_arrivals`` the engine idles until every request of
        the next batch has arrived (online-trace replay, Fig. 10);
        otherwise requests are served back to back (offline, Fig. 9).
        """
        if batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        report = ServingReport(policy_name=self.policy.name)
        retries_before = self.pool.total_retries()
        for start in range(0, len(requests), batch_size):
            self.serve_step(
                requests[start : start + batch_size], report, respect_arrivals
            )
        return self.finalize_report(report, retries_before)

    def serve_step(
        self,
        batch: Sequence[Request],
        report: ServingReport,
        respect_arrivals: bool = False,
    ) -> list[Request]:
        """Serve one batch incrementally, accumulating into ``report``.

        The incremental half of :meth:`run`: external dispatch loops (the
        cluster driver, schedulers) feed batches one at a time on the same
        virtual clock and finish with :meth:`finalize_report`, producing a
        report byte-identical to a single :meth:`run` call over the same
        sequence.  Returns the requests actually served (overdue requests
        are shed under ``respect_arrivals`` and an SLO queue budget).
        """
        batch = list(batch)
        if respect_arrivals:
            ready_at = max(r.arrival_time for r in batch)
            self._now = max(self._now, ready_at)
            batch = self.shed_overdue(batch, report)
            if not batch:
                return []
        self._serve_batch(batch, report, respect_arrivals)
        return batch

    def finalize_report(
        self, report: ServingReport, retries_before: int = 0
    ) -> ServingReport:
        """Stamp run-level counters onto an incrementally built report.

        ``retries_before`` is the pool's retry count captured before the
        first :meth:`serve_step` (0 for a fresh engine).
        """
        report.retries += self.pool.total_retries() - retries_before
        report.peak_cache_bytes = self.pool.used_bytes()
        report.peak_kv_bytes = self.kv_tracker.peak_bytes
        report.events_dropped = self._events_dropped()
        return report

    def run_continuous(
        self,
        requests: Sequence[Request],
        max_batch_size: int = 4,
    ) -> ServingReport:
        """Continuous batching: requests join at iteration boundaries.

        Instead of forming static batches, arrived requests are admitted
        into the running batch (up to ``max_batch_size``) between
        iterations; a newly admitted request's prefill shares the iteration
        with the others' decode steps.  Requests leave as they finish.
        Latencies are measured from trace arrival (queueing included).
        """
        if max_batch_size < 1:
            raise ConfigError("max_batch_size must be >= 1")
        report = ServingReport(policy_name=self.policy.name)
        retries_before = self.pool.total_retries()
        backlog = sorted(requests, key=lambda r: r.arrival_time)
        index = 0
        active: list[_ActiveRequest] = []
        iteration = 0
        while index < len(backlog) or active:
            if not active and backlog[index].arrival_time > self._now:
                self._now = backlog[index].arrival_time
            while (
                index < len(backlog)
                and backlog[index].arrival_time <= self._now
                and len(active) < max_batch_size
            ):
                request = backlog[index]
                index += 1
                if not self.shed_overdue([request], report):
                    continue
                session = self.model.start_session(
                    request.cluster,
                    request.input_tokens,
                    request.output_tokens,
                    seed=request.seed,
                )
                metrics = RequestMetrics(
                    request_id=request.request_id,
                    arrival_time=request.arrival_time,
                    start_time=self._now,
                    ttft=0.0,
                )
                self.policy.on_request_start(request, session.embedding)
                active.append(_ActiveRequest(request, session, metrics))

            start_time = self._now
            hits_before, misses_before = report.hits, report.misses
            self._run_iteration(active, iteration, report)
            self._attribute_counts(
                active, report, hits_before, misses_before
            )
            elapsed = self._now - start_time
            for entry in list(active):
                entry.iterations_done += 1
                if entry.iterations_done == 1:
                    entry.metrics.ttft = (
                        self._now - entry.metrics.arrival_time
                    )
                    self._observe_ttft(entry.metrics.ttft)
                    self._check_ttft(entry, report)
                    self.kv_tracker.admit(
                        entry.request.request_id, entry.request.input_tokens
                    )
                else:
                    entry.metrics.decode_latencies.append(elapsed)
                    self._observe_tpot(elapsed)
                    self.kv_tracker.append_token(entry.request.request_id)
                if entry.finished:
                    entry.metrics.finish_time = self._now
                    self.kv_tracker.release(entry.request.request_id)
                    self.policy.on_request_end(entry.request)
                    report.requests.append(entry.metrics)
                    self._trace_request(entry)
                    active.remove(entry)
            iteration += 1
            report.iterations += 1
        return self.finalize_report(report, retries_before)

    def _events_dropped(self) -> int:
        """Events the attached sink(s) discarded so far (max across them)."""
        dropped = 0
        if self._recorder is not None:
            dropped = max(dropped, getattr(self._recorder, "dropped", 0))
        if self._telemetry is not None:
            dropped = max(
                dropped, getattr(self._telemetry.sink, "dropped", 0)
            )
        return dropped

    # ------------------------------------------------------------------ #
    # Telemetry helpers (no-ops when no telemetry is attached)
    # ------------------------------------------------------------------ #

    def _observe_ttft(self, seconds: float) -> None:
        if self._telemetry is not None:
            self._telemetry.ttft_seconds.observe(seconds)

    def _observe_tpot(self, seconds: float) -> None:
        if self._telemetry is not None:
            self._telemetry.tpot_seconds.observe(seconds)

    def _trace_request(self, entry: "_ActiveRequest") -> None:
        if self._telemetry is None:
            return
        metrics = entry.metrics
        self._telemetry.request_span(
            metrics.request_id,
            metrics.start_time,
            self._now,
            metrics.ttft,
            len(metrics.decode_latencies),
        )

    # ------------------------------------------------------------------ #
    # Graceful degradation
    # ------------------------------------------------------------------ #

    def shed_overdue(
        self, requests: Sequence[Request], report: ServingReport
    ) -> list[Request]:
        """Drop requests whose queue delay exceeds the SLO budget.

        Returns the survivors; shed requests are counted (never served),
        which keeps tail latency bounded when faults pile up a backlog.
        """
        budget = self.slo.queue_delay_budget_seconds
        if budget is None:
            return list(requests)
        kept: list[Request] = []
        for request in requests:
            delay = self._now - request.arrival_time
            if delay > budget:
                report.shed_requests += 1
                report.shed_request_ids.append(request.request_id)
                self._emit(EventKind.REQUEST_SHED, detail=delay)
            else:
                kept.append(request)
        return kept

    def _check_ttft(
        self, entry: "_ActiveRequest", report: ServingReport
    ) -> None:
        """Count (and under strict SLO, raise on) a missed TTFT deadline."""
        deadline = self.slo.ttft_deadline_seconds
        if deadline is None or entry.metrics.ttft <= deadline:
            return
        report.slo_violations += 1
        self._emit(EventKind.SLO_VIOLATION, detail=entry.metrics.ttft)
        if self.slo.strict:
            raise DeadlineExceededError(
                f"request {entry.request.request_id} TTFT "
                f"{entry.metrics.ttft:.3f}s exceeded {deadline:.3f}s"
            )

    def _apply_due_faults(self, report: ServingReport) -> None:
        """Apply scripted device failures whose time has come.

        Failures land at iteration granularity: the device's residents and
        in-flight copies are lost, then the pool re-places them across the
        survivors (budget-conserving).  Recovery time is charged as the
        span until the last re-placement copy arrives.
        """
        while self._failures_applied < len(self._failure_script):
            failure = self._failure_script[self._failures_applied]
            if failure.time > self._now:
                break
            self._failures_applied += 1
            lost = self.pool.fail_device(failure.device, self._now)
            report.device_failures += 1
            self._emit(EventKind.DEVICE_FAILURE, detail=float(failure.device))
            before = self.pool.stats.failovers
            latest = self.pool.failover(lost, self._now)
            replaced = self.pool.stats.failovers - before
            report.failovers += replaced
            if replaced:
                self._emit(EventKind.FAILOVER, detail=float(replaced))
            if latest is not None and latest > self._now:
                report.recovery_seconds += latest - self._now
                if self._telemetry is not None:
                    self._telemetry.fault_recovery_span(
                        failure.device, self._now, latest, replaced
                    )

    def _serve_degraded(
        self, expert: ExpertId, layer: int, report: ServingReport
    ) -> None:
        """Serve a failing on-demand load with a substituted expert.

        The nearest ready resident expert of the same layer stands in (the
        SMoE-style fallback); when none is resident the activation is
        served by the always-on shared path.  Either way the token is
        counted as degraded and no transfer is waited on.
        """
        candidates = [
            e
            for e in self.pool.resident_experts()
            if e.layer == layer and self.pool.is_ready(e, self._now)
        ]
        substitute = None
        if candidates:
            substitute = min(
                candidates,
                key=lambda e: (abs(e.expert - expert.expert), e.expert),
            )
        report.degraded_tokens += 1
        self._emit(
            EventKind.DEGRADED_SERVE,
            layer=layer,
            expert=expert,
            detail=float(substitute.expert) if substitute else -1.0,
        )

    # ------------------------------------------------------------------ #
    # Batch serving
    # ------------------------------------------------------------------ #

    def _serve_batch(
        self,
        batch: Sequence[Request],
        report: ServingReport,
        respect_arrivals: bool = False,
    ) -> None:
        active: list[_ActiveRequest] = []
        for request in batch:
            session = self.model.start_session(
                request.cluster,
                request.input_tokens,
                request.output_tokens,
                seed=request.seed,
            )
            # Online runs measure latency from the trace arrival time
            # (queueing included, Fig. 10); offline runs measure from the
            # moment the request starts being served (Fig. 9 methodology).
            arrival = request.arrival_time if respect_arrivals else self._now
            metrics = RequestMetrics(
                request_id=request.request_id,
                arrival_time=arrival,
                start_time=self._now,
                ttft=0.0,
            )
            self.policy.on_request_start(request, session.embedding)
            active.append(_ActiveRequest(request, session, metrics))

        iteration = 0
        while any(not a.finished for a in active):
            current = [a for a in active if not a.finished]
            start_time = self._now
            hits_before, misses_before = report.hits, report.misses
            self._run_iteration(current, iteration, report)
            self._attribute_counts(
                current, report, hits_before, misses_before
            )
            elapsed = self._now - start_time
            for entry in current:
                entry.iterations_done += 1
                if iteration == 0:
                    entry.metrics.ttft = self._now - entry.metrics.arrival_time
                    self._observe_ttft(entry.metrics.ttft)
                    self._check_ttft(entry, report)
                    self.kv_tracker.admit(
                        entry.request.request_id, entry.request.input_tokens
                    )
                else:
                    entry.metrics.decode_latencies.append(elapsed)
                    self._observe_tpot(elapsed)
                    self.kv_tracker.append_token(entry.request.request_id)
                if entry.finished:
                    entry.metrics.finish_time = self._now
                    self.kv_tracker.release(entry.request.request_id)
                    self.policy.on_request_end(entry.request)
                    self._trace_request(entry)
            iteration += 1
            report.iterations += 1

        report.requests.extend(a.metrics for a in active)

    def _run_iteration(
        self,
        active: list[_ActiveRequest],
        iteration: int,
        report: ServingReport,
    ) -> None:
        routings = [entry.session.next_iteration() for entry in active]
        # Continuous batching mixes stages: a request in prefill can share
        # an iteration with decoding requests.  The context's stage is
        # PREFILL only for pure-prefill iterations.
        prefill_tokens = sum(
            r.num_tokens for r in routings if r.stage is Stage.PREFILL
        )
        has_decode = any(r.stage is Stage.DECODE for r in routings)
        stage = Stage.DECODE if has_decode else Stage.PREFILL
        ctx = IterationContext(
            stage=stage,
            iteration_index=iteration,
            requests=[entry.request for entry in active],
            sessions=[entry.session for entry in active],
            routings=routings,
            num_layers=self.config.num_layers,
            num_experts=self.config.experts_per_layer,
        )
        breakdown = report.breakdown

        self._iteration_counter = iteration
        if self._failure_script:
            self._apply_due_faults(report)
        telemetry = self._telemetry
        if telemetry is not None:
            telemetry.iteration_begin(
                iteration, self._now, len(active), stage.value
            )
        self._emit(EventKind.ITERATION_START, detail=float(len(active)))
        self._apply(self.policy.on_iteration_start(ctx), breakdown)

        for layer in range(self.config.num_layers):
            if telemetry is not None:
                telemetry.layer_begin(layer, self._now)
            base_seconds = self._mixed_layer_base_seconds(
                prefill_tokens, has_decode
            )
            if self.faults is not None:
                # A straggler GPU gates the whole (model-parallel) layer.
                base_seconds *= self.faults.compute_multiplier(self._now)
            self._now += base_seconds
            self._emit(EventKind.LAYER_START, layer=layer)
            ctx.reveal_layer(layer)
            # Hit/miss is decided the moment the gate names its experts
            # (§3.2 step 4): anything a same-layer action loads afterwards
            # is an on-demand load, not a hit.
            hits_at_gate = self._snapshot_hits(ctx, layer)
            # Protect the named experts before the policy action so
            # same-layer loads cannot evict what is about to be served.
            self.pool.protected = set(hits_at_gate)
            self._apply(self.policy.on_gate_output(ctx, layer), breakdown)
            self._serve_layer(
                ctx,
                layer,
                prefill_tokens,
                has_decode,
                report,
                hits_at_gate,
            )
            if telemetry is not None:
                telemetry.layer_end(self._now)

        self._apply(self.policy.on_iteration_end(ctx), breakdown)
        self._emit(EventKind.ITERATION_END)
        if telemetry is not None:
            telemetry.iteration_end(self._now)
            telemetry.maybe_sample(
                self._now, pool=self.pool, kv_tracker=self.kv_tracker
            )
        breakdown.add_sync("compute", 0.0)  # ensure key exists

    @staticmethod
    def _attribute_counts(
        active: list["_ActiveRequest"],
        report: ServingReport,
        hits_before: int,
        misses_before: int,
    ) -> None:
        """Split an iteration's hit/miss counts across its requests.

        Exact for single-request iterations; an even split otherwise (the
        engine resolves residency on the batch's activation union).
        """
        if not active:
            return
        share = 1.0 / len(active)
        hit_delta = (report.hits - hits_before) * share
        miss_delta = (report.misses - misses_before) * share
        for entry in active:
            entry.metrics.hits += hit_delta
            entry.metrics.misses += miss_delta

    def _layer_union(self, ctx: IterationContext, layer: int) -> list[ExpertId]:
        activated = ctx.activated_at(layer)
        if self.columnar and len(activated) == 1:
            # Routing arrays are already sorted and unique per request, so
            # a single-request union needs no set round-trip.
            return [ExpertId(layer, int(j)) for j in activated[0]]
        union: set[int] = set()
        for row in activated:
            union.update(int(j) for j in row)
        return [ExpertId(layer, j) for j in sorted(union)]

    def _snapshot_hits(
        self, ctx: IterationContext, layer: int
    ) -> dict[ExpertId, bool]:
        experts = self._layer_union(ctx, layer)
        if self.columnar:
            return dict(
                zip(experts, self.pool.ready_flags(experts, self._now))
            )
        return {
            expert: self.pool.is_ready(expert, self._now)
            for expert in experts
        }

    def _serve_layer(
        self,
        ctx: IterationContext,
        layer: int,
        prefill_tokens: int,
        has_decode: bool,
        report: ServingReport,
        hits_at_gate: dict[ExpertId, bool],
    ) -> None:
        experts = list(hits_at_gate)
        self.pool.protected = set(experts)
        expert_seconds = self._mixed_expert_seconds(
            prefill_tokens, has_decode, len(experts)
        )
        if self.faults is not None:
            expert_seconds *= self.faults.compute_multiplier(self._now)
        breakdown = report.breakdown
        telemetry = self._telemetry
        if (
            self.columnar
            and self._recorder is None
            and telemetry is None
            and all(hits_at_gate.values())
        ):
            # All-hit layers (the steady state once prefetching warms up)
            # need none of the miss machinery: hits stay ready for the
            # whole layer because the pool protects them, so the per-expert
            # readiness re-check, event emission, and stall handling are
            # provably no-ops.  Serve callbacks and the virtual clock are
            # folded locally in the same left-to-right order as the scalar
            # loop, so every float lands bitwise identically.
            count = len(experts)
            if count:
                report.hits += count
                report.layer_hits[layer] += count
                now = self._now
                on_served = self.policy.on_expert_served
                compute = breakdown.sync["compute"]
                for expert in experts:
                    on_served(expert, True, now)
                    now += expert_seconds
                    compute += expert_seconds
                breakdown.sync["compute"] = compute
                self._now = now
            self.pool.protected = set()
            return
        for expert in experts:
            hit = hits_at_gate[expert]
            serve_start = self._now
            stall_seconds = 0.0
            stall_cause = None
            if hit:
                report.hits += 1
                report.layer_hits[layer] += 1
                self._emit(EventKind.EXPERT_HIT, layer=layer, expert=expert)
            else:
                report.misses += 1
                report.layer_misses[layer] += 1
                self._emit(EventKind.EXPERT_MISS, layer=layer, expert=expert)
            if not self.pool.is_ready(expert, self._now):
                arrival = self.pool.arrival_time(expert)
                if arrival is not None:
                    # Prefetched but still on the wire: stall until arrival.
                    breakdown.add_sync("prefetch_stall", arrival - self._now)
                    report.prefetch_stall_misses += 1
                    self._emit(
                        EventKind.PREFETCH_STALL,
                        layer=layer,
                        expert=expert,
                        detail=arrival - self._now,
                    )
                    stall_seconds = arrival - self._now
                    stall_cause = "prefetch_stall"
                    if telemetry is not None:
                        telemetry.stall_span(
                            "prefetch_stall", self._now, arrival, expert, layer
                        )
                    self._now = arrival
                elif self.force_substitution:
                    # Rung-2 degradation: under overload the dispatcher
                    # trades accuracy for latency deliberately — no
                    # transfer is started, the activation is served by
                    # the nearest resident expert.
                    self._serve_degraded(expert, layer, report)
                else:
                    try:
                        done = self.pool.load_on_demand(expert, self._now)
                    except (TransferError, DeviceLostError):
                        if not self.slo.substitute_on_failure:
                            raise
                        # Degraded serving: stand in a resident expert
                        # rather than blocking on a link that keeps
                        # failing (or no longer exists).
                        self._serve_degraded(expert, layer, report)
                    else:
                        breakdown.add_sync("ondemand_load", done - self._now)
                        self._emit(
                            EventKind.ONDEMAND_LOAD,
                            layer=layer,
                            expert=expert,
                            detail=done - self._now,
                        )
                        stall_seconds = done - self._now
                        stall_cause = "ondemand_load"
                        if telemetry is not None:
                            telemetry.stall_span(
                                "ondemand_load", self._now, done, expert, layer
                            )
                        self._now = done
            self.policy.on_expert_served(expert, hit, self._now)
            self._now += expert_seconds
            breakdown.add_sync("compute", expert_seconds)
            if telemetry is not None:
                telemetry.serve_span(
                    serve_start,
                    self._now,
                    expert,
                    layer,
                    hit,
                    stall_seconds,
                    stall_cause,
                )
            # A computed expert no longer needs pinning; releasing it keeps
            # tight per-device budgets feasible for the rest of the layer.
            self.pool.protected.discard(expert)
        self.pool.protected = set()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _mixed_layer_base_seconds(
        self, prefill_tokens: int, has_decode: bool
    ) -> float:
        """Per-layer base compute for a possibly mixed-stage iteration."""
        seconds = 0.0
        if has_decode:
            seconds += self.hardware.decode_layer_base_seconds(self.config)
        if prefill_tokens:
            seconds += self.hardware.prefill_layer_base_seconds(
                self.config, prefill_tokens
            )
            if has_decode:
                # Both components carry the per-layer framework overhead;
                # one fused layer pays it once.
                seconds -= self.hardware.framework_layer_overhead_seconds
        return seconds

    def _mixed_expert_seconds(
        self, prefill_tokens: int, has_decode: bool, num_experts: int
    ) -> float:
        """Per-expert compute for a possibly mixed-stage iteration."""
        if num_experts == 0:
            return 0.0
        seconds = 0.0
        if has_decode:
            seconds += self.hardware.decode_expert_seconds(self.config)
        if prefill_tokens:
            seconds += (
                self.hardware.prefill_expert_layer_seconds(
                    self.config, prefill_tokens
                )
                / num_experts
            )
        return seconds

    def _apply(
        self, action: PolicyAction | None, breakdown: LatencyBreakdown
    ) -> None:
        if action is None:
            return
        for name, seconds in action.sync_overheads.items():
            breakdown.add_sync(name, seconds)
            self._now += seconds
        issue_time = self._now
        for name, seconds in action.async_overheads.items():
            breakdown.add_async(name, seconds)
            issue_time += seconds
        if not self.prefetch_enabled:
            return
        block = action.prefetch_block
        instructions = action.prefetch
        if block is not None and instructions:
            # Mixed form: materialize the block so one sort orders the
            # combined set (rare — policies emit one form or the other).
            width = self.config.experts_per_layer
            ids, priorities = block
            instructions = instructions + [
                PrefetchInstruction(
                    expert=ExpertId(int(i) // width, int(i) % width),
                    priority=float(p),
                )
                for i, p in zip(ids, priorities)
            ]
            block = None
        if block is not None:
            self._issue_prefetch_block(action, block, breakdown, issue_time)
            return
        if not instructions:
            return
        ordered = sorted(
            instructions, key=lambda ins: ins.priority, reverse=True
        )
        load_seconds = self.hardware.expert_load_seconds(self.config)
        latest_arrival = self._now
        scheduled = 0
        for instruction in ordered:
            status = self.pool.prefetch(instruction.expert, issue_time)
            if status == "scheduled":
                scheduled += 1
                breakdown.add_async("prefetch_transfer", load_seconds)
                arrival = self.pool.arrival_time(instruction.expert)
                if arrival is not None:
                    latest_arrival = max(latest_arrival, arrival)
        if scheduled:
            self._emit(EventKind.PREFETCH_ISSUED, detail=float(scheduled))
        if action.block_until_arrival and latest_arrival > self._now:
            breakdown.add_sync("sync_prefetch_wait", latest_arrival - self._now)
            self._now = latest_arrival

    def _issue_prefetch_block(
        self,
        action: PolicyAction,
        block: tuple[np.ndarray, np.ndarray],
        breakdown: LatencyBreakdown,
        issue_time: float,
    ) -> None:
        """Issue a columnar prefetch block in descending-priority order.

        Byte-identical to routing the same experts through the instruction
        list: the stable argsort of negated priorities reproduces Python's
        stable descending sort (ties keep emission order), and already
        tracked experts are skipped with a dict-membership test — exactly
        the pool's side-effect-free ``"present"`` early return.
        """
        ids, priorities = block
        if len(ids) == 0:
            return
        order = np.argsort(-priorities, kind="stable")
        width = self.config.experts_per_layer
        pool = self.pool
        tasks = pool._tasks
        load_seconds = self.hardware.expert_load_seconds(self.config)
        latest_arrival = self._now
        scheduled = 0
        # Read-modify-write outside the loop; .get keeps the key absent
        # when nothing schedules, exactly like the legacy add_async calls.
        transfer = breakdown.asynchronous.get("prefetch_transfer", 0.0)
        for pos in order:
            flat = int(ids[pos])
            key = divmod(flat, width)
            if key in tasks:
                continue
            expert = ExpertId(*key)
            if pool.prefetch(expert, issue_time) == "scheduled":
                scheduled += 1
                transfer += load_seconds
                arrival = pool.arrival_time(expert)
                if arrival is not None and arrival > latest_arrival:
                    latest_arrival = arrival
        if scheduled:
            breakdown.asynchronous["prefetch_transfer"] = transfer
        if scheduled:
            self._emit(EventKind.PREFETCH_ISSUED, detail=float(scheduled))
        if action.block_until_arrival and latest_arrival > self._now:
            breakdown.add_sync("sync_prefetch_wait", latest_arrival - self._now)
            self._now = latest_arrival
