"""Request descriptions fed to the serving engine."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``cluster`` is the semantic topic the prompt belongs to (drives both the
    embedding vector and the routing archetypes).  ``input_tokens`` is the
    prompt length; ``output_tokens`` the generation length (so the request
    spans one prefill and ``output_tokens - 1`` decode iterations).
    ``arrival_time`` matters only for online-trace runs.  ``priority``
    matters only under cluster admission control: requests at or above
    the configured bypass level are never shed at the admission gate.
    ``tenant``/``tier`` tag multi-tenant traffic (empty for single-tenant
    workloads); the traffic layer keeps ``priority`` consistent with the
    tier it assigns.
    """

    request_id: int
    cluster: int
    input_tokens: int
    output_tokens: int
    arrival_time: float = 0.0
    seed: int = 0
    priority: int = 0
    tenant: str = ""
    tier: str = ""

    def __post_init__(self) -> None:
        if self.input_tokens < 1:
            raise ConfigError("input_tokens must be >= 1")
        if self.output_tokens < 1:
            raise ConfigError("output_tokens must be >= 1")
        if self.arrival_time < 0:
            raise ConfigError("arrival_time must be >= 0")
        if self.priority < 0:
            raise ConfigError("priority must be >= 0")

    @property
    def total_iterations(self) -> int:
        return 1 + max(self.output_tokens - 1, 0)
