"""Structured event tracing for the serving engine.

A recorder can be attached to a :class:`~repro.serving.engine.ServingEngine`
to capture the exact sequence of simulation events — iteration boundaries,
layer serves, hits/misses, on-demand loads, prefetch issues, evictions —
with virtual timestamps.  Useful for debugging policies, building custom
analyses, and asserting engine semantics in tests.

Recording is off by default and costs nothing when disabled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.types import ExpertId


class EventKind(enum.Enum):
    """What happened: the discriminator of every recorded event."""

    ITERATION_START = "iteration_start"
    ITERATION_END = "iteration_end"
    LAYER_START = "layer_start"
    EXPERT_HIT = "expert_hit"
    EXPERT_MISS = "expert_miss"
    ONDEMAND_LOAD = "ondemand_load"
    PREFETCH_STALL = "prefetch_stall"
    PREFETCH_ISSUED = "prefetch_issued"
    EVICTION = "eviction"
    DEVICE_FAILURE = "device_failure"
    FAILOVER = "failover"
    REQUEST_SHED = "request_shed"
    DEGRADED_SERVE = "degraded_serve"
    SLO_VIOLATION = "slo_violation"


@dataclass(frozen=True)
class Event:
    """One recorded simulation event."""

    kind: EventKind
    time: float
    iteration: int
    layer: int | None = None
    expert: ExpertId | None = None
    detail: float | None = None
    """Kind-specific payload: stall/load seconds, instruction count, ..."""


@dataclass
class EventRecorder:
    """Accumulates events; attach with ``engine.set_recorder(recorder)``."""

    events: list[Event] = field(default_factory=list)
    max_events: int = 1_000_000

    def emit(self, event: Event) -> None:
        """Append an event (dropped silently past ``max_events``)."""
        if len(self.events) < self.max_events:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def iter_expert_events(self, expert: ExpertId) -> Iterator[Event]:
        """Events touching one expert, in order."""
        return (e for e in self.events if e.expert == expert)

    def timeline(self) -> list[str]:
        """Human-readable one-line-per-event rendering."""
        out = []
        for e in self.events:
            parts = [f"{e.time:12.6f}s", f"iter={e.iteration}", e.kind.value]
            if e.layer is not None:
                parts.append(f"layer={e.layer}")
            if e.expert is not None:
                parts.append(str(e.expert))
            if e.detail is not None:
                parts.append(f"detail={e.detail:.6f}")
            out.append(" ".join(parts))
        return out
