"""Structured event tracing for the serving engine.

A sink can be attached to a :class:`~repro.serving.engine.ServingEngine`
to capture the exact sequence of simulation events — iteration boundaries,
layer serves, hits/misses, on-demand loads, prefetch issues, evictions —
with virtual timestamps.  Useful for debugging policies, building custom
analyses, and asserting engine semantics in tests.

Recording is off by default and costs nothing when disabled.  The engine
accepts anything satisfying the :class:`EventSink` protocol;
:class:`EventRecorder` is the simple in-memory implementation, and
:mod:`repro.obs.sinks` provides bounded-memory streaming alternatives
(ring buffer, JSONL file, null) for long runs.
"""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

from repro.types import ExpertId


class EventKind(enum.Enum):
    """What happened: the discriminator of every recorded event."""

    ITERATION_START = "iteration_start"
    ITERATION_END = "iteration_end"
    LAYER_START = "layer_start"
    EXPERT_HIT = "expert_hit"
    EXPERT_MISS = "expert_miss"
    ONDEMAND_LOAD = "ondemand_load"
    PREFETCH_STALL = "prefetch_stall"
    PREFETCH_ISSUED = "prefetch_issued"
    EVICTION = "eviction"
    DEVICE_FAILURE = "device_failure"
    FAILOVER = "failover"
    REQUEST_SHED = "request_shed"
    REQUEST_DISPATCH = "request_dispatch"
    DEGRADED_SERVE = "degraded_serve"
    SLO_VIOLATION = "slo_violation"


@dataclass(frozen=True)
class Event:
    """One recorded simulation event."""

    kind: EventKind
    time: float
    iteration: int
    layer: int | None = None
    expert: ExpertId | None = None
    detail: float | None = None
    """Kind-specific payload: stall/load seconds, instruction count, ..."""

    def to_dict(self) -> dict:
        """JSON-serializable form (see :func:`Event.from_dict`)."""
        out: dict = {
            "kind": self.kind.value,
            "time": self.time,
            "iteration": self.iteration,
        }
        if self.layer is not None:
            out["layer"] = self.layer
        if self.expert is not None:
            out["expert"] = [self.expert.layer, self.expert.expert]
        if self.detail is not None:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "Event":
        """Inverse of :meth:`to_dict`."""
        expert = payload.get("expert")
        return cls(
            kind=EventKind(payload["kind"]),
            time=payload["time"],
            iteration=payload["iteration"],
            layer=payload.get("layer"),
            expert=ExpertId(*expert) if expert is not None else None,
            detail=payload.get("detail"),
        )


@runtime_checkable
class EventSink(Protocol):
    """Anything the engine can stream events into."""

    def emit(self, event: Event) -> None:
        """Record one event."""
        ...


@dataclass
class EventRecorder:
    """Accumulates events; attach with ``engine.set_recorder(recorder)``."""

    events: list[Event] = field(default_factory=list)
    max_events: int = 1_000_000
    dropped: int = 0
    """Events discarded past ``max_events`` (surfaced in serving reports)."""

    def emit(self, event: Event) -> None:
        """Append an event; past ``max_events`` it is counted as dropped
        (and a warning is issued once per recorder)."""
        if len(self.events) < self.max_events:
            self.events.append(event)
            return
        if self.dropped == 0:
            warnings.warn(
                f"EventRecorder full at {self.max_events} events; further "
                "events are dropped (use repro.obs.sinks for bounded-memory "
                "streaming)",
                RuntimeWarning,
                stacklevel=2,
            )
        self.dropped += 1

    def close(self) -> None:
        """No-op; present so the recorder satisfies the richer Sink API."""

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All recorded events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def iter_expert_events(self, expert: ExpertId) -> Iterator[Event]:
        """Events touching one expert, in order."""
        return (e for e in self.events if e.expert == expert)

    def timeline(self) -> list[str]:
        """Human-readable one-line-per-event rendering."""
        out = []
        for e in self.events:
            parts = [f"{e.time:12.6f}s", f"iter={e.iteration}", e.kind.value]
            if e.layer is not None:
                parts.append(f"layer={e.layer}")
            if e.expert is not None:
                parts.append(str(e.expert))
            if e.detail is not None:
                parts.append(f"detail={e.detail:.6f}")
            out.append(" ".join(parts))
        return out
