"""PCIe transfer channels with pausable prefetch scheduling.

Each GPU owns one host-to-device link.  Prefetches queue behind one another;
an on-demand (miss) load *pauses* every queued-but-not-started prefetch on
its link — they are pushed back by the urgent copy's duration — waits for
at most the one transfer already on the wire, and then occupies the link.
This matches fMoE's "pause all prefetching on a miss, resume after" rule
(§4.5) and the contention behaviour that penalizes over-prefetching.

Callers keep references to the returned :class:`TransferTask` objects and
read ``task.end`` live, so pauses are visible without extra bookkeeping.

With a :class:`~repro.serving.faults.FaultSchedule` attached, each copy
consults the schedule: degraded-bandwidth windows stretch the wire time,
and transient attempt failures cost the wasted wire time plus an
exponential backoff before the retry.  Exhausting the retry budget raises
:class:`~repro.errors.TransferError`; operations on a failed device raise
:class:`~repro.errors.DeviceLostError`.  Without a schedule the arithmetic
is exactly the healthy single-attempt path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, DeviceLostError, TransferError
from repro.serving.faults import DEFAULT_RETRY_POLICY, FaultSchedule, RetryPolicy
from repro.types import ExpertId


@dataclass
class TransferTask:
    """One scheduled host-to-device expert copy (times may shift on pause)."""

    expert: ExpertId
    start: float
    end: float
    num_bytes: int = 0
    """Payload size; 0 for tasks created before byte tracking existed."""


class TransferChannel:
    """Serializes expert weight copies over one PCIe link."""

    def __init__(
        self,
        bandwidth_bps: float,
        device_index: int = 0,
        faults: FaultSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be > 0")
        self.bandwidth_bps = bandwidth_bps
        self.device_index = device_index
        # An all-zero schedule is dropped so the healthy path stays the
        # exact single-attempt arithmetic (bit-identical reports).
        self.faults = faults if faults is not None and not faults.is_zero else None
        self.retry_policy = retry_policy or DEFAULT_RETRY_POLICY
        self._tasks: list[TransferTask] = []
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.urgent_loads = 0
        self.retries = 0
        self.failed_attempts = 0
        self.failed = False
        self._attempt_counter = 0

    def transfer_seconds(self, num_bytes: int) -> float:
        """Nominal wire time of a copy of ``num_bytes`` on this link."""
        return num_bytes / self.bandwidth_bps

    def _wire_end(self, start: float, num_bytes: int) -> float:
        """Completion time of a copy starting at ``start``, fault-aware.

        Each attempt's duration reflects the bandwidth-degradation window
        at its own start time; a failed attempt burns its wire time plus
        the retry backoff.  Raises :class:`TransferError` when every
        attempt of the retry budget fails.
        """
        if self.faults is None:
            return start + num_bytes / self.bandwidth_bps
        policy = self.retry_policy
        now = start
        for attempt in range(policy.max_attempts):
            if attempt:
                self.retries += 1
            multiplier = self.faults.bandwidth_multiplier(
                self.device_index, now
            )
            duration = num_bytes / (self.bandwidth_bps * multiplier)
            index = self._attempt_counter
            self._attempt_counter += 1
            if not self.faults.transfer_fails(self.device_index, index):
                return now + duration
            self.failed_attempts += 1
            now += duration + policy.backoff_after(attempt)
        raise TransferError(
            f"copy on GPU {self.device_index} link failed "
            f"{policy.max_attempts} attempts"
        )

    def _check_alive(self) -> None:
        """Raise :class:`DeviceLostError` when this link's GPU is gone."""
        if self.failed:
            raise DeviceLostError(
                f"GPU {self.device_index} has failed; link is down"
            )

    def fail(self, now: float) -> None:
        """Tear the link down: unfinished transfers are lost."""
        self.failed = True
        self._tasks = [t for t in self._tasks if t.end <= now]
        self._busy_until = now

    def schedule(
        self, issue_time: float, num_bytes: int, expert: ExpertId
    ) -> TransferTask:
        """Queue a prefetch copy; it starts when the link frees up."""
        self._check_alive()
        start = max(issue_time, self._busy_until)
        end = self._wire_end(start, num_bytes)
        task = TransferTask(
            expert=expert, start=start, end=end, num_bytes=num_bytes
        )
        self._tasks.append(task)
        self._busy_until = end
        self.bytes_transferred += num_bytes
        self._compact(issue_time)
        return task

    def load_urgent(
        self, now: float, num_bytes: int, expert: ExpertId
    ) -> TransferTask:
        """Preempting on-demand load.

        Pauses all queued tasks that have not started by ``now`` (shifting
        them back by the urgent copy's duration), waits for the in-flight
        transfer if any, then performs the copy.

        One pass over the live tasks does all the bookkeeping: transfers
        finished by ``now`` are dropped (they cannot be in flight, cannot
        be paused — ``start <= end <= now`` — and cannot carry the maximum
        pending end once the new copy, which ends later, is appended), so
        the hot loop never rescans long-dead transfers.
        """
        self._check_alive()
        inflight_end = now
        live: list[TransferTask] = []
        queued: list[TransferTask] = []
        for task in self._tasks:
            if task.end <= now:
                continue
            live.append(task)
            if task.start <= now:
                if task.end > inflight_end:
                    inflight_end = task.end
            else:
                queued.append(task)
        start = max(now, inflight_end)
        end = self._wire_end(start, num_bytes)
        duration = end - start
        busy = end
        for task in queued:
            task.start += duration
            task.end += duration
            if task.end > busy:
                busy = task.end
        task = TransferTask(
            expert=expert, start=start, end=end, num_bytes=num_bytes
        )
        live.append(task)
        self._tasks = live
        self._busy_until = busy
        self.bytes_transferred += num_bytes
        self.urgent_loads += 1
        return task

    def cancel(self, task: TransferTask, now: float) -> bool:
        """Cancel a queued transfer that has not started; True on success.

        Used when an urgent load needs cache space and the only reclaimable
        bytes are reservations of queued prefetches.  Transfers already on
        the wire cannot be cancelled.  Later queued tasks are left in place
        (their start times stay conservative).
        """
        if task.start <= now:
            return False
        try:
            self._tasks.remove(task)
        except ValueError:
            return False
        # Retries and degradation windows decouple wire time from payload
        # size, so prefer the recorded payload over back-computing it.
        self.bytes_transferred -= task.num_bytes or int(
            (task.end - task.start) * self.bandwidth_bps
        )
        self._busy_until = max(
            (t.end for t in self._tasks), default=now
        )
        return True

    def _compact(self, now: float) -> None:
        """Drop bookkeeping for transfers that finished long ago."""
        if len(self._tasks) > 512:
            self._tasks = [t for t in self._tasks if t.end > now]

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def pending_tasks(self, now: float) -> list[TransferTask]:
        """Transfers scheduled but not finished at ``now`` (for tests)."""
        return [t for t in self._tasks if t.end > now]
