"""PCIe transfer channels with pausable prefetch scheduling.

Each GPU owns one host-to-device link.  Prefetches queue behind one another;
an on-demand (miss) load *pauses* every queued-but-not-started prefetch on
its link — they are pushed back by the urgent copy's duration — waits for
at most the one transfer already on the wire, and then occupies the link.
This matches fMoE's "pause all prefetching on a miss, resume after" rule
(§4.5) and the contention behaviour that penalizes over-prefetching.

Callers keep references to the returned :class:`TransferTask` objects and
read ``task.end`` live, so pauses are visible without extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.types import ExpertId


@dataclass
class TransferTask:
    """One scheduled host-to-device expert copy (times may shift on pause)."""

    expert: ExpertId
    start: float
    end: float


class TransferChannel:
    """Serializes expert weight copies over one PCIe link."""

    def __init__(self, bandwidth_bps: float) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be > 0")
        self.bandwidth_bps = bandwidth_bps
        self._tasks: list[TransferTask] = []
        self._busy_until = 0.0
        self.bytes_transferred = 0
        self.urgent_loads = 0

    def transfer_seconds(self, num_bytes: int) -> float:
        """Wire time of a copy of ``num_bytes`` on this link."""
        return num_bytes / self.bandwidth_bps

    def schedule(
        self, issue_time: float, num_bytes: int, expert: ExpertId
    ) -> TransferTask:
        """Queue a prefetch copy; it starts when the link frees up."""
        start = max(issue_time, self._busy_until)
        end = start + self.transfer_seconds(num_bytes)
        task = TransferTask(expert=expert, start=start, end=end)
        self._tasks.append(task)
        self._busy_until = end
        self.bytes_transferred += num_bytes
        return task

    def load_urgent(
        self, now: float, num_bytes: int, expert: ExpertId
    ) -> TransferTask:
        """Preempting on-demand load.

        Pauses all queued tasks that have not started by ``now`` (shifting
        them back by the urgent copy's duration), waits for the in-flight
        transfer if any, then performs the copy.
        """
        duration = self.transfer_seconds(num_bytes)
        inflight_end = now
        for task in self._tasks:
            if task.end > now and task.start <= now:
                inflight_end = max(inflight_end, task.end)
        for task in self._tasks:
            if task.start > now:
                task.start += duration
                task.end += duration
        start = max(now, inflight_end)
        task = TransferTask(expert=expert, start=start, end=start + duration)
        self._tasks.append(task)
        self._busy_until = max(
            (t.end for t in self._tasks), default=start + duration
        )
        self.bytes_transferred += num_bytes
        self.urgent_loads += 1
        self._compact(now)
        return task

    def cancel(self, task: TransferTask, now: float) -> bool:
        """Cancel a queued transfer that has not started; True on success.

        Used when an urgent load needs cache space and the only reclaimable
        bytes are reservations of queued prefetches.  Transfers already on
        the wire cannot be cancelled.  Later queued tasks are left in place
        (their start times stay conservative).
        """
        if task.start <= now:
            return False
        try:
            self._tasks.remove(task)
        except ValueError:
            return False
        self.bytes_transferred -= int(
            (task.end - task.start) * self.bandwidth_bps
        )
        self._busy_until = max(
            (t.end for t in self._tasks), default=now
        )
        return True

    def _compact(self, now: float) -> None:
        """Drop bookkeeping for transfers that finished long ago."""
        if len(self._tasks) > 512:
            self._tasks = [t for t in self._tasks if t.end > now]

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def pending_tasks(self, now: float) -> list[TransferTask]:
        """Transfers scheduled but not finished at ``now`` (for tests)."""
        return [t for t in self._tasks if t.end > now]
