"""KV-cache memory accounting.

Expert weights are not the only GPU-memory consumer during MoE serving:
each request's key-value cache grows by one entry per layer per generated
token.  The tracker below accounts KV bytes for the active batch so runs
can report peak KV pressure and experiments can derive how much GPU memory
is actually left for the expert cache (the budget the paper's Fig. 11
sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError
from repro.moe.config import MoEModelConfig


def kv_bytes_per_token(config: MoEModelConfig) -> int:
    """KV bytes one token occupies: K and V vectors at every layer."""
    return 2 * config.num_layers * config.hidden_size * config.dtype_bytes


def request_kv_bytes(config: MoEModelConfig, total_tokens: int) -> int:
    """KV footprint of one request holding ``total_tokens`` of context."""
    if total_tokens < 0:
        raise ConfigError("total_tokens must be >= 0")
    return total_tokens * kv_bytes_per_token(config)


@dataclass
class _Entry:
    tokens: int


class KVCacheTracker:
    """Tracks the live KV footprint of in-flight requests."""

    def __init__(self, config: MoEModelConfig) -> None:
        self.config = config
        self._entries: dict[int, _Entry] = {}
        self.peak_bytes = 0
        self.on_change = None
        """Optional callable(current_bytes) invoked after every mutation;
        the telemetry layer uses it to keep its KV gauge live."""

    def admit(self, request_id: int, prompt_tokens: int) -> None:
        """Register a request at prefill with its prompt context."""
        if request_id in self._entries:
            raise SimulationError(f"request {request_id} already admitted")
        if prompt_tokens < 1:
            raise ConfigError("prompt_tokens must be >= 1")
        self._entries[request_id] = _Entry(tokens=prompt_tokens)
        self._update_peak()

    def append_token(self, request_id: int) -> None:
        """Grow a request's context by one generated token."""
        try:
            self._entries[request_id].tokens += 1
        except KeyError:
            raise SimulationError(
                f"request {request_id} not admitted"
            ) from None
        self._update_peak()

    def release(self, request_id: int) -> None:
        """Free a finished request's KV cache."""
        if self._entries.pop(request_id, None) is None:
            raise SimulationError(f"request {request_id} not admitted")
        if self.on_change is not None:
            self.on_change(self.current_bytes())

    def tokens_of(self, request_id: int) -> int:
        """Current context length of an in-flight request."""
        try:
            return self._entries[request_id].tokens
        except KeyError:
            raise SimulationError(
                f"request {request_id} not admitted"
            ) from None

    def current_bytes(self) -> int:
        """Live KV bytes across all in-flight requests."""
        per_token = kv_bytes_per_token(self.config)
        return per_token * sum(e.tokens for e in self._entries.values())

    def _update_peak(self) -> None:
        current = self.current_bytes()
        self.peak_bytes = max(self.peak_bytes, current)
        if self.on_change is not None:
            self.on_change(current)


def expert_budget_after_kv(
    config: MoEModelConfig,
    total_gpu_bytes: int,
    peak_kv_bytes: int,
    workspace_fraction: float = 0.05,
) -> int:
    """GPU bytes left for the expert cache after weights, KV, workspace."""
    if not 0.0 <= workspace_fraction < 1.0:
        raise ConfigError("workspace_fraction must be in [0, 1)")
    workspace = int(total_gpu_bytes * workspace_fraction)
    remaining = (
        total_gpu_bytes - config.non_expert_bytes - peak_kv_bytes - workspace
    )
    return max(remaining, 0)
