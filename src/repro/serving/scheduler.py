"""Admission scheduling for online serving.

The paper's online experiment replays trace arrivals in FCFS order.  Real
serving frontends choose *which* queued request to run next; this module
provides that dispatch loop over the engine plus two classic disciplines:

- :class:`FCFSScheduler` — first come, first served (the paper's replay);
- :class:`SJFScheduler` — shortest job first, using prompt length as the
  job-size proxy (the output length is unknown at dispatch time).

When the engine carries an :class:`~repro.serving.faults.SLOConfig` with a
queue-delay budget, requests whose queueing delay already exceeds the
budget are shed at dispatch time (counted in the merged report) instead of
inflating the tail.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.errors import ConfigError
from repro.serving.engine import ServingEngine
from repro.serving.events import EventKind
from repro.serving.metrics import ServingReport
from repro.serving.request import Request


class Scheduler(Protocol):
    """Picks the next request to dispatch from the arrived backlog."""

    name: str

    def select(self, pending: Sequence[Request], now: float) -> Request:
        """Pick the next request from the arrived backlog."""
        ...


class FCFSScheduler:
    """First come, first served."""

    name = "fcfs"

    def select(self, pending: Sequence[Request], now: float) -> Request:
        """Earliest arrival wins; request id breaks ties."""
        return min(pending, key=lambda r: (r.arrival_time, r.request_id))


class SJFScheduler:
    """Shortest (predicted) job first; prompt length as the size proxy."""

    name = "sjf"

    def select(self, pending: Sequence[Request], now: float) -> Request:
        """Shortest prompt wins; arrival then id break ties."""
        return min(
            pending, key=lambda r: (r.input_tokens, r.arrival_time, r.request_id)
        )


def run_scheduled(
    engine: ServingEngine,
    requests: Sequence[Request],
    scheduler: Scheduler,
) -> ServingReport:
    """Serve an online trace one request at a time under a discipline.

    The engine idles until the next arrival whenever the backlog is empty;
    otherwise the scheduler picks the next request among those that have
    arrived.  Latencies include queueing (measured from trace arrival).
    """
    if not requests:
        raise ConfigError("need at least one request")
    backlog = sorted(requests, key=lambda r: r.arrival_time)
    pending: list[Request] = []
    report = ServingReport(policy_name=engine.policy.name)
    index = 0
    while pending or index < len(backlog):
        now = engine.now
        while index < len(backlog) and backlog[index].arrival_time <= now:
            pending.append(backlog[index])
            index += 1
        if not pending:
            # Idle until the next arrival.
            engine._now = max(now, backlog[index].arrival_time)
            continue
        chosen = scheduler.select(pending, engine.now)
        pending.remove(chosen)
        telemetry = engine.telemetry
        if telemetry is not None:
            telemetry.set_queue_depth(engine.now, len(pending))
            telemetry.tracer.instant(
                "dispatch",
                engine.now,
                category="scheduler",
                request_id=chosen.request_id,
                discipline=scheduler.name,
                queue_depth=len(pending),
            )
        engine._emit(EventKind.REQUEST_DISPATCH, detail=float(len(pending)))
        partial = engine.run(
            [chosen], batch_size=1, respect_arrivals=True
        )
        # The engine load-sheds overdue requests itself (engine.slo), so
        # the partial report already carries shed/fault counters — absorb
        # folds the counters and keeps the peak-gauge high-water marks.
        report.absorb(partial)
    report.peak_cache_bytes = max(
        report.peak_cache_bytes, engine.pool.used_bytes()
    )
    report.peak_kv_bytes = max(
        report.peak_kv_bytes, engine.kv_tracker.peak_bytes
    )
    return report
