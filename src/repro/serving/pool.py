"""GPU-resident expert pool: residency, placement, prefetch, eviction.

The pool is the mechanism layer shared by every offloading policy.  It
tracks which experts' weights are resident (or in flight) on which GPU,
enforces the expert-cache byte budget, and charges all copies to per-GPU
PCIe channels.  *What* to prefetch and *whom* to evict are policy
decisions: the pool consults an eviction oracle (the policy) whenever it
must make room.

Expert placement follows the paper's implementation (§5): experts are
assigned to GPUs with a round-robin hash so loads spread evenly across
links, and the cache budget is split evenly per device.  In-flight
transfer arrival times are read live from the channel's task objects, so
an on-demand load that pauses queued prefetches automatically delays their
visibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.errors import (
    CapacityError,
    ConfigError,
    DeviceLostError,
    TransferError,
)
from repro.moe.config import MoEModelConfig
from repro.serving.faults import FaultSchedule, RetryPolicy
from repro.serving.hardware import HardwareConfig
from repro.serving.memory import TransferChannel, TransferTask
from repro.types import ExpertId


class EvictionOracle(Protocol):
    """Scores eviction candidates; higher scores are evicted first.

    An oracle may additionally expose the batched form

        ``score_evictions(flat: np.ndarray, now: float) -> np.ndarray | None``

    taking flat ``layer * experts_per_layer + expert`` indices and
    returning one float64 score per candidate (or None to decline).  The
    pool uses it to score a whole candidate set in one call; oracles
    without it (third-party scalar policies) transparently fall back to
    the per-candidate :meth:`eviction_priority` loop.
    """

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Score an eviction candidate; higher is evicted first."""
        ...


class _EvictNothing:
    """Fallback oracle that refuses to evict (used before policy attach)."""

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        raise CapacityError(
            "pool must evict but no eviction oracle is attached"
        )


@dataclass
class _Device:
    index: int
    budget_bytes: int
    channel: TransferChannel
    used_bytes: int = 0
    resident: set[ExpertId] = field(default_factory=set)
    failed: bool = False

    def free_bytes(self) -> int:
        return self.budget_bytes - self.used_bytes


@dataclass
class PoolStats:
    """Counters for reporting and tests."""

    prefetch_issued: int = 0
    prefetch_rejected: int = 0
    prefetch_cancelled: int = 0
    prefetch_failed: int = 0
    ondemand_loads: int = 0
    evictions: int = 0
    failovers: int = 0
    devices_lost: int = 0


#: Supported expert-to-GPU placement strategies.
PLACEMENT_STRATEGIES = ("round-robin", "layer-sharded", "hashed")

#: Sentinel distinguishing "untracked" from a preloaded (None) task.
_ABSENT = object()


class ExpertPool:
    """Residency manager for all offloadable experts of one model."""

    def __init__(
        self,
        model: MoEModelConfig,
        hardware: HardwareConfig,
        cache_budget_bytes: int,
        placement: str = "round-robin",
        faults: FaultSchedule | None = None,
        retry_policy: RetryPolicy | None = None,
        columnar: bool = True,
    ) -> None:
        if cache_budget_bytes <= 0:
            raise ConfigError("cache budget must be > 0")
        if placement not in PLACEMENT_STRATEGIES:
            raise ConfigError(
                f"placement must be one of {PLACEMENT_STRATEGIES}"
            )
        self.placement = placement
        per_device = cache_budget_bytes // hardware.num_gpus
        if per_device < model.expert_bytes:
            raise ConfigError(
                "per-GPU expert cache budget smaller than one expert "
                f"({per_device} < {model.expert_bytes} bytes)"
            )
        self.model = model
        self._expert_bytes = model.expert_bytes
        self.hardware = hardware
        self.cache_budget_bytes = cache_budget_bytes
        self.devices = [
            _Device(
                index=i,
                budget_bytes=per_device,
                channel=TransferChannel(
                    hardware.pcie_bandwidth_bps,
                    device_index=i,
                    faults=faults,
                    retry_policy=retry_policy,
                ),
            )
            for i in range(hardware.num_gpus)
        ]
        # Tracked experts: value is the transfer task (live arrival time)
        # or None for experts placed without a copy (preload).
        self._tasks: dict[ExpertId, TransferTask | None] = {}
        # Actual residence (device index) of every tracked expert.  The
        # placement function alone cannot recover it once a device has
        # failed and later loads were re-homed onto survivors.
        self._home: dict[ExpertId, int] = {}
        self.columnar = columnar
        """When False, eviction scoring ignores any dense score matrix the
        oracle exposes and calls ``eviction_priority`` once per candidate —
        the scalar reference interpreter the engine benchmark compares
        against."""
        self._oracle: EvictionOracle = _EvictNothing()
        self.protected: set[ExpertId] = set()
        self.stats = PoolStats()
        self.faults = faults
        self.evict_listener = None
        """Optional callable(expert) invoked on every eviction."""
        self.transfer_listener = None
        """Optional callable(kind, device_index, expert, task) invoked when
        a copy is scheduled (kind is ``"prefetch"`` or ``"ondemand"``).
        The task is live: its bounds shift if later urgent loads pause it,
        so consumers should read them after the run (see
        :meth:`repro.obs.telemetry.Telemetry.note_transfer`)."""
        self.cancel_listener = None
        """Optional callable(task) invoked when a scheduled copy is
        cancelled or lost before completing."""

    # ------------------------------------------------------------------ #
    # Placement / residency queries
    # ------------------------------------------------------------------ #

    def set_eviction_oracle(self, oracle: EvictionOracle) -> None:
        """Install the policy that scores eviction candidates."""
        self._oracle = oracle

    def _primary_index(self, expert: ExpertId) -> int:
        """Placement-strategy device index over the full (healthy) fleet."""
        n = len(self.devices)
        if self.placement == "round-robin":
            flat = expert.layer * self.model.experts_per_layer + expert.expert
            return flat % n
        if self.placement == "layer-sharded":
            return expert.layer % n
        # Deterministic scatter (multiplicative hashing).
        flat = expert.layer * self.model.experts_per_layer + expert.expert
        return (flat * 2654435761) % 2**32 % n

    def device_of(self, expert: ExpertId) -> _Device:
        """Stable expert-to-GPU assignment under the chosen strategy.

        ``round-robin`` (the paper's §5 scheme) interleaves experts across
        GPUs so one layer's loads spread over all links; ``layer-sharded``
        pins whole layers to a GPU (simple, but a layer's transfers
        serialize on one link); ``hashed`` scatters pseudo-randomly.

        When the primary device has failed, the expert is re-homed
        deterministically among the survivors (round-robin over the alive
        list), so placement stays a pure function of the failure history.
        """
        primary = self.devices[self._primary_index(expert)]
        if not primary.failed:
            return primary
        alive = [d for d in self.devices if not d.failed]
        if not alive:
            raise DeviceLostError("every GPU has failed")
        flat = expert.layer * self.model.experts_per_layer + expert.expert
        return alive[flat % len(alive)]

    def _home_of(self, expert: ExpertId) -> _Device:
        """The device a tracked expert actually lives on."""
        index = self._home.get(expert)
        if index is None:
            return self.device_of(expert)
        return self.devices[index]

    def is_tracked(self, expert: ExpertId) -> bool:
        """Resident or in flight."""
        return expert in self._tasks

    def arrival_time(self, expert: ExpertId) -> float | None:
        """When the expert is/was usable; None if not tracked."""
        if expert not in self._tasks:
            return None
        task = self._tasks[expert]
        return 0.0 if task is None else task.end

    def is_ready(self, expert: ExpertId, now: float) -> bool:
        """True when the expert's weights are usable at time ``now``."""
        arrival = self.arrival_time(expert)
        return arrival is not None and arrival <= now

    def ready_flags(self, experts: Sequence[ExpertId], now: float) -> list[bool]:
        """Batched :meth:`is_ready`: one bool per expert, in order.

        Reads the same live task objects, so an urgent load that pauses a
        queued prefetch delays its visibility here exactly as it does for
        the scalar query.
        """
        tasks = self._tasks
        flags: list[bool] = []
        append = flags.append
        for expert in experts:
            task = tasks.get(expert, _ABSENT)
            if task is _ABSENT:
                append(False)
            elif task is None:
                append(True)
            else:
                append(task.end <= now)
        return flags

    def used_bytes(self) -> int:
        """Total bytes of resident + in-flight expert reservations."""
        return sum(d.used_bytes for d in self.devices)

    def resident_experts(self) -> set[ExpertId]:
        """All tracked experts (resident or in flight)."""
        return set(self._tasks)

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #

    def preload(self, experts: Iterable[ExpertId]) -> None:
        """Place experts as resident at time 0 without charging a channel."""
        for expert in experts:
            if expert in self._tasks:
                continue
            device = self.device_of(expert)
            if device.free_bytes() < self._expert_bytes:
                raise CapacityError(
                    f"preload of {expert} exceeds GPU {device.index} budget"
                )
            device.used_bytes += self._expert_bytes
            device.resident.add(expert)
            self._tasks[expert] = None
            self._home[expert] = device.index

    def preload_fit(self, experts: Iterable[ExpertId]) -> list[ExpertId]:
        """Capacity-safe :meth:`preload`: skip experts whose GPU is full.

        Placement plans size residency sets against the replica's *total*
        expert-slot capacity, but the round-robin expert-to-GPU hash can
        still land more of a set on one device than its share of the
        budget holds.  This variant places what fits and returns the
        experts actually made resident, so a plan pre-warm never raises
        :class:`CapacityError`.
        """
        placed: list[ExpertId] = []
        for expert in experts:
            if expert in self._tasks:
                placed.append(expert)
                continue
            device = self.device_of(expert)
            if device.free_bytes() < self._expert_bytes:
                continue
            device.used_bytes += self._expert_bytes
            device.resident.add(expert)
            self._tasks[expert] = None
            self._home[expert] = device.index
            placed.append(expert)
        return placed

    def prefetch(self, expert: ExpertId, issue_time: float) -> str:
        """Queue a prefetch copy.

        Returns ``"scheduled"`` when a new transfer was queued,
        ``"present"`` when the expert is already resident or in flight,
        ``"rejected"`` when no space could be made, and ``"failed"`` when
        the copy exhausted its transfer retries (fault injection).
        """
        if expert in self._tasks:
            return "present"
        device = self.device_of(expert)
        if not self._make_space(device, self._expert_bytes, issue_time):
            self.stats.prefetch_rejected += 1
            return "rejected"
        try:
            task = device.channel.schedule(
                issue_time, self._expert_bytes, expert
            )
        except TransferError:
            # The link burned its retry budget; the reservation was never
            # taken, so simply report the loss (the policy may try again).
            self.stats.prefetch_failed += 1
            return "failed"
        device.used_bytes += self._expert_bytes
        device.resident.add(expert)
        self._tasks[expert] = task
        self._home[expert] = device.index
        self.stats.prefetch_issued += 1
        if self.transfer_listener is not None:
            self.transfer_listener("prefetch", device.index, expert, task)
        return "scheduled"

    def insert_blocking(self, expert: ExpertId, now: float) -> bool:
        """Place an expert as resident at ``now`` without using a channel.

        Models policies whose transfers are charged as synchronous critical-
        path time by the caller (DeepSpeed's serial layer streaming) instead
        of occupying the per-GPU prefetch links.  Returns False when no
        space can be made.
        """
        if expert in self._tasks:
            return True
        device = self.device_of(expert)
        if not self._make_space(
            device, self._expert_bytes, now, urgent=True
        ):
            return False
        device.used_bytes += self._expert_bytes
        device.resident.add(expert)
        self._tasks[expert] = TransferTask(expert=expert, start=now, end=now)
        self._home[expert] = device.index
        return True

    def load_on_demand(self, expert: ExpertId, now: float) -> float:
        """Blocking miss load; returns the time the expert becomes usable."""
        arrival = self.arrival_time(expert)
        if arrival is not None:
            # Already resident or in flight: caller stalls until arrival.
            return max(arrival, now)
        device = self.device_of(expert)
        while not self._make_space(
            device, self._expert_bytes, now, urgent=True
        ):
            # Everything evictable is still on the wire: wait for the
            # earliest unprotected transfer to land, then it is fair game.
            pending = [
                t.end
                for e, t in self._tasks.items()
                if t is not None
                and e in device.resident
                and e not in self.protected
                and t.end > now
            ]
            if not pending:
                raise CapacityError(
                    f"cannot make room for on-demand load of {expert} "
                    f"on GPU {device.index}"
                )
            now = min(pending)
        task = device.channel.load_urgent(
            now, self._expert_bytes, expert
        )
        device.used_bytes += self._expert_bytes
        device.resident.add(expert)
        self._tasks[expert] = task
        self._home[expert] = device.index
        self.stats.ondemand_loads += 1
        if self.transfer_listener is not None:
            self.transfer_listener("ondemand", device.index, expert, task)
        return task.end

    def evict(self, expert: ExpertId) -> None:
        """Drop an expert's weights and free its reservation."""
        if expert not in self._tasks:
            return
        device = self._home_of(expert)
        device.resident.discard(expert)
        device.used_bytes -= self._expert_bytes
        del self._tasks[expert]
        self._home.pop(expert, None)
        self.stats.evictions += 1
        if self.evict_listener is not None:
            self.evict_listener(expert)

    # ------------------------------------------------------------------ #
    # Device failure and recovery
    # ------------------------------------------------------------------ #

    def alive_devices(self) -> list[_Device]:
        """Devices that have not failed."""
        return [d for d in self.devices if not d.failed]

    def fail_device(self, index: int, now: float) -> list[ExpertId]:
        """Lose one GPU: its residents and in-flight copies are gone.

        Returns the lost experts (sorted, for deterministic re-placement).
        Raises :class:`DeviceLostError` when the last device fails —
        there is nothing left to serve from.
        """
        if not 0 <= index < len(self.devices):
            raise ConfigError(f"no GPU {index} to fail")
        device = self.devices[index]
        if device.failed:
            return []
        device.failed = True
        if self.cancel_listener is not None:
            # Unfinished copies die with the link; they never complete, so
            # consumers must not materialize them as transfer spans.
            for task in device.channel.pending_tasks(now):
                self.cancel_listener(task)
        device.channel.fail(now)
        lost = sorted(device.resident)
        for expert in lost:
            del self._tasks[expert]
            self._home.pop(expert, None)
        device.resident.clear()
        device.used_bytes = 0
        self.stats.devices_lost += 1
        if not self.alive_devices():
            raise DeviceLostError("every GPU has failed")
        return lost

    def failover(self, lost: Iterable[ExpertId], now: float) -> float | None:
        """Re-place a failed device's residents across the survivors.

        Issues one prefetch per lost expert onto its new (deterministic)
        home, subject to the survivors' byte budgets — re-placement evicts
        or rejects exactly like any other load, so budgets are conserved.
        Returns the arrival time of the last re-placement copy, or None
        when nothing could be (or needed to be) re-scheduled.
        """
        latest: float | None = None
        for expert in lost:
            if self.prefetch(expert, now) != "scheduled":
                continue
            self.stats.failovers += 1
            arrival = self.arrival_time(expert)
            if arrival is not None:
                latest = arrival if latest is None else max(latest, arrival)
        return latest

    def total_retries(self) -> int:
        """Transfer retries performed across every link so far."""
        return sum(d.channel.retries for d in self.devices)

    def _make_space(
        self,
        device: _Device,
        needed_bytes: int,
        now: float,
        urgent: bool = False,
    ) -> bool:
        """Evict ready, unprotected experts (oracle order) until it fits.

        Urgent (on-demand) loads may additionally cancel queued prefetches
        that have not started transferring, reclaiming their reservations.
        """
        if device.free_bytes() >= needed_bytes:
            return True
        # Readiness inlined (resident experts are always tracked): the
        # scan touches every resident on every space-needing call, so the
        # per-candidate method-call overhead of ``is_ready`` matters.
        protected = self.protected
        tasks = self._tasks
        # Columnar scoring when the oracle exposes its dense score
        # matrix: victim order comes from O(1) array lookups instead of
        # one Python scoring call per candidate.  Small candidate sets
        # sort with the matrix as the key function (numpy per-op overhead
        # would dominate); large ones go through one stable argsort of
        # the gathered scores.  ``sorted(key=score, reverse=True)`` and a
        # stable argsort of the negated scores order ties identically
        # (original candidate order), so every path evicts the same
        # victims as the scalar loop.
        matrix = None
        if self.columnar:
            dense = getattr(self._oracle, "eviction_score_matrix", None)
            if dense is not None:
                matrix = dense(now)
        if (
            matrix is not None
            and device.free_bytes() + self._expert_bytes >= needed_bytes
        ):
            # One eviction suffices (every request is for one equal-sized
            # expert, so this is nearly every call): take the first strict
            # maximum in residency-set iteration order — exactly the
            # stable descending sort's first victim — without building or
            # sorting a candidate list.
            width = self.model.experts_per_layer
            best = None
            best_score = float("-inf")
            for e in device.resident:
                if e in protected:
                    continue
                task = tasks[e]
                if task is not None and task.end > now:
                    continue
                score = matrix[e.layer * width + e.expert]
                if score > best_score:
                    best_score = score
                    best = e
            if best is not None:
                self.evict(best)
                return True
            candidates = []
        else:
            candidates = [
                e
                for e in device.resident
                if e not in protected
                and ((task := tasks[e]) is None or task.end <= now)
            ]
        if matrix is not None:
            if len(candidates) >= 32:
                width = self.model.experts_per_layer
                flat = np.fromiter(
                    (e.layer * width + e.expert for e in candidates),
                    dtype=np.intp,
                    count=len(candidates),
                )
                order = np.argsort(-matrix[flat], kind="stable")
                candidates = [candidates[i] for i in order]
            else:
                width = self.model.experts_per_layer
                candidates.sort(
                    key=lambda e: matrix[e.layer * width + e.expert],
                    reverse=True,
                )
        else:
            candidates.sort(
                key=lambda e: self._oracle.eviction_priority(e, now),
                reverse=True,
            )
        for victim in candidates:
            self.evict(victim)
            if device.free_bytes() >= needed_bytes:
                return True
        if urgent:
            # Reclaim queued-but-not-started prefetch reservations,
            # furthest arrival first.
            queued = [
                (e, t)
                for e, t in self._tasks.items()
                if t is not None
                and t.start > now
                and e in device.resident
                and e not in self.protected
            ]
            queued.sort(key=lambda item: item[1].end, reverse=True)
            for expert, task in queued:
                if not device.channel.cancel(task, now):
                    continue
                device.resident.discard(expert)
                device.used_bytes -= self._expert_bytes
                del self._tasks[expert]
                self._home.pop(expert, None)
                self.stats.prefetch_cancelled += 1
                if self.cancel_listener is not None:
                    self.cancel_listener(task)
                if device.free_bytes() >= needed_bytes:
                    return True
        return device.free_bytes() >= needed_bytes
