"""The §3.3 offloading formulation: objective, bounds, and reference solvers.

The paper formulates expert offloading as an ILP minimizing total on-demand
loading latency T = T_e · Σ misses under a cache-capacity constraint, notes
it is NP-hard, and justifies fMoE's heuristic design.  This module makes
that formulation executable:

- :func:`activation_sequence` flattens profiled traces into the access
  sequence the ILP is defined over;
- :func:`evaluate_cache_schedule` counts misses for classic online
  policies (LRU / LFU / Belady) on that sequence;
- :func:`belady_min_misses` is the clairvoyant hindsight bound;
- :func:`lp_lower_bound` solves the LP relaxation with scipy (HiGHS) for
  small instances, certifying how close Belady and the heuristics get;
- :func:`ondemand_loading_latency` turns misses into the paper's T.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import lil_matrix

from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.types import ExpertId
from repro.workloads.profiler import RequestTrace


def activation_sequence(
    traces: Sequence[RequestTrace],
) -> list[list[ExpertId]]:
    """Per-(iteration, layer) groups of activated experts, in serve order."""
    sequence: list[list[ExpertId]] = []
    for trace in traces:
        for activated in trace.iteration_activated:
            for layer, experts in enumerate(activated):
                sequence.append(
                    [ExpertId(layer, int(j)) for j in experts]
                )
    return sequence


def ondemand_loading_latency(misses: int, expert_load_seconds: float) -> float:
    """The paper's objective T = T_e · Σ misses."""
    if misses < 0:
        raise ConfigError("misses must be >= 0")
    if expert_load_seconds < 0:
        raise ConfigError("expert_load_seconds must be >= 0")
    return misses * expert_load_seconds


def _flatten(sequence: Sequence[Sequence[ExpertId]]) -> list[ExpertId]:
    return [e for group in sequence for e in group]


def belady_min_misses(
    sequence: Sequence[Sequence[ExpertId]], capacity_experts: int
) -> int:
    """Clairvoyant (Belady/MIN) miss count with expert-granular caching."""
    if capacity_experts < 1:
        raise ConfigError("capacity must be >= 1")
    accesses = _flatten(sequence)
    # Precompute, for each access position, the next position the same
    # expert is used.
    next_use = [len(accesses)] * len(accesses)
    last_seen: dict[ExpertId, int] = {}
    for i in range(len(accesses) - 1, -1, -1):
        expert = accesses[i]
        next_use[i] = last_seen.get(expert, len(accesses))
        last_seen[expert] = i
    cache: dict[ExpertId, int] = {}  # expert -> its next use position
    misses = 0
    for i, expert in enumerate(accesses):
        if expert in cache:
            cache[expert] = next_use[i]
            continue
        misses += 1
        if len(cache) >= capacity_experts:
            victim = max(cache, key=lambda e: cache[e])
            del cache[victim]
        cache[expert] = next_use[i]
    return misses


def evaluate_cache_schedule(
    sequence: Sequence[Sequence[ExpertId]],
    capacity_experts: int,
    policy: str = "lru",
) -> int:
    """Miss count of a classic replacement policy over the sequence."""
    if capacity_experts < 1:
        raise ConfigError("capacity must be >= 1")
    if policy == "belady":
        return belady_min_misses(sequence, capacity_experts)
    if policy not in ("lru", "lfu"):
        raise ConfigError("policy must be 'lru', 'lfu', or 'belady'")
    accesses = _flatten(sequence)
    cache: set[ExpertId] = set()
    last_use: dict[ExpertId, int] = {}
    freq: dict[ExpertId, int] = defaultdict(int)
    misses = 0
    for i, expert in enumerate(accesses):
        freq[expert] += 1
        if expert not in cache:
            misses += 1
            if len(cache) >= capacity_experts:
                if policy == "lru":
                    victim = min(cache, key=lambda e: last_use.get(e, -1))
                else:
                    victim = min(cache, key=lambda e: freq[e])
                cache.discard(victim)
            cache.add(expert)
        last_use[expert] = i
    return misses


def lp_lower_bound(
    sequence: Sequence[Sequence[ExpertId]],
    capacity_experts: int,
    max_steps: int = 256,
) -> float:
    """LP relaxation of the §3.3 ILP (fractional caching lower bound).

    Variables: x[t, e] ∈ [0, 1] — fraction of expert e resident after step
    t; y[t, e] ≥ x[t, e] − x[t−1, e] — loads.  Minimize Σ y subject to
    x[t, e] = 1 for activated experts and Σ_e x[t, e] ≤ capacity.  The
    relaxed optimum lower-bounds the integral (true) minimum miss count.
    Only intended for small instances; raises if the sequence is too long.
    """
    if capacity_experts < 1:
        raise ConfigError("capacity must be >= 1")
    steps = list(sequence)
    if len(steps) > max_steps:
        raise ConfigError(
            f"instance too large for the LP bound ({len(steps)} steps "
            f"> {max_steps}); pass fewer traces"
        )
    experts = sorted({e for group in steps for e in group})
    index = {e: k for k, e in enumerate(experts)}
    num_e = len(experts)
    num_t = len(steps)
    if num_e == 0:
        return 0.0
    n_x = num_t * num_e
    n_y = num_t * num_e

    def xi(t: int, k: int) -> int:
        return t * num_e + k

    def yi(t: int, k: int) -> int:
        return n_x + t * num_e + k

    cost = np.zeros(n_x + n_y)
    cost[n_x:] = 1.0

    # Inequalities A_ub @ v <= b_ub.
    rows = num_t + num_t * num_e  # capacity rows + load-link rows
    a_ub = lil_matrix((rows, n_x + n_y))
    b_ub = np.zeros(rows)
    r = 0
    for t in range(num_t):
        for k in range(num_e):
            a_ub[r, xi(t, k)] = 1.0
        b_ub[r] = float(capacity_experts)
        r += 1
    for t in range(num_t):
        for k in range(num_e):
            # x[t] - x[t-1] - y[t] <= 0
            a_ub[r, xi(t, k)] = 1.0
            if t > 0:
                a_ub[r, xi(t - 1, k)] = -1.0
            a_ub[r, yi(t, k)] = -1.0
            b_ub[r] = 0.0
            r += 1

    bounds = [(0.0, 1.0)] * n_x + [(0.0, None)] * n_y
    # Activated experts must be fully resident at their step.
    for t, group in enumerate(steps):
        for e in group:
            bounds[xi(t, index[e])] = (1.0, 1.0)

    result = linprog(
        cost,
        A_ub=a_ub.tocsr(),
        b_ub=b_ub,
        bounds=bounds,
        method="highs",
    )
    if not result.success:  # pragma: no cover - solver failure
        raise RuntimeError(f"LP solve failed: {result.message}")
    return float(result.fun)
