"""Offline hit-rate evaluation of expert pattern trackers (Figs. 4, 12a).

Evaluates *prediction containment*: for each test iteration and each layer,
a tracker predicts the expert set to prefetch at the configured prefetch
distance; the hit rate is the fraction of actually-activated experts that
the prediction contained.  No cache or transfer timing is involved — this
isolates tracking quality exactly the way the paper's Fig. 4 and ablation
Fig. 12a do.

Trackers:

- *fine-grained* — fMoE's expert-map search (semantic for the first ``d``
  layers, trajectory beyond), with optional dynamic-threshold selection;
- *coarse-grained* — MoE-Infinity's request-level Expert Activation Matrix
  matching with global-popularity fallback for initial layers;
- *speculative* — hidden-state speculation (Mixtral-Offloading / ProMoE),
  modeled by the bounded-noise oracle; it cannot predict the first ``d``
  layers (there is no hidden state before compute starts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.matcher import ExpertMapMatcher
from repro.core.prefetch import select_prefetch_experts, selection_threshold
from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.moe.embeddings import cosine_similarity_matrix
from repro.moe.gating import softmax_rows, top_k_indices
from repro.workloads.profiler import RequestTrace


@dataclass(frozen=True)
class TrackerHitRates:
    """Hit rate of one tracker at one prefetch distance."""

    name: str
    distance: int
    hit_rate: float
    samples: int


def _containment(activated: np.ndarray, predicted: np.ndarray) -> tuple[int, int]:
    """(hits, total) for one layer's activated set vs predicted set."""
    predicted_set = set(int(j) for j in predicted)
    hits = sum(1 for j in activated if int(j) in predicted_set)
    return hits, len(activated)


def build_store(
    config: MoEModelConfig,
    warm_traces: Sequence[RequestTrace],
    distance: int,
    capacity: int = 1024,
) -> ExpertMapStore:
    """Populate an Expert Map Store from profiled history."""
    store = ExpertMapStore(
        capacity=capacity,
        num_layers=config.num_layers,
        num_experts=config.experts_per_layer,
        embedding_dim=config.embedding_dim,
        prefetch_distance=min(distance, config.num_layers),
    )
    for trace in warm_traces:
        for iteration_map in trace.iteration_maps:
            store.add(trace.embedding, iteration_map)
    return store


def evaluate_fine_grained(
    config: MoEModelConfig,
    warm_traces: Sequence[RequestTrace],
    test_traces: Sequence[RequestTrace],
    distance: int,
    capacity: int = 1024,
    use_semantic: bool = True,
    dynamic_threshold: bool = True,
    max_prefetch_factor: float = 4.0,
) -> TrackerHitRates:
    """fMoE's expert-map tracking (the paper's Map(T)/Map(T+S)/Map(T+S+δ))."""
    if distance < 1:
        raise ConfigError("distance must be >= 1")
    store = build_store(config, warm_traces, distance, capacity)
    matcher = ExpertMapMatcher(store)
    top_k = config.top_k
    cap = int(np.ceil(max_prefetch_factor * top_k))
    hits = total = 0

    def select(row: np.ndarray, score: float) -> np.ndarray:
        if dynamic_threshold:
            return select_prefetch_experts(
                row, selection_threshold(score), top_k, max_count=cap
            )
        return np.argsort(row)[::-1][:top_k]

    for trace in test_traces:
        embedding = trace.embedding[None, :]
        semantic = matcher.match_semantic(embedding) if use_semantic else None
        for iteration_map, activated in zip(
            trace.iteration_maps, trace.iteration_activated
        ):
            # Initial layers [0, d): semantic search (or unpredicted).
            for layer in range(min(distance, config.num_layers)):
                if semantic is None:
                    total += len(activated[layer])
                    continue
                row = matcher.matched_row(semantic, 0, layer)
                h, t = _containment(
                    activated[layer],
                    select(row, float(semantic.scores[0])),
                )
                hits, total = hits + h, total + t
            # Later layers: trajectory search from the observed prefix.
            # The query is flattened once and matched at every prefix
            # length (see CachedTrajectoryQuery).
            query = matcher.trajectory_query(iteration_map[None, :, :])
            for layer in range(config.num_layers - distance):
                target = layer + distance
                result = query.match(layer + 1) if query else None
                assert result is not None
                row = matcher.matched_row(result, 0, target)
                h, t = _containment(
                    activated[target],
                    select(row, float(result.scores[0])),
                )
                hits, total = hits + h, total + t
    return TrackerHitRates(
        name="fine-grained",
        distance=distance,
        hit_rate=hits / total if total else 0.0,
        samples=total,
    )


def evaluate_coarse_grained(
    config: MoEModelConfig,
    warm_traces: Sequence[RequestTrace],
    test_traces: Sequence[RequestTrace],
    distance: int,
    width_factor: float = 1.0,
) -> TrackerHitRates:
    """MoE-Infinity's request-level EAM tracking (the paper's Hit count)."""
    if distance < 1:
        raise ConfigError("distance must be >= 1")
    if not warm_traces:
        raise ConfigError("coarse tracker needs warm history")
    eams = np.stack(
        [t.activation_counts().ravel() for t in warm_traces]
    ).astype(np.float64)
    eams /= np.linalg.norm(eams, axis=1, keepdims=True)
    grids = [t.activation_counts() for t in warm_traces]
    popularity = np.sum(grids, axis=0)
    width = int(np.ceil(config.top_k * width_factor))
    hits = total = 0
    for trace in test_traces:
        counts = np.zeros(
            (config.num_layers, config.experts_per_layer), dtype=np.float64
        )
        for activated in trace.iteration_activated:
            for layer in range(min(distance, config.num_layers)):
                predicted = np.argsort(popularity[layer])[::-1][:width]
                h, t = _containment(activated[layer], predicted)
                hits, total = hits + h, total + t
            for layer in range(config.num_layers - distance):
                target = layer + distance
                counts[layer, activated[layer]] += 1.0
                scores = cosine_similarity_matrix(
                    counts.ravel()[None, :], eams
                )[0]
                best = int(np.argmax(scores))
                predicted = np.argsort(grids[best][target])[::-1][:width]
                h, t = _containment(activated[target], predicted)
                hits, total = hits + h, total + t
            # The tail layers' counts also accumulate into the request EAM.
            for layer in range(
                max(config.num_layers - distance, 0), config.num_layers
            ):
                counts[layer, activated[layer]] += 1.0
    return TrackerHitRates(
        name="coarse-grained",
        distance=distance,
        hit_rate=hits / total if total else 0.0,
        samples=total,
    )


def evaluate_speculative(
    config: MoEModelConfig,
    test_traces: Sequence[RequestTrace],
    distance: int,
    noise_multiplier: float = 1.0,
    seed: int = 0,
) -> TrackerHitRates:
    """Hidden-state speculation (the paper's Speculate tracker)."""
    if distance < 1:
        raise ConfigError("distance must be >= 1")
    rng = np.random.default_rng(seed)
    noise_scale = (
        config.routing.speculation_noise * distance * noise_multiplier
    )
    hits = total = 0
    for trace in test_traces:
        for logits, activated in zip(
            trace.iteration_logits, trace.iteration_activated
        ):
            # No hidden state exists before layer 0 computes: the first d
            # layers are unpredictable for speculation.
            for layer in range(min(distance, config.num_layers)):
                total += len(activated[layer])
            for layer in range(config.num_layers - distance):
                target = layer + distance
                noisy = logits[target] + rng.gumbel(
                    0.0, noise_scale, config.experts_per_layer
                )
                predicted = top_k_indices(
                    softmax_rows(noisy[None, :])[0], config.top_k
                )
                h, t = _containment(activated[target], predicted)
                hits, total = hits + h, total + t
    return TrackerHitRates(
        name="speculative",
        distance=distance,
        hit_rate=hits / total if total else 0.0,
        samples=total,
    )
