"""Empirical check of the §4.4 sphere-covering capacity analysis.

The paper argues (via Minimum Sphere Covering results) that maintaining at
least ``2·L·J`` expert maps guarantees a ≥75%-similar map exists for any
new iteration, and ``(1/2)·L·J·ln(L·J)`` maps push the guarantee to 98%.
This module measures the actual coverage the simulated routing space
exhibits: fill a store with ``C`` maps drawn from random contexts, probe it
with fresh iterations, and record the best trajectory similarity found.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.store import ExpertMapStore
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.moe.model import MoEModel


@dataclass(frozen=True)
class CoveragePoint:
    """Coverage statistics for one store capacity."""

    capacity: int
    mean_best_similarity: float
    fraction_above_75: float
    fraction_above_98: float


def paper_capacity_bounds(config: MoEModelConfig) -> tuple[int, int]:
    """The §4.4 capacities: (2LJ, ½·LJ·ln(LJ))."""
    lj = config.num_layers * config.experts_per_layer
    return 2 * lj, int(math.ceil(0.5 * lj * math.log(lj)))


def _sample_maps(
    model: MoEModel, count: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """(embedding, map) pairs from random (cluster, prompt, phase) draws."""
    profile = model.config.routing
    out = []
    for _ in range(count):
        cluster = int(rng.integers(profile.num_clusters))
        session = model.start_session(
            cluster,
            input_tokens=8,
            output_tokens=2,
            seed=int(rng.integers(2**31)),
        )
        session.next_iteration()  # skip prefill
        routing = session.next_iteration()
        out.append((session.embedding, routing.distributions))
    return out


def coverage_curve(
    config: MoEModelConfig,
    capacities: tuple[int, ...],
    num_probes: int = 64,
    seed: int = 0,
) -> list[CoveragePoint]:
    """Best-match similarity of fresh probes vs store capacity."""
    if not capacities:
        raise ConfigError("need at least one capacity")
    if num_probes < 1:
        raise ConfigError("num_probes must be >= 1")
    model = MoEModel(config, seed=seed)
    rng = np.random.default_rng(seed + 1)
    history = _sample_maps(model, max(capacities), rng)
    probes = _sample_maps(model, num_probes, rng)
    points = []
    for capacity in capacities:
        store = ExpertMapStore(
            capacity=capacity,
            num_layers=config.num_layers,
            num_experts=config.experts_per_layer,
            embedding_dim=config.embedding_dim,
            prefetch_distance=min(3, config.num_layers),
        )
        for embedding, grid in history[:capacity]:
            store.add(embedding, grid)
        best = []
        for _, grid in probes:
            scores = store.trajectory_scores(
                grid[None, :, :], config.num_layers
            )
            best.append(float(scores.max()))
        best_arr = np.array(best)
        points.append(
            CoveragePoint(
                capacity=capacity,
                mean_best_similarity=float(best_arr.mean()),
                fraction_above_75=float((best_arr >= 0.75).mean()),
                fraction_above_98=float((best_arr >= 0.98).mean()),
            )
        )
    return points
