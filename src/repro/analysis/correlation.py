"""Similarity-score / hit-rate correlation analysis (paper §4.3, Fig. 8).

For every test iteration, fMoE's two searches produce a cosine similarity
score and a guided prediction whose quality can be measured after the fact.
The paper computes Pearson correlation coefficients between the scores and
the resulting expert hit rates across three models and two datasets,
finding a solidly positive correlation — the empirical basis for the
similarity-aware threshold δ = clip(1 − score).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.analysis.tracking import build_store, _containment
from repro.core.matcher import ExpertMapMatcher
from repro.core.prefetch import select_prefetch_experts, selection_threshold
from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.workloads.profiler import RequestTrace


@dataclass(frozen=True)
class CorrelationResult:
    """Pearson coefficients between match similarity and hit rate."""

    semantic_pearson: float
    trajectory_pearson: float
    semantic_samples: int
    trajectory_samples: int


def _pearson(xs: list[float], ys: list[float]) -> float:
    if len(xs) < 2:
        return 0.0
    if np.std(xs) == 0 or np.std(ys) == 0:
        return 0.0
    r, _ = stats.pearsonr(xs, ys)
    return float(r)


def similarity_hitrate_correlation(
    config: MoEModelConfig,
    warm_traces: Sequence[RequestTrace],
    test_traces: Sequence[RequestTrace],
    distance: int = 3,
    capacity: int = 1024,
    max_prefetch_factor: float = 4.0,
) -> CorrelationResult:
    """Reproduce the Fig. 8 methodology on profiled traces."""
    if distance < 1:
        raise ConfigError("distance must be >= 1")
    store = build_store(config, warm_traces, distance, capacity)
    matcher = ExpertMapMatcher(store)
    top_k = config.top_k
    cap = int(np.ceil(max_prefetch_factor * top_k))

    sem_scores: list[float] = []
    sem_hits: list[float] = []
    traj_scores: list[float] = []
    traj_hits: list[float] = []

    for trace in test_traces:
        semantic = matcher.match_semantic(trace.embedding[None, :])
        assert semantic is not None
        sem_score = float(semantic.scores[0])
        for iteration_map, activated in zip(
            trace.iteration_maps, trace.iteration_activated
        ):
            hits = total = 0
            for layer in range(min(distance, config.num_layers)):
                row = matcher.matched_row(semantic, 0, layer)
                selected = select_prefetch_experts(
                    row, selection_threshold(sem_score), top_k, max_count=cap
                )
                h, t = _containment(activated[layer], selected)
                hits, total = hits + h, total + t
            if total:
                sem_scores.append(sem_score)
                sem_hits.append(hits / total)

            query = matcher.trajectory_query(iteration_map[None, :, :])
            for layer in range(config.num_layers - distance):
                target = layer + distance
                result = query.match(layer + 1) if query else None
                assert result is not None
                score = float(result.scores[0])
                row = matcher.matched_row(result, 0, target)
                selected = select_prefetch_experts(
                    row, selection_threshold(score), top_k, max_count=cap
                )
                h, t = _containment(activated[target], selected)
                if t:
                    traj_scores.append(score)
                    traj_hits.append(h / t)

    return CorrelationResult(
        semantic_pearson=_pearson(sem_scores, sem_hits),
        trajectory_pearson=_pearson(traj_scores, traj_hits),
        semantic_samples=len(sem_scores),
        trajectory_samples=len(traj_scores),
    )
