"""Substrate calibration report.

The reproduction's validity rests on the synthetic gate matching the
statistics the paper measures on real checkpoints.  This module measures
those statistics directly on a model configuration and checks them against
the calibration targets, producing a report that tests and users can audit:

- *routing stability*: consecutive same-context iterations activate mostly
  the same experts (what makes caching and maps work at all);
- *load balance*: long-run expert usage is near-uniform (§2.3's
  load-balancing-loss signature);
- *speculation decay*: hidden-state speculation is accurate one layer ahead
  and degrades with distance (Fig. 4's Speculate curve);
- *semantic separation*: same-cluster prompts embed closer than
  cross-cluster prompts (what semantic search relies on).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.moe.config import MoEModelConfig
from repro.moe.gating import SyntheticGate, top_k_indices
from repro.moe.model import MoEModel


@dataclass(frozen=True)
class CalibrationReport:
    """Measured substrate statistics with pass/fail targets."""

    routing_stability: float
    balance_max_fraction: float
    balance_min_fraction: float
    speculation_accuracy: dict[int, float]
    semantic_same_cluster: float
    semantic_cross_cluster: float

    def checks(self) -> dict[str, bool]:
        """Target predicates derived from the paper's measurements."""
        j_uniform = 1.0  # fractions below are already normalized by 1/J
        spec = self.speculation_accuracy
        distances = sorted(spec)
        return {
            "stable_routing": self.routing_stability > 0.75,
            "balanced_usage": (
                self.balance_max_fraction < 2.5 * j_uniform
                and self.balance_min_fraction > 0.3 * j_uniform
            ),
            "speculation_accurate_nearby": spec[distances[0]] > 0.6,
            "speculation_decays": spec[distances[0]]
            > spec[distances[-1]] + 0.05,
            "semantic_separation": self.semantic_same_cluster
            > self.semantic_cross_cluster + 0.2,
        }

    def passed(self) -> bool:
        """True when every calibration target is met."""
        return all(self.checks().values())


def measure_routing_stability(
    config: MoEModelConfig, trials: int = 200, seed: int = 0
) -> float:
    """Mean consecutive top-K overlap for same-(cluster, phase) samples."""
    gate = SyntheticGate(config, seed=seed)
    rng = np.random.default_rng(seed + 1)
    profile = config.routing
    overlaps = []
    for _ in range(trials):
        c = int(rng.integers(profile.num_clusters))
        s = int(rng.integers(profile.phases_per_cluster))
        a = gate.sample_decode(c, s, rng)
        b = gate.sample_decode(c, s, rng)
        for x, y in zip(a.activated, b.activated):
            overlaps.append(
                len(set(x.tolist()) & set(y.tolist())) / len(x)
            )
    return float(np.mean(overlaps))


def measure_load_balance(
    config: MoEModelConfig, trials: int = 400, seed: int = 0
) -> tuple[float, float]:
    """(max, min) expert usage normalized by the uniform share 1/J."""
    gate = SyntheticGate(config, seed=seed)
    rng = np.random.default_rng(seed + 2)
    profile = config.routing
    counts = np.zeros(config.experts_per_layer)
    for _ in range(trials):
        c = int(rng.integers(profile.num_clusters))
        s = int(rng.integers(profile.phases_per_cluster))
        sample = gate.sample_decode(c, s, rng)
        for activated in sample.activated:
            counts[activated] += 1
    fractions = counts / counts.sum() * config.experts_per_layer
    return float(fractions.max()), float(fractions.min())


def measure_speculation_accuracy(
    config: MoEModelConfig,
    distances: tuple[int, ...] = (1, 3, 6),
    trials: int = 150,
    seed: int = 0,
) -> dict[int, float]:
    """Top-K containment of the speculation oracle per distance."""
    if not distances:
        raise ConfigError("need at least one distance")
    gate = SyntheticGate(config, seed=seed)
    rng = np.random.default_rng(seed + 3)
    out: dict[int, float] = {}
    for distance in distances:
        if distance >= config.num_layers:
            raise ConfigError(
                f"distance {distance} >= num_layers {config.num_layers}"
            )
        hits = total = 0
        for _ in range(trials):
            sample = gate.sample_decode(0, 0, rng)
            target = int(rng.integers(distance, config.num_layers))
            predicted = gate.speculate(sample.logits, target, distance, rng)
            pred_set = set(
                top_k_indices(predicted, config.top_k).tolist()
            )
            actual = set(sample.activated[target].tolist())
            hits += len(pred_set & actual)
            total += config.top_k
        out[distance] = hits / total
    return out


def measure_semantic_separation(
    config: MoEModelConfig, trials: int = 100, seed: int = 0
) -> tuple[float, float]:
    """(same-cluster, cross-cluster) mean embedding cosine."""
    model = MoEModel(config, seed=seed)
    rng = np.random.default_rng(seed + 4)
    profile = config.routing
    same, cross = [], []
    for _ in range(trials):
        c = int(rng.integers(profile.num_clusters))
        other = int(
            (c + 1 + rng.integers(profile.num_clusters - 1))
            % profile.num_clusters
        ) if profile.num_clusters > 1 else c
        a = model.start_session(c, 4, 1, seed=int(rng.integers(2**31)))
        b = model.start_session(c, 4, 1, seed=int(rng.integers(2**31)))
        d = model.start_session(other, 4, 1, seed=int(rng.integers(2**31)))
        same.append(float(a.embedding @ b.embedding))
        cross.append(float(a.embedding @ d.embedding))
    return float(np.mean(same)), float(np.mean(cross))


def calibration_report(
    config: MoEModelConfig, seed: int = 0
) -> CalibrationReport:
    """Measure all substrate statistics for one model configuration."""
    balance_max, balance_min = measure_load_balance(config, seed=seed)
    same, cross = measure_semantic_separation(config, seed=seed)
    distances = tuple(
        d for d in (1, 3, 6) if d < config.num_layers
    ) or (1,)
    return CalibrationReport(
        routing_stability=measure_routing_stability(config, seed=seed),
        balance_max_fraction=balance_max,
        balance_min_fraction=balance_min,
        speculation_accuracy=measure_speculation_accuracy(
            config, distances=distances, seed=seed
        ),
        semantic_same_cluster=same,
        semantic_cross_cluster=cross,
    )
