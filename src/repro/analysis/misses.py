"""Miss-cause taxonomy from engine event traces.

An expert miss is not one phenomenon.  Classifying each miss explains
*where* a policy loses its hit rate and which lever fixes it:

- ``cold``      — the expert's first-ever use in the run; no policy can
                  hit it (only a warm start can);
- ``late``      — a prefetch was in flight but had not landed when the
                  gate named the expert (fix: larger prefetch distance or
                  more link bandwidth);
- ``capacity``  — the expert was resident earlier but was evicted between
                  uses (fix: more cache or better eviction scoring);
- ``unpredicted`` — the expert was used before and was still absent with
                  no transfer in flight: the tracker simply did not
                  predict it (fix: better matching).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serving.events import EventKind, EventRecorder
from repro.types import ExpertId

MISS_CAUSES = ("cold", "late", "capacity", "unpredicted")


@dataclass(frozen=True)
class MissBreakdown:
    """Counts per miss cause, plus the totals they explain."""

    cold: int
    late: int
    capacity: int
    unpredicted: int
    hits: int

    @property
    def total_misses(self) -> int:
        return self.cold + self.late + self.capacity + self.unpredicted

    @property
    def total(self) -> int:
        return self.total_misses + self.hits

    def fractions(self) -> dict[str, float]:
        """Miss causes as fractions of all activations."""
        total = self.total
        if total == 0:
            return {cause: 0.0 for cause in MISS_CAUSES}
        return {
            "cold": self.cold / total,
            "late": self.late / total,
            "capacity": self.capacity / total,
            "unpredicted": self.unpredicted / total,
        }

    def format(self) -> str:
        """One-line human-readable rendering of the counts."""
        parts = [f"hits={self.hits}"]
        parts += [
            f"{cause}={getattr(self, cause)}" for cause in MISS_CAUSES
        ]
        return " ".join(parts)


def classify_misses(recorder: EventRecorder) -> MissBreakdown:
    """Classify every recorded miss by walking the event stream in order."""
    seen: set[ExpertId] = set()
    evicted_since_use: set[ExpertId] = set()
    counts = {cause: 0 for cause in MISS_CAUSES}
    hits = 0
    pending_miss: ExpertId | None = None
    pending_was_cold = False
    pending_was_capacity = False

    def resolve_pending(as_cause: str | None) -> None:
        nonlocal pending_miss
        if pending_miss is None:
            return
        if as_cause is None:
            # No stall/load event followed: the miss was counted at gate
            # time but the expert arrived before serving reached it —
            # effectively a late prefetch.
            counts["late"] += 1
        else:
            counts[as_cause] += 1
        pending_miss = None

    for event in recorder.events:
        if event.kind is EventKind.EXPERT_MISS:
            resolve_pending(None)
            assert event.expert is not None
            pending_miss = event.expert
            pending_was_cold = event.expert not in seen
            pending_was_capacity = event.expert in evicted_since_use
            seen.add(event.expert)
            evicted_since_use.discard(event.expert)
        elif event.kind is EventKind.EXPERT_HIT:
            resolve_pending(None)
            assert event.expert is not None
            hits += 1
            seen.add(event.expert)
            evicted_since_use.discard(event.expert)
        elif event.kind is EventKind.PREFETCH_STALL:
            if pending_miss == event.expert:
                resolve_pending("late")
        elif event.kind is EventKind.ONDEMAND_LOAD:
            if pending_miss == event.expert:
                if pending_was_cold:
                    resolve_pending("cold")
                elif pending_was_capacity:
                    resolve_pending("capacity")
                else:
                    resolve_pending("unpredicted")
        elif event.kind is EventKind.EVICTION:
            assert event.expert is not None
            if event.expert in seen:
                evicted_since_use.add(event.expert)
    resolve_pending(None)
    return MissBreakdown(hits=hits, **counts)
