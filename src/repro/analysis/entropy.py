"""Shannon-entropy analysis of expert patterns (paper §2.4, Fig. 3).

The paper quantifies predictability with the Shannon entropy of expert
activation patterns per MoE layer:

- *fine-grained*: one inference iteration's gate probability distribution
  (an expert map row) — peaked, low entropy;
- *coarse-grained*: activation counts aggregated over all of a request's
  iterations (MoE-Infinity-style tracking), normalized per layer — pushed
  toward uniform by load-balanced routing and phase drift, high entropy.

Entropies are in bits; the maximum for a layer with J experts is log2(J).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.workloads.profiler import RequestTrace


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Entropy (bits) of one probability vector; zero entries contribute 0."""
    p = np.asarray(probabilities, dtype=np.float64)
    if p.ndim != 1:
        raise ConfigError("shannon_entropy expects a 1-D vector")
    if np.any(p < -1e-9):
        raise ConfigError("probabilities must be >= 0")
    total = p.sum()
    if total <= 0:
        raise ConfigError("probability vector sums to 0")
    p = p / total
    nonzero = p[p > 0]
    return float(-(nonzero * np.log2(nonzero)).sum())


def activation_entropy_per_layer(grid: np.ndarray) -> np.ndarray:
    """Per-layer entropy of a (counts or probability) grid ``(L, J)``."""
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ConfigError("grid must be (L, J)")
    return np.array([shannon_entropy(row) for row in grid])


def _coarse_counts(trace: RequestTrace) -> np.ndarray:
    return trace.activation_counts()


def coarse_fine_entropy(
    traces: list[RequestTrace],
) -> tuple[np.ndarray, np.ndarray]:
    """Mean per-layer entropy of coarse and fine patterns (Fig. 3b).

    Returns ``(coarse, fine)`` arrays of shape ``(L,)``: the request-level
    aggregated activation-count entropy vs the iteration-level gate
    distribution entropy, averaged over all traces/iterations.
    """
    if not traces:
        raise ConfigError("need at least one trace")
    coarse = np.mean(
        [activation_entropy_per_layer(_coarse_counts(t)) for t in traces],
        axis=0,
    )
    fine_rows = [
        activation_entropy_per_layer(m)
        for t in traces
        for m in t.iteration_maps
    ]
    fine = np.mean(fine_rows, axis=0)
    return coarse, fine


def entropy_through_iterations(
    traces: list[RequestTrace],
    max_iterations: int | None = None,
    skip_prefill: bool = True,
) -> np.ndarray:
    """Mean entropy of cumulatively aggregated patterns (Fig. 3c).

    Element ``i`` is the mean (over traces and layers) entropy of the
    activation counts aggregated over the first ``i+1`` decode iterations.
    Aggregation makes the pattern progressively less predictable, so the
    curve rises.  The prefill iteration is skipped by default: its
    activation set is a union over all prompt tokens and would inflate the
    starting point (the paper's per-iteration analysis is token-level).
    """
    if not traces:
        raise ConfigError("need at least one trace")
    start = 1 if skip_prefill else 0
    usable = [t for t in traces if len(t.iteration_activated) > start]
    if not usable:
        raise ConfigError("no traces with decode iterations")
    horizon = max(len(t.iteration_activated) - start for t in usable)
    if max_iterations is not None:
        horizon = min(horizon, max_iterations)
    per_iteration: list[list[float]] = [[] for _ in range(horizon)]
    for trace in usable:
        first = trace.iteration_maps[0]
        counts = np.zeros_like(first, dtype=np.float64)
        iterations = trace.iteration_activated[start : start + horizon]
        for i, activated in enumerate(iterations):
            for layer, experts in enumerate(activated):
                counts[layer, experts] += 1.0
            per_iteration[i].append(
                float(np.mean(activation_entropy_per_layer(counts)))
            )
    return np.array(
        [float(np.mean(vals)) for vals in per_iteration if vals]
    )


def activation_heatmaps(
    trace: RequestTrace, iteration: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """(coarse, fine) heatmaps for Fig. 3a.

    ``coarse`` is the request-aggregated activation-count grid; ``fine`` is
    the chosen iteration's gate probability grid.
    """
    if not 0 <= iteration < len(trace.iteration_maps):
        raise ConfigError(
            f"iteration {iteration} out of range "
            f"[0, {len(trace.iteration_maps)})"
        )
    return _coarse_counts(trace), trace.iteration_maps[iteration].copy()
