"""Analyses from the paper's motivation and formulation sections.

- :mod:`repro.analysis.entropy` — Shannon-entropy comparison of coarse vs
  fine expert patterns (Fig. 3).
- :mod:`repro.analysis.tracking` — offline hit-rate evaluation of expert
  pattern trackers at varying prefetch distances (Figs. 4 and 12a).
- :mod:`repro.analysis.correlation` — Pearson correlation between match
  similarity and hit rate (Fig. 8).
- :mod:`repro.analysis.ilp` — the §3.3 offloading objective, a Belady
  hindsight bound, and an LP lower bound (scipy) for small instances.
"""

from repro.analysis.entropy import (
    shannon_entropy,
    activation_entropy_per_layer,
    coarse_fine_entropy,
    entropy_through_iterations,
    activation_heatmaps,
)
from repro.analysis.tracking import (
    TrackerHitRates,
    evaluate_fine_grained,
    evaluate_coarse_grained,
    evaluate_speculative,
)
from repro.analysis.correlation import (
    CorrelationResult,
    similarity_hitrate_correlation,
)
from repro.analysis.ilp import (
    activation_sequence,
    belady_min_misses,
    evaluate_cache_schedule,
    lp_lower_bound,
    ondemand_loading_latency,
)
from repro.analysis.coverage import (
    CoveragePoint,
    coverage_curve,
    paper_capacity_bounds,
)
from repro.analysis.calibration import (
    CalibrationReport,
    calibration_report,
)
from repro.analysis.misses import MissBreakdown, classify_misses

__all__ = [
    "shannon_entropy",
    "activation_entropy_per_layer",
    "coarse_fine_entropy",
    "entropy_through_iterations",
    "activation_heatmaps",
    "TrackerHitRates",
    "evaluate_fine_grained",
    "evaluate_coarse_grained",
    "evaluate_speculative",
    "CorrelationResult",
    "similarity_hitrate_correlation",
    "activation_sequence",
    "belady_min_misses",
    "evaluate_cache_schedule",
    "lp_lower_bound",
    "ondemand_loading_latency",
    "CoveragePoint",
    "coverage_curve",
    "paper_capacity_bounds",
    "CalibrationReport",
    "calibration_report",
    "MissBreakdown",
    "classify_misses",
]
