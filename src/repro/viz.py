"""Dependency-free terminal visualization of regenerated figures.

The benchmark harness regenerates the paper's data series; these helpers
render them in the terminal — horizontal bar charts for Fig. 9/12-style
comparisons, line plots for Fig. 11/13-style sweeps, and sparklines for
quick glances — without pulling in matplotlib (the environment is
offline).  Used by the ``figures`` CLI command and available to users.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ConfigError

_BLOCKS = " ▏▎▍▌▋▊▉█"
_SPARKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    values: Mapping[str, float],
    width: int = 40,
    unit: str = "",
    fmt: str = "{:.3f}",
) -> str:
    """Horizontal bar chart, one row per labeled value."""
    if not values:
        raise ConfigError("bar_chart needs at least one value")
    if width < 1:
        raise ConfigError("width must be >= 1")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = []
    for label, value in values.items():
        filled = value / peak * width
        whole = int(filled)
        frac = filled - whole
        bar = "█" * whole
        if frac > 0 and whole < width:
            bar += _BLOCKS[int(frac * (len(_BLOCKS) - 1))]
        rendered = fmt.format(value)
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| {rendered}{unit}"
        )
    return "\n".join(lines)


def sparkline(series: Sequence[float]) -> str:
    """One-line sparkline of a numeric series."""
    values = [float(v) for v in series]
    if not values:
        raise ConfigError("sparkline needs at least one value")
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        return _SPARKS[3] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / (hi - lo) * (len(_SPARKS) - 1))
        out.append(_SPARKS[idx])
    return "".join(out)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 12,
) -> str:
    """Multi-series ASCII scatter/line plot with shared axes.

    ``series`` maps a label to (x, y) points; each series is drawn with a
    distinct glyph and the legend is appended below the axes.
    """
    if not series:
        raise ConfigError("line_plot needs at least one series")
    if width < 4 or height < 3:
        raise ConfigError("plot must be at least 4x3")
    glyphs = "ox+*#@%&"
    all_points = [p for pts in series.values() for p in pts]
    if not all_points:
        raise ConfigError("line_plot needs at least one point")
    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for (label, points), glyph in zip(series.items(), glyphs):
        for x, y in points:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = glyph
    lines = [f"{y_hi:10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{y_lo:10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{x_lo:<.3g}" + " " * max(width - 12, 1) + f"{x_hi:>.3g}"
    )
    legend = "   ".join(
        f"{glyph}={label}"
        for (label, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
