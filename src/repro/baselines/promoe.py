"""ProMoE baseline: stride-based learned speculative prefetching.

Song et al.'s proactive-caching design as the paper reproduces it (§6.1):
per-layer learned predictors speculate expert activations a fixed stride
ahead of the compute front, and prefetching runs asynchronously so
prediction does not block inference.  The learned predictor is modeled as
the speculation oracle with a quality factor below 1 (better than raw
hidden-state reuse at the same distance, still decaying with stride).
"""

from __future__ import annotations

from repro.baselines.base import BasePolicy, LFUTracker
from repro.serving.engine import IterationContext, PolicyAction
from repro.types import ExpertId


class ProMoEPolicy(BasePolicy):
    """Asynchronous stride speculation with an LFU cache."""

    name = "promoe"

    PREDICT_SECONDS = 0.003
    """Modeled predictor cost per prediction point.

    ProMoE's per-layer learned predictors execute on the GPU and contend
    with decode compute; in the paper's best-effort reproduction (built on
    the MoE-Infinity codebase, §6.1) this cost lands on the critical path,
    which is why the paper measures ProMoE's TPOT above MoE-Infinity's even
    though its hit rate is higher (Fig. 9)."""

    def __init__(
        self, prefetch_distance: int = 3, predictor_quality: float = 0.45
    ) -> None:
        super().__init__()
        if prefetch_distance < 1:
            raise ValueError("prefetch_distance must be >= 1")
        if predictor_quality <= 0:
            raise ValueError("predictor_quality must be > 0")
        self.prefetch_distance = prefetch_distance
        self.predictor_quality = predictor_quality
        self._lfu = LFUTracker()

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        target = layer + self.prefetch_distance
        if target >= self.config.num_layers:
            return PolicyAction()
        instructions = []
        for b in range(ctx.batch_size):
            predicted = ctx.speculate(
                b,
                target,
                self.prefetch_distance,
                noise_multiplier=self.predictor_quality,
            )
            instructions.extend(
                self.instructions_for_topk(target, predicted, self.config.top_k)
            )
        return PolicyAction(
            prefetch=instructions,
            sync_overheads={"predict": self.PREDICT_SECONDS},
        )

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        self._lfu.touch(expert, now)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        return self._lfu.eviction_priority(expert, now)
