"""MoE-Infinity baseline: request-level Expert Activation Matrix tracking.

Xue et al.'s design as characterized by the paper (§2.4, §6.1): each served
request contributes an Expert Activation Matrix (EAM) — per-(layer, expert)
activation *counts* aggregated over all of the request's iterations.  At
serving time the current request's partial counts are cosine-matched against
the EAM collection and the matched EAM's most-activated experts are
prefetched for upcoming layers; the first ``d`` layers fall back to global
expert popularity.  Prediction runs synchronously with inference (a fixed
per-layer cost), and the cache is LFU.

Because counts aggregate over iterations, the matched patterns are
coarse-grained: near-uniform under load-balanced routing, which is exactly
the weakness fMoE's iteration-level expert maps fix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.base import BasePolicy, LFUTracker
from repro.moe.embeddings import cosine_similarity_matrix
from repro.serving.engine import IterationContext, PolicyAction
from repro.types import ExpertId


class MoEInfinityPolicy(BasePolicy):
    """EAM-guided prefetching with an LFU cache."""

    name = "moe-infinity"

    PREDICT_SECONDS = 0.0008
    """Modeled synchronous prediction cost per prediction point."""

    def __init__(
        self,
        prefetch_distance: int = 3,
        max_matrices: int = 4096,
        prefetch_width_factor: float = 2.0,
    ) -> None:
        super().__init__()
        if prefetch_distance < 1:
            raise ValueError("prefetch_distance must be >= 1")
        if prefetch_width_factor < 1.0:
            raise ValueError("prefetch_width_factor must be >= 1")
        self.prefetch_distance = prefetch_distance
        self.max_matrices = max_matrices
        self.prefetch_width_factor = prefetch_width_factor
        self._lfu = LFUTracker()
        self._eams: list[np.ndarray] = []  # flattened normalized counts
        self._eam_grids: list[np.ndarray] = []  # (L, J) raw counts
        self._popularity: np.ndarray | None = None
        # Partial activation counts of in-flight requests, keyed by request
        # id: batch membership can shrink as requests finish early.
        self._request_counts: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # History
    # ------------------------------------------------------------------ #

    def warm(self, traces: Sequence) -> None:
        for trace in traces:
            self._add_eam(trace.activation_counts())

    def _add_eam(self, counts: np.ndarray) -> None:
        if counts.sum() == 0:
            return
        if len(self._eams) >= self.max_matrices:
            self._eams.pop(0)
            self._eam_grids.pop(0)
        flat = counts.ravel().astype(np.float64)
        flat = flat / np.linalg.norm(flat)
        self._eams.append(flat)
        self._eam_grids.append(counts.copy())
        if self._popularity is None:
            self._popularity = counts.copy()
        else:
            self._popularity += counts

    # ------------------------------------------------------------------ #
    # Hooks
    # ------------------------------------------------------------------ #

    def on_request_start(self, request, embedding) -> None:
        config = self.config
        self._request_counts[request.request_id] = np.zeros(
            (config.num_layers, config.experts_per_layer)
        )

    def on_request_end(self, request) -> None:
        counts = self._request_counts.pop(request.request_id, None)
        if counts is not None:
            self._add_eam(counts)

    def on_iteration_start(self, ctx: IterationContext) -> PolicyAction:
        config = self.config
        if self._popularity is None:
            return PolicyAction()
        # Initial layers: coarse rule — globally most popular experts.
        width = self._prefetch_width()
        instructions = []
        for layer in range(min(self.prefetch_distance, config.num_layers)):
            instructions.extend(
                self.instructions_for_topk(
                    layer, self._popularity[layer], width
                )
            )
        return PolicyAction(
            prefetch=instructions,
            sync_overheads={"predict": self.PREDICT_SECONDS},
        )

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        counts = [
            self._request_counts[r.request_id] for r in ctx.requests
        ]
        for grid, activated in zip(counts, ctx.activated_at(layer)):
            grid[layer, activated] += 1.0
        target = layer + self.prefetch_distance
        if target >= self.config.num_layers or not self._eams:
            return PolicyAction(
                sync_overheads={"predict": self.PREDICT_SECONDS}
            )
        stored = np.stack(self._eams)
        partial = np.stack([grid.ravel() for grid in counts])
        scores = cosine_similarity_matrix(partial, stored)
        width = self._prefetch_width()
        instructions = []
        for b in range(len(counts)):
            best = int(np.argmax(scores[b]))
            row = self._eam_grids[best][target]
            instructions.extend(
                self.instructions_for_topk(target, row, width)
            )
        return PolicyAction(
            prefetch=instructions,
            sync_overheads={"predict": self.PREDICT_SECONDS},
        )

    def _prefetch_width(self) -> int:
        """Experts prefetched per layer: EAM rows rank more than top-K."""
        return int(
            np.ceil(self.config.top_k * self.prefetch_width_factor)
        )

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        self._lfu.touch(expert, now)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        return self._lfu.eviction_priority(expert, now)
