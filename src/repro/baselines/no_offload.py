"""No-offload reference: every expert resident in GPU memory.

The latency floor of the latency-memory trade-off (paper Fig. 1b): zero
misses, but the cache budget must cover the full expert footprint.
"""

from __future__ import annotations

from repro.baselines.base import BasePolicy
from repro.errors import CapacityError
from repro.types import ExpertId


class NoOffloadPolicy(BasePolicy):
    """Preloads all experts at attach time; never evicts."""

    name = "no-offload"

    def attach(self, engine) -> None:
        super().attach(engine)
        config = engine.config
        needed = config.total_expert_bytes
        if engine.pool.cache_budget_bytes < needed:
            raise CapacityError(
                "no-offload requires the cache budget to hold every expert "
                f"({needed} bytes > {engine.pool.cache_budget_bytes})"
            )
        engine.pool.preload(
            ExpertId(layer, j)
            for layer in range(config.num_layers)
            for j in range(config.experts_per_layer)
        )

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        raise CapacityError("no-offload must never evict")
