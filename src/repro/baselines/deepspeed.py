"""DeepSpeed-Inference baseline: expert-agnostic layer-wise offloading.

The paper's fairness-adjusted variant (§6.1): parameters stream through GPU
memory layer by layer with *no* expert awareness — when a layer is reached,
every non-resident expert of that layer is pulled from host memory as one
sequential block, whether or not the gate will activate it — plus an expert
cache so repeated activations can hit.  Being expert-agnostic, the cache
has no routing information and falls back to recency (LRU), where "use"
means actual activation.

Two properties put this baseline at the worst corner of the latency-memory
trade-off (Figs. 9, 11): the layer block transfers serially on the critical
path (layer-wise parameter offloading has no per-expert parallelism and no
compute/transfer overlap), and the useless copies of never-activated
experts pollute the cache.
"""

from __future__ import annotations

from repro.baselines.base import BasePolicy, LRUTracker
from repro.serving.engine import IterationContext, PolicyAction
from repro.types import ExpertId


class DeepSpeedPolicy(BasePolicy):
    """Serial layer-wise expert streaming with an LRU expert cache."""

    name = "deepspeed-inference"

    def __init__(self) -> None:
        super().__init__()
        self._lru = LRUTracker()

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        assert self.engine is not None
        pool = self.pool
        now = self.engine.now
        load_seconds = self.engine.hardware.expert_load_seconds(self.config)
        # Expert-agnostic streaming: every non-resident expert of the layer
        # crosses PCIe serially before the FFN runs ...
        missing = [
            ExpertId(layer, j)
            for j in range(self.config.experts_per_layer)
            if not pool.is_tracked(ExpertId(layer, j))
        ]
        if not missing:
            return PolicyAction()
        # ... but only the experts the gate actually uses graduate from the
        # staging buffer into the (fairness-added) expert cache.
        activated: set[int] = set()
        for row in ctx.activated_at(layer):
            activated.update(int(j) for j in row)
        for expert in missing:
            if expert.expert in activated:
                pool.insert_blocking(expert, now)
        return PolicyAction(
            sync_overheads={"layer_stream": len(missing) * load_seconds}
        )

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        self._lru.touch(expert, now)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        return self._lru.eviction_priority(expert, now)
