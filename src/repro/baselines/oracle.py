"""Hindsight-optimal prefetching: an upper bound, not a paper baseline.

Knows each iteration's true activations the moment the iteration starts and
prefetches exactly those experts, honoring the prefetch distance (layers
closer than the distance at iteration start cannot be hidden).  Used by the
extension benches to quantify how much headroom remains above fMoE.
"""

from __future__ import annotations

from repro.baselines.base import BasePolicy, LFUTracker
from repro.serving.engine import (
    IterationContext,
    PolicyAction,
    PrefetchInstruction,
)
from repro.types import ExpertId


class OraclePolicy(BasePolicy):
    """Prefetches the ground-truth activation set of every layer."""

    name = "oracle"

    def __init__(self, prefetch_distance: int = 3) -> None:
        super().__init__()
        if prefetch_distance < 1:
            raise ValueError("prefetch_distance must be >= 1")
        self.prefetch_distance = prefetch_distance
        self._lfu = LFUTracker()
        # Belady bookkeeping for the in-flight iteration: the next layer
        # (>= compute front) at which each expert is known to be needed.
        self._next_use: dict[ExpertId, int] = {}
        self._front = 0

    def _instructions(self, ctx: IterationContext, layer: int):
        instructions = []
        for activated in ctx.oracle_activated_at(layer):
            for j in activated:
                instructions.append(
                    PrefetchInstruction(
                        expert=ExpertId(layer, int(j)),
                        priority=float(self.config.num_layers - layer),
                    )
                )
        return instructions

    def on_iteration_start(self, ctx: IterationContext) -> PolicyAction:
        # Perfect predictions, same issue window as fMoE: the first d
        # layers at iteration start, then d layers ahead of the compute
        # front — so the bound isolates prediction quality, not timing.
        self._front = 0
        self._next_use = {}
        for layer in range(self.config.num_layers):
            for activated in ctx.oracle_activated_at(layer):
                for j in activated:
                    self._next_use.setdefault(ExpertId(layer, int(j)), layer)
        instructions = []
        for layer in range(min(self.prefetch_distance, self.config.num_layers)):
            instructions.extend(self._instructions(ctx, layer))
        return PolicyAction(prefetch=instructions)

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        self._front = layer
        target = layer + self.prefetch_distance
        if target >= self.config.num_layers:
            return PolicyAction()
        return PolicyAction(prefetch=self._instructions(ctx, target))

    def on_iteration_end(self, ctx: IterationContext) -> None:
        self._next_use = {}
        self._front = 0

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        self._lfu.touch(expert, now)
        # This layer's use is spent; the expert's remaining value is
        # whatever later layer (if any) activates it again.
        if self._next_use.get(expert, -1) <= expert.layer:
            self._next_use.pop(expert, None)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        # Belady with hindsight: an expert still needed this iteration is
        # kept (negative score, sooner use → kept longer); everything else
        # falls back to LFU (positive score) and is evicted first.
        next_use = self._next_use.get(expert)
        if next_use is not None and next_use >= self._front:
            return float(next_use - self.config.num_layers)
        return self._lfu.eviction_priority(expert, now)
