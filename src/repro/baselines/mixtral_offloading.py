"""Mixtral-Offloading baseline: LRU cache + synchronous speculation.

Eliseev & Mazur's design (paper §2.4, §6.1): at every layer, the next
layer's gate is applied speculatively to the current hidden state and the
predicted top-K experts are prefetched *synchronously* — compute waits for
the copies.  Distance-1 speculation is accurate (hence the highest baseline
hit rate in Fig. 9) but the synchronous waits make its TTFT/TPOT poor.
"""

from __future__ import annotations

from repro.baselines.base import BasePolicy, LRUTracker
from repro.serving.engine import IterationContext, PolicyAction
from repro.types import ExpertId


class MixtralOffloadingPolicy(BasePolicy):
    """Distance-1 synchronous speculative prefetch over an LRU cache."""

    name = "mixtral-offloading"

    #: Modeled cost of running the next layer's gate on current activations.
    SPECULATE_SECONDS = 0.0005

    def __init__(self, prefetch_distance: int = 1) -> None:
        super().__init__()
        if prefetch_distance < 1:
            raise ValueError("prefetch_distance must be >= 1")
        self.prefetch_distance = prefetch_distance
        self._lru = LRUTracker()

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        target = layer + self.prefetch_distance
        if target >= self.config.num_layers:
            return PolicyAction()
        instructions = []
        for b in range(ctx.batch_size):
            predicted = ctx.speculate(b, target, self.prefetch_distance)
            instructions.extend(
                self.instructions_for_topk(target, predicted, self.config.top_k)
            )
        return PolicyAction(
            prefetch=instructions,
            sync_overheads={"speculate": self.SPECULATE_SECONDS},
            block_until_arrival=True,
        )

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        self._lru.touch(expert, now)

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        return self._lru.eviction_priority(expert, now)
