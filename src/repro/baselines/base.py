"""Base class and shared cache trackers for offloading policies."""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.serving.engine import (
    IterationContext,
    PolicyAction,
    PrefetchInstruction,
)
from repro.serving.request import Request
from repro.types import ExpertId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.engine import ServingEngine
    from repro.workloads.profiler import RequestTrace


class LRUTracker:
    """Least-recently-used bookkeeping for eviction scoring."""

    def __init__(self) -> None:
        self._last_use: dict[ExpertId, float] = {}

    def touch(self, expert: ExpertId, now: float) -> None:
        """Record a use of ``expert`` at virtual time ``now``."""
        self._last_use[expert] = now

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Older last use → larger score → evicted first."""
        return now - self._last_use.get(expert, -1.0)


class LFUTracker:
    """Least-frequently-used bookkeeping for eviction scoring."""

    def __init__(self) -> None:
        self._freq: dict[ExpertId, int] = defaultdict(int)

    def touch(self, expert: ExpertId, now: float) -> None:
        """Record a use of ``expert`` (time is ignored for LFU)."""
        self._freq[expert] += 1

    def frequency(self, expert: ExpertId) -> int:
        """Total recorded uses of ``expert``."""
        return self._freq[expert]

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Lower visit frequency → larger score → evicted first."""
        return 1.0 / (1.0 + self._freq.get(expert, 0))


class BasePolicy:
    """No-op policy skeleton; subclasses override the hooks they need."""

    name = "base"

    def __init__(self) -> None:
        self.engine: "ServingEngine | None" = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def attach(self, engine: "ServingEngine") -> None:
        """Called once by the engine; gives access to config and pool."""
        self.engine = engine

    @property
    def config(self):
        assert self.engine is not None, "policy not attached to an engine"
        return self.engine.config

    @property
    def pool(self):
        assert self.engine is not None, "policy not attached to an engine"
        return self.engine.pool

    def warm(self, traces: Sequence["RequestTrace"]) -> None:
        """Ingest profiled history before evaluation (offline setting)."""

    # ------------------------------------------------------------------ #
    # Engine hooks (default: do nothing)
    # ------------------------------------------------------------------ #

    def on_request_start(
        self, request: Request, embedding: np.ndarray
    ) -> None:
        """Called before a request's first iteration, with its embedding."""

    def on_request_end(self, request: Request) -> None:
        """Called when a request generates its last token."""

    def on_iteration_start(self, ctx: IterationContext) -> PolicyAction:
        """Called before layer 0 of every iteration (semantic context)."""
        return PolicyAction()

    def on_gate_output(
        self, ctx: IterationContext, layer: int
    ) -> PolicyAction:
        """Called after each layer's gate output is revealed."""
        return PolicyAction()

    def on_expert_served(self, expert: ExpertId, hit: bool, now: float) -> None:
        """Called once per activated expert with its hit/miss outcome."""

    def on_iteration_end(self, ctx: IterationContext) -> PolicyAction:
        """Called after the last layer (map-update point)."""
        return PolicyAction()

    def eviction_priority(self, expert: ExpertId, now: float) -> float:
        """Score an eviction candidate; higher is evicted first."""
        return 0.0

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def instructions_for_topk(
        layer: int, distribution: np.ndarray, k: int, base_priority: float = 0.0
    ) -> list[PrefetchInstruction]:
        """Prefetch the ``k`` most probable experts of one layer."""
        k = min(k, distribution.shape[-1])
        top = np.argsort(distribution)[::-1][:k]
        return [
            PrefetchInstruction(
                expert=ExpertId(layer, int(j)),
                priority=base_priority + float(distribution[j]),
            )
            for j in top
        ]
