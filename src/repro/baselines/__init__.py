"""Offloading policies: the paper's four baselines plus reference bounds.

All policies implement the hook interface defined by
:class:`repro.serving.engine.ServingEngine` via :class:`BasePolicy`:

- :class:`NoOffloadPolicy` — everything resident (latency floor, memory max).
- :class:`DeepSpeedPolicy` — expert-agnostic on-demand loading, no
  prefetching, LRU cache (the paper's fairness-adjusted DeepSpeed-Inference).
- :class:`MixtralOffloadingPolicy` — distance-1 synchronous speculative
  prefetching with an LRU cache.
- :class:`MoEInfinityPolicy` — request-level Expert Activation Matrix
  matching with an LFU cache and synchronous prediction.
- :class:`ProMoEPolicy` — stride-based learned speculative prefetching,
  asynchronous.
- :class:`OraclePolicy` — hindsight-optimal prefetching (upper bound, not a
  paper baseline).
"""

from repro.baselines.base import BasePolicy, LFUTracker, LRUTracker
from repro.baselines.no_offload import NoOffloadPolicy
from repro.baselines.deepspeed import DeepSpeedPolicy
from repro.baselines.mixtral_offloading import MixtralOffloadingPolicy
from repro.baselines.moe_infinity import MoEInfinityPolicy
from repro.baselines.promoe import ProMoEPolicy
from repro.baselines.oracle import OraclePolicy

__all__ = [
    "BasePolicy",
    "LRUTracker",
    "LFUTracker",
    "NoOffloadPolicy",
    "DeepSpeedPolicy",
    "MixtralOffloadingPolicy",
    "MoEInfinityPolicy",
    "ProMoEPolicy",
    "OraclePolicy",
]
