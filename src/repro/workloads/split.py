"""The paper's 7:3 warm/test split (§6.1).

70% of sampled prompts populate fMoE's Expert Map Store (and the baselines'
equivalent history structures) before evaluation; the remaining 30% are
served and measured.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.errors import ConfigError

T = TypeVar("T")


def warm_test_split(
    items: Sequence[T],
    warm_fraction: float = 0.7,
    seed: int = 0,
    shuffle: bool = True,
) -> tuple[list[T], list[T]]:
    """Split ``items`` into (warm, test) lists."""
    if not 0.0 <= warm_fraction <= 1.0:
        raise ConfigError("warm_fraction must be in [0, 1]")
    order = np.arange(len(items))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    cut = int(round(len(items) * warm_fraction))
    warm = [items[i] for i in order[:cut]]
    test = [items[i] for i in order[cut:]]
    return warm, test
