"""Offline profiling: collect routing history used to warm policies.

The paper warms fMoE's Expert Map Store (and, for fairness, MoE-Infinity's
Expert Activation Matrix collection) with 70% of each dataset before the
offline experiments.  This module runs requests through the model substrate
*without* a serving engine and records what each policy's tracker would
have observed: the prompt embedding and every iteration's routing
distributions and activated experts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.moe.model import MoEModel
from repro.serving.request import Request


@dataclass
class RequestTrace:
    """Observed routing history of one profiled request."""

    request: Request
    embedding: np.ndarray
    iteration_maps: list[np.ndarray] = field(default_factory=list)
    """Per-iteration gate distributions, each shape ``(L, J)``."""

    iteration_activated: list[tuple[np.ndarray, ...]] = field(
        default_factory=list
    )
    """Per-iteration tuples of per-layer activated expert indices."""

    iteration_logits: list[np.ndarray] = field(default_factory=list)
    """Per-iteration sampled gate logits (speculation-oracle analyses)."""

    def activation_counts(self) -> np.ndarray:
        """Request-level Expert Activation Matrix (MoE-Infinity's tracker)."""
        if not self.iteration_activated:
            raise ValueError("trace has no iterations")
        layers = len(self.iteration_activated[0])
        first = self.iteration_maps[0]
        counts = np.zeros((layers, first.shape[1]))
        for activated in self.iteration_activated:
            for layer, experts in enumerate(activated):
                counts[layer, experts] += 1.0
        return counts


def collect_history(
    model: MoEModel, requests: Sequence[Request]
) -> list[RequestTrace]:
    """Run requests through the substrate and record their routing."""
    traces: list[RequestTrace] = []
    for request in requests:
        session = model.start_session(
            request.cluster,
            request.input_tokens,
            request.output_tokens,
            seed=request.seed,
        )
        trace = RequestTrace(request=request, embedding=session.embedding)
        while not session.finished:
            routing = session.next_iteration()
            trace.iteration_maps.append(routing.distributions)
            trace.iteration_activated.append(routing.activated)
            trace.iteration_logits.append(routing.logits)
        traces.append(trace)
    return traces
