"""Reading and writing arrival traces in the Azure-trace CSV schema.

The Microsoft Azure LLM inference traces the paper replays (Patel et al.,
Stojkovic et al.) are CSV files with a timestamp and per-request context
and generation token counts.  This module reads that schema into
:class:`~repro.serving.request.Request` objects — assigning topic clusters
(which real traces do not carry) from a seeded Zipf draw — and writes
traces back out, so experiments can run against trace files checked into a
repo or exported from production.

Legacy schema::

    timestamp,input_tokens,output_tokens
    0.000,128,42
    1.532,64,7

Multi-tenant traces carry two extra columns (written only when at least
one request is tagged, so untagged traces stay byte-identical to the
legacy format; both forms read back)::

    timestamp,input_tokens,output_tokens,tenant,tier
    0.000,128,42,acme-premium,premium
    1.532,64,7,initech-batch,batch
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.workloads.datasets import DatasetProfile, LMSYS_LIKE
from repro.workloads.traffic import TIER_PRIORITY

HEADER = ("timestamp", "input_tokens", "output_tokens")
TENANT_HEADER = HEADER + ("tenant", "tier")


def write_trace_csv(requests: Sequence[Request], path: str | Path) -> None:
    """Write requests (sorted by arrival) in the trace schema.

    Emits the 5-column multi-tenant schema iff any request carries a
    tenant or tier tag; otherwise the legacy 3-column file, byte for
    byte, so pre-existing traces round-trip unchanged.
    """
    path = Path(path)
    tagged = any(r.tenant or r.tier for r in requests)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TENANT_HEADER if tagged else HEADER)
        for request in sorted(requests, key=lambda r: r.arrival_time):
            row = [
                f"{request.arrival_time:.3f}",
                request.input_tokens,
                request.output_tokens,
            ]
            if tagged:
                row.extend([request.tenant, request.tier])
            writer.writerow(row)


def _tier_priority(tier: str, path: Path, line_no: int) -> int:
    if not tier:
        return 0
    if tier not in TIER_PRIORITY:
        known = ", ".join(sorted(TIER_PRIORITY))
        raise ConfigError(
            f"{path}:{line_no}: unknown tier {tier!r}; known: {known}"
        )
    return TIER_PRIORITY[tier]


def read_trace_csv(
    path: str | Path,
    profile: DatasetProfile = LMSYS_LIKE,
    seed: int = 0,
    start_id: int = 0,
    max_requests: int | None = None,
) -> list[Request]:
    """Parse a trace CSV into requests.

    Accepts both the legacy 3-column schema and the 5-column
    multi-tenant schema; legacy rows read back untagged (empty tenant and
    tier, priority 0).  Clusters are sampled from ``profile``'s Zipf
    weights (real traces carry no prompt semantics); per-request routing
    seeds derive from the same generator so replays are deterministic —
    and identical across the two schemas for the same timestamp/token
    rows, because the tenant columns consume no randomness.
    """
    path = Path(path)
    rng = np.random.default_rng(seed)
    weights = profile.cluster_weights()
    requests: list[Request] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigError(f"{path}: empty trace file") from None
        normalized = tuple(h.strip().lower() for h in header)
        if normalized == HEADER:
            columns = len(HEADER)
        elif normalized == TENANT_HEADER:
            columns = len(TENANT_HEADER)
        else:
            raise ConfigError(
                f"{path}: expected header {','.join(HEADER)} or "
                f"{','.join(TENANT_HEADER)}, got {','.join(header)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != columns:
                raise ConfigError(
                    f"{path}:{line_no}: expected {columns} columns, "
                    f"got {len(row)}"
                )
            try:
                timestamp = float(row[0])
                input_tokens = int(row[1])
                output_tokens = int(row[2])
            except ValueError as exc:
                raise ConfigError(f"{path}:{line_no}: {exc}") from None
            if timestamp < 0:
                raise ConfigError(
                    f"{path}:{line_no}: negative timestamp {timestamp}"
                )
            tenant = row[3].strip() if columns == 5 else ""
            tier = row[4].strip() if columns == 5 else ""
            requests.append(
                Request(
                    request_id=start_id + len(requests),
                    cluster=int(
                        rng.choice(profile.effective_clusters(), p=weights)
                    ),
                    input_tokens=max(input_tokens, 1),
                    output_tokens=max(output_tokens, 1),
                    arrival_time=timestamp,
                    seed=int(rng.integers(2**31)),
                    priority=_tier_priority(tier, path, line_no),
                    tenant=tenant,
                    tier=tier,
                )
            )
            if max_requests is not None and len(requests) >= max_requests:
                break
    if not requests:
        raise ConfigError(f"{path}: trace contains no requests")
    requests.sort(key=lambda r: r.arrival_time)
    return requests
