"""Reading and writing arrival traces in the Azure-trace CSV schema.

The Microsoft Azure LLM inference traces the paper replays (Patel et al.,
Stojkovic et al.) are CSV files with a timestamp and per-request context
and generation token counts.  This module reads that schema into
:class:`~repro.serving.request.Request` objects — assigning topic clusters
(which real traces do not carry) from a seeded Zipf draw — and writes
traces back out, so experiments can run against trace files checked into a
repo or exported from production.

Schema::

    timestamp,input_tokens,output_tokens
    0.000,128,42
    1.532,64,7
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.workloads.datasets import DatasetProfile, LMSYS_LIKE

HEADER = ("timestamp", "input_tokens", "output_tokens")


def write_trace_csv(requests: Sequence[Request], path: str | Path) -> None:
    """Write requests (sorted by arrival) in the trace schema."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(HEADER)
        for request in sorted(requests, key=lambda r: r.arrival_time):
            writer.writerow(
                [
                    f"{request.arrival_time:.3f}",
                    request.input_tokens,
                    request.output_tokens,
                ]
            )


def read_trace_csv(
    path: str | Path,
    profile: DatasetProfile = LMSYS_LIKE,
    seed: int = 0,
    start_id: int = 0,
    max_requests: int | None = None,
) -> list[Request]:
    """Parse a trace CSV into requests.

    Clusters are sampled from ``profile``'s Zipf weights (real traces carry
    no prompt semantics); per-request routing seeds derive from the same
    generator so replays are deterministic.
    """
    path = Path(path)
    rng = np.random.default_rng(seed)
    weights = profile.cluster_weights()
    requests: list[Request] = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ConfigError(f"{path}: empty trace file") from None
        if tuple(h.strip().lower() for h in header) != HEADER:
            raise ConfigError(
                f"{path}: expected header {','.join(HEADER)}, "
                f"got {','.join(header)}"
            )
        for line_no, row in enumerate(reader, start=2):
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != 3:
                raise ConfigError(
                    f"{path}:{line_no}: expected 3 columns, got {len(row)}"
                )
            try:
                timestamp = float(row[0])
                input_tokens = int(row[1])
                output_tokens = int(row[2])
            except ValueError as exc:
                raise ConfigError(f"{path}:{line_no}: {exc}") from None
            if timestamp < 0:
                raise ConfigError(
                    f"{path}:{line_no}: negative timestamp {timestamp}"
                )
            requests.append(
                Request(
                    request_id=start_id + len(requests),
                    cluster=int(
                        rng.choice(profile.effective_clusters(), p=weights)
                    ),
                    input_tokens=max(input_tokens, 1),
                    output_tokens=max(output_tokens, 1),
                    arrival_time=timestamp,
                    seed=int(rng.integers(2**31)),
                )
            )
            if max_requests is not None and len(requests) >= max_requests:
                break
    if not requests:
        raise ConfigError(f"{path}: trace contains no requests")
    requests.sort(key=lambda r: r.arrival_time)
    return requests
