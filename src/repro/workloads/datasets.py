"""Synthetic prompt corpora shaped like the paper's two datasets.

The offloading policies see prompts only through (a) the semantic embedding,
(b) the routing trajectory, and (c) input/output lengths, so a corpus is
characterized by its topic-cluster mixture and its length distributions.

- *LMSYS-Chat-1M-like*: many short chat prompts with short answers, broad
  topic mixture (mild Zipf skew over clusters).
- *ShareGPT-like*: longer shared conversations with longer answers and a
  more concentrated topic mixture.

Output lengths are scaled down from real corpora (which average hundreds of
tokens) by default so simulated runs finish quickly; the scale is a profile
parameter and the relative structure (one prefill + many decode iterations)
is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical description of one prompt corpus."""

    name: str
    num_clusters: int = 32
    zipf_alpha: float = 1.1
    """Cluster popularity skew (1.0 = mild, larger = more concentrated)."""

    cluster_range: tuple[int, int] | None = None
    """Half-open [lo, hi) topic range this corpus draws from; None = all.

    Distinct corpora cover different (partially overlapping) topic ranges,
    which is what makes cross-dataset transfer a real domain shift."""

    input_log_mean: float = 5.0
    input_log_sigma: float = 0.7
    input_min: int = 8
    input_max: int = 2048

    output_log_mean: float = 3.2
    output_log_sigma: float = 0.6
    output_min: int = 4
    output_max: int = 96

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range knobs."""
        if self.num_clusters < 1:
            raise ConfigError("num_clusters must be >= 1")
        if self.cluster_range is not None:
            lo, hi = self.cluster_range
            if not 0 <= lo < hi <= self.num_clusters:
                raise ConfigError(
                    f"cluster_range {self.cluster_range} outside "
                    f"[0, {self.num_clusters}]"
                )
        if self.input_min < 1 or self.input_max < self.input_min:
            raise ConfigError("invalid input length bounds")
        if self.output_min < 1 or self.output_max < self.output_min:
            raise ConfigError("invalid output length bounds")

    def effective_clusters(self) -> np.ndarray:
        """The topic ids this corpus actually draws from."""
        lo, hi = self.cluster_range or (0, self.num_clusters)
        return np.arange(lo, hi)

    def cluster_weights(self) -> np.ndarray:
        """Zipf weights over this corpus's topic range."""
        count = len(self.effective_clusters())
        ranks = np.arange(1, count + 1, dtype=np.float64)
        weights = ranks**-self.zipf_alpha
        return weights / weights.sum()

    def scaled(self, output_scale: float) -> "DatasetProfile":
        """Profile with output lengths scaled by ``output_scale``."""
        return replace(
            self,
            output_log_mean=self.output_log_mean + float(np.log(output_scale)),
            output_max=max(int(self.output_max * output_scale), self.output_min),
        )


LMSYS_LIKE = DatasetProfile(
    name="lmsys-chat-1m",
    zipf_alpha=1.0,
    cluster_range=(0, 24),  # broad chat topics
    input_log_mean=4.8,  # median prompt ~120 tokens
    input_log_sigma=0.8,
    output_log_mean=3.1,  # median output ~22 tokens (scaled for simulation)
    output_log_sigma=0.55,
)

SHAREGPT_LIKE = DatasetProfile(
    name="sharegpt",
    zipf_alpha=1.35,
    cluster_range=(8, 32),  # partially overlapping, more concentrated
    input_log_mean=5.6,  # median prompt ~270 tokens
    input_log_sigma=0.7,
    output_log_mean=3.5,  # median output ~33 tokens (scaled for simulation)
    output_log_sigma=0.6,
)

DATASET_PROFILES: dict[str, DatasetProfile] = {
    LMSYS_LIKE.name: LMSYS_LIKE,
    SHAREGPT_LIKE.name: SHAREGPT_LIKE,
}


def get_dataset_profile(name: str) -> DatasetProfile:
    """Look up a registered dataset profile by name."""
    try:
        return DATASET_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PROFILES))
        raise ConfigError(f"unknown dataset {name!r}; known: {known}") from None


def _bounded_lognormal(
    rng: np.random.Generator,
    log_mean: float,
    log_sigma: float,
    lo: int,
    hi: int,
    size: int,
) -> np.ndarray:
    draws = rng.lognormal(log_mean, log_sigma, size)
    return np.clip(np.round(draws), lo, hi).astype(np.int64)


def make_dataset(
    profile: DatasetProfile | str,
    size: int,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Sample ``size`` requests from a dataset profile."""
    if isinstance(profile, str):
        profile = get_dataset_profile(profile)
    profile.validate()
    if size < 0:
        raise ConfigError("size must be >= 0")
    rng = np.random.default_rng(seed)
    clusters = rng.choice(
        profile.effective_clusters(), size=size, p=profile.cluster_weights()
    )
    inputs = _bounded_lognormal(
        rng,
        profile.input_log_mean,
        profile.input_log_sigma,
        profile.input_min,
        profile.input_max,
        size,
    )
    outputs = _bounded_lognormal(
        rng,
        profile.output_log_mean,
        profile.output_log_sigma,
        profile.output_min,
        profile.output_max,
        size,
    )
    return [
        Request(
            request_id=start_id + i,
            cluster=int(clusters[i]),
            input_tokens=int(inputs[i]),
            output_tokens=int(outputs[i]),
            seed=int(rng.integers(2**31)),
        )
        for i in range(size)
    ]
