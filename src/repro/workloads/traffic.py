"""Multi-tenant traffic composition: the million-user arrival layer.

The Azure-shaped generator (:mod:`repro.workloads.azure`) emits one tenant
at a time.  Production MoE serving — the regime where fMoE's fine-grained
offloading, ExpertFlow's predictive routing, and ReMoE's reuse boosting
actually separate from baselines — sees *many* tenants at once, each with
its own corpus, diurnal rhythm, burstiness, and SLO tier.  This module
composes that traffic:

- :class:`TenantSpec` describes one tenant: dataset profile, request
  volume, mean rate, burst factor (interarrival CV), a piecewise-constant
  diurnal rate curve, and an SLO tier (``premium``/``standard``/``batch``)
  that maps onto :class:`~repro.serving.request.Request.priority`.
- :func:`stream_traffic` lazily heap-merges per-tenant generators into one
  arrival-ordered request stream.  Generation is blocked at a fixed
  internal granularity (:data:`BLOCK_REQUESTS`), so memory stays
  O(tenants x block) no matter how long the day is — a 1M-request day
  never materializes in RAM.
- :func:`traffic_census` folds a stream into bounded-memory per-tenant /
  per-tier offered-load statistics.

Parity contract: a single tenant with a flat rate curve (and at most one
generation block of requests) reproduces :func:`make_azure_trace`'s RNG
call sequence exactly, so the degenerate storm config is byte-identical
to the legacy Azure path (pinned by ``tests/test_property_traffic.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.workloads.datasets import (
    DatasetProfile,
    _bounded_lognormal,
    get_dataset_profile,
)

#: SLO tiers, lowest priority first.  Index in this tuple == the
#: ``Request.priority`` value the tier maps to, so ``premium`` requests
#: clear any ``priority_bypass_level`` that ``batch`` requests do not.
TIER_NAMES = ("batch", "standard", "premium")

#: tier name -> Request.priority.
TIER_PRIORITY = {name: rank for rank, name in enumerate(TIER_NAMES)}

#: Priority at or above which the storm presets let requests bypass
#: admission control and the shed rung (the ``premium`` tier).
PREMIUM_PRIORITY = TIER_PRIORITY["premium"]

#: Fixed internal generation block.  Per-tenant draws happen in blocks of
#: this many requests regardless of how the consumer chunks the stream,
#: which is what makes the stream byte-identical across consumption
#: patterns (and keeps peak memory at O(tenants x BLOCK_REQUESTS)).
BLOCK_REQUESTS = 4096

#: Seconds in the simulated day the diurnal curves span.
DAY_SECONDS = 86400.0

#: Seed stride between tenants: tenant ``i`` draws from
#: ``config.seed + TENANT_SEED_STRIDE * i``, so tenant 0 of a
#: single-tenant config shares the legacy Azure generator's seed exactly.
TENANT_SEED_STRIDE = 101


def _mean_one(curve: tuple[float, ...]) -> tuple[float, ...]:
    """Normalize a rate curve to mean 1.0 (rate-preserving over a day)."""
    mean = sum(curve) / len(curve)
    return tuple(v / mean for v in curve)


#: Business-hours diurnal shape (24 hourly multipliers, mean 1.0):
#: quiet overnight, ramping through the morning, peaking mid-day.
DIURNAL_BUSINESS = _mean_one(
    (0.35, 0.30, 0.28, 0.28, 0.32, 0.45, 0.70, 1.05, 1.45, 1.70, 1.80, 1.75,
     1.65, 1.70, 1.80, 1.75, 1.60, 1.40, 1.15, 0.95, 0.75, 0.60, 0.50, 0.40)
)

#: Night-heavy batch shape (mean 1.0): the inverse rhythm — batch jobs
#: fill the troughs the interactive tiers leave behind.
DIURNAL_NIGHT = _mean_one(
    (1.70, 1.80, 1.80, 1.75, 1.60, 1.30, 0.95, 0.60, 0.40, 0.30, 0.28, 0.30,
     0.32, 0.30, 0.28, 0.30, 0.40, 0.55, 0.75, 1.00, 1.25, 1.45, 1.60, 1.70)
)

#: Flat curve: constant rate all day (the legacy Azure-trace shape).
FLAT_CURVE = (1.0,)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic contract."""

    name: str
    dataset: str = "lmsys-chat-1m"
    num_requests: int = 64
    mean_interarrival_seconds: float = 2.0
    burstiness_cv: float = 2.0
    """Burst factor: coefficient of variation of interarrival gaps."""

    tier: str = "standard"
    rate_curve: tuple[float, ...] = FLAT_CURVE
    """Piecewise-constant diurnal multipliers spanning one day (wraps)."""

    start_time: float = 0.0

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range knobs."""
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.num_requests < 1:
            raise ConfigError(f"tenant {self.name}: num_requests must be >= 1")
        if self.mean_interarrival_seconds <= 0:
            raise ConfigError(
                f"tenant {self.name}: mean_interarrival_seconds must be > 0"
            )
        if self.burstiness_cv <= 0:
            raise ConfigError(f"tenant {self.name}: burstiness_cv must be > 0")
        if self.tier not in TIER_PRIORITY:
            raise ConfigError(
                f"tenant {self.name}: unknown tier {self.tier!r}; "
                f"known: {', '.join(TIER_NAMES)}"
            )
        if not self.rate_curve or any(m <= 0 for m in self.rate_curve):
            raise ConfigError(
                f"tenant {self.name}: rate_curve must be non-empty "
                "and strictly positive"
            )
        if self.start_time < 0:
            raise ConfigError(f"tenant {self.name}: start_time must be >= 0")
        get_dataset_profile(self.dataset).validate()

    @property
    def priority(self) -> int:
        """The :class:`Request.priority` this tenant's tier maps to."""
        return TIER_PRIORITY[self.tier]

    def rate_multiplier(self, time: float, day_seconds: float) -> float:
        """The diurnal rate multiplier in effect at virtual ``time``."""
        if len(self.rate_curve) == 1:
            return self.rate_curve[0]
        phase = (time % day_seconds) / day_seconds
        index = min(int(phase * len(self.rate_curve)), len(self.rate_curve) - 1)
        return self.rate_curve[index]


@dataclass(frozen=True)
class TrafficConfig:
    """A day of multi-tenant traffic: the tenants plus shared knobs."""

    tenants: tuple[TenantSpec, ...] = field(default_factory=tuple)
    seed: int = 0
    day_seconds: float = DAY_SECONDS

    def validate(self) -> None:
        """Raise :class:`ConfigError` on an inconsistent mix."""
        if not self.tenants:
            raise ConfigError("traffic config needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names in {names}")
        if self.day_seconds <= 0:
            raise ConfigError("day_seconds must be > 0")
        for tenant in self.tenants:
            tenant.validate()

    @property
    def total_requests(self) -> int:
        return sum(t.num_requests for t in self.tenants)

    def tenant_seed(self, index: int) -> int:
        """Arrival-RNG seed for tenant ``index`` (dataset RNG is seed+1)."""
        return self.seed + TENANT_SEED_STRIDE * index

    def tenant_start_id(self, index: int) -> int:
        """First request id of tenant ``index`` (disjoint id ranges)."""
        return sum(t.num_requests for t in self.tenants[:index])


def tenant_arrivals(
    spec: TenantSpec,
    *,
    seed: int = 0,
    start_id: int = 0,
    day_seconds: float = DAY_SECONDS,
) -> Iterator[Request]:
    """Lazily generate one tenant's day, sorted by arrival time.

    Draws happen in fixed blocks of :data:`BLOCK_REQUESTS`; within a block
    the RNG call sequence replicates :func:`make_azure_trace` exactly (one
    dataset stream seeded ``seed + 1``, one gap stream seeded ``seed``),
    so a flat-curve tenant of at most one block is byte-identical to the
    legacy generator.
    """
    spec.validate()
    profile: DatasetProfile = get_dataset_profile(spec.dataset)
    gap_rng = np.random.default_rng(seed)
    dataset_rng = np.random.default_rng(seed + 1)
    clusters = profile.effective_clusters()
    weights = profile.cluster_weights()
    shape = 1.0 / spec.burstiness_cv**2
    scale = spec.mean_interarrival_seconds / shape

    # Arrival arithmetic mirrors make_azure_trace bit for bit in the flat
    # case: a running sum over *all* gaps (including the first) with the
    # first warped gap subtracted from every arrival — the streaming
    # equivalent of ``cumsum(gaps); arrivals -= arrivals[0]``.
    running = 0.0
    base = 0.0
    prev_arrival = spec.start_time
    produced = 0
    first = True
    while produced < spec.num_requests:
        block = min(BLOCK_REQUESTS, spec.num_requests - produced)
        # Same per-block call order as make_dataset: clusters, input
        # lengths, output lengths, then one routing seed per request.
        block_clusters = dataset_rng.choice(clusters, size=block, p=weights)
        block_inputs = _bounded_lognormal(
            dataset_rng,
            profile.input_log_mean,
            profile.input_log_sigma,
            profile.input_min,
            profile.input_max,
            block,
        )
        block_outputs = _bounded_lognormal(
            dataset_rng,
            profile.output_log_mean,
            profile.output_log_sigma,
            profile.output_min,
            profile.output_max,
            block,
        )
        block_seeds = [int(dataset_rng.integers(2**31)) for _ in range(block)]
        gaps = gap_rng.gamma(shape, scale, size=block)
        for i in range(block):
            multiplier = spec.rate_multiplier(prev_arrival, day_seconds)
            running += float(gaps[i]) / multiplier
            if first:
                base = running
                first = False
            arrival = float(spec.start_time + (running - base))
            prev_arrival = arrival
            yield Request(
                request_id=start_id + produced + i,
                cluster=int(block_clusters[i]),
                input_tokens=int(block_inputs[i]),
                output_tokens=int(block_outputs[i]),
                arrival_time=arrival,
                seed=block_seeds[i],
                priority=spec.priority,
                tenant=spec.name,
                tier=spec.tier,
            )
        produced += block


def _arrival_key(request: Request) -> tuple[float, int]:
    return (request.arrival_time, request.request_id)


def stream_traffic(config: TrafficConfig) -> Iterator[Request]:
    """Heap-merge every tenant's lazy stream into one arrival-ordered day.

    Memory is O(tenants x BLOCK_REQUESTS): the merge holds one pending
    request per tenant and each generator holds one draw block.
    """
    config.validate()
    streams = [
        tenant_arrivals(
            tenant,
            seed=config.tenant_seed(index),
            start_id=config.tenant_start_id(index),
            day_seconds=config.day_seconds,
        )
        for index, tenant in enumerate(config.tenants)
    ]
    return heapq.merge(*streams, key=_arrival_key)


def materialize_traffic(config: TrafficConfig) -> list[Request]:
    """The same day fully materialized: per-tenant lists, then one sort.

    The independent reference the property suite checks the lazy merge
    against; only safe at sizes that fit in memory.
    """
    config.validate()
    requests: list[Request] = []
    for index, tenant in enumerate(config.tenants):
        requests.extend(
            tenant_arrivals(
                tenant,
                seed=config.tenant_seed(index),
                start_id=config.tenant_start_id(index),
                day_seconds=config.day_seconds,
            )
        )
    requests.sort(key=_arrival_key)
    return requests


def arrival_chunks(
    config: TrafficConfig, chunk_size: int
) -> Iterator[list[Request]]:
    """Re-batch the lazy stream into lists of at most ``chunk_size``.

    Chunking never changes the stream: concatenating the chunks is
    byte-identical to :func:`stream_traffic` for every chunk size
    (property-pinned), because generation granularity is fixed at
    :data:`BLOCK_REQUESTS` internally.
    """
    if chunk_size < 1:
        raise ConfigError("chunk_size must be >= 1")
    chunk: list[Request] = []
    for request in stream_traffic(config):
        chunk.append(request)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


@dataclass
class TierCensus:
    """Bounded-memory offered-load statistics for one SLO tier."""

    offered: int = 0
    input_tokens: int = 0
    output_tokens: int = 0


@dataclass
class TrafficCensus:
    """Streaming summary of a traffic day (O(tenants) memory)."""

    total_requests: int = 0
    first_arrival: float = 0.0
    last_arrival: float = 0.0
    peak_minute_requests: int = 0
    per_tenant: dict[str, int] = field(default_factory=dict)
    per_tier: dict[str, TierCensus] = field(default_factory=dict)

    @property
    def span_seconds(self) -> float:
        return max(self.last_arrival - self.first_arrival, 0.0)

    @property
    def mean_rate(self) -> float:
        """Mean offered requests/second over the day."""
        if self.span_seconds <= 0:
            return 0.0
        return self.total_requests / self.span_seconds

    @property
    def peak_rate(self) -> float:
        """Peak offered requests/second over any one-minute bucket."""
        return self.peak_minute_requests / 60.0

    def to_dict(self) -> dict:
        """JSON-ready census payload (rates rounded for stable diffs)."""
        return {
            "total_requests": self.total_requests,
            "span_seconds": round(self.span_seconds, 3),
            "mean_rate": round(self.mean_rate, 6),
            "peak_rate": round(self.peak_rate, 6),
            "per_tenant": dict(sorted(self.per_tenant.items())),
            "per_tier": {
                tier: {
                    "offered": census.offered,
                    "input_tokens": census.input_tokens,
                    "output_tokens": census.output_tokens,
                }
                for tier, census in sorted(self.per_tier.items())
            },
        }


def traffic_census(arrivals: Iterable[Request]) -> TrafficCensus:
    """Fold an arrival stream into a census without materializing it."""
    census = TrafficCensus()
    bucket = -1
    bucket_count = 0
    for request in arrivals:
        if census.total_requests == 0:
            census.first_arrival = request.arrival_time
        census.last_arrival = request.arrival_time
        census.total_requests += 1
        census.per_tenant[request.tenant] = (
            census.per_tenant.get(request.tenant, 0) + 1
        )
        tier = census.per_tier.setdefault(request.tier, TierCensus())
        tier.offered += 1
        tier.input_tokens += request.input_tokens
        tier.output_tokens += request.output_tokens
        minute = int(request.arrival_time // 60.0)
        if minute == bucket:
            bucket_count += 1
        else:
            bucket = minute
            bucket_count = 1
        if bucket_count > census.peak_minute_requests:
            census.peak_minute_requests = bucket_count
    return census


#: (name, dataset, share-of-total, tier, diurnal curve, burstiness) for
#: the default storm mix: an interactive premium tenant, a broad standard
#: tenant, and a night-heavy batch tenant on the other corpus.
_DEFAULT_TENANT_MIX = (
    ("acme-premium", "lmsys-chat-1m", 0.2, "premium", DIURNAL_BUSINESS, 2.0),
    ("globex-standard", "lmsys-chat-1m", 0.5, "standard", DIURNAL_BUSINESS, 2.5),
    ("initech-batch", "sharegpt", 0.3, "batch", DIURNAL_NIGHT, 1.5),
)


def default_storm_traffic(
    total_requests: int,
    seed: int = 0,
    day_seconds: float = DAY_SECONDS,
) -> TrafficConfig:
    """The canonical three-tenant storm day at ``total_requests`` volume.

    Tenant request counts scale proportionally with the total (largest
    remainders absorb rounding), and each tenant's mean rate is set so
    its day spans ``day_seconds``.
    """
    if total_requests < len(_DEFAULT_TENANT_MIX):
        raise ConfigError(
            f"total_requests must be >= {len(_DEFAULT_TENANT_MIX)} "
            "(one per tenant)"
        )
    counts = [
        max(int(total_requests * share), 1)
        for _, _, share, _, _, _ in _DEFAULT_TENANT_MIX
    ]
    counts[0] += total_requests - sum(counts)  # premium absorbs rounding
    tenants = tuple(
        TenantSpec(
            name=name,
            dataset=dataset,
            num_requests=counts[i],
            mean_interarrival_seconds=day_seconds / counts[i],
            burstiness_cv=cv,
            tier=tier,
            rate_curve=curve,
        )
        for i, (name, dataset, _, tier, curve, cv) in enumerate(
            _DEFAULT_TENANT_MIX
        )
    )
    return TrafficConfig(tenants=tenants, seed=seed, day_seconds=day_seconds)
