"""Online arrival traces shaped like the Azure LLM inference traces.

The paper's online-serving experiment (Fig. 10) samples 64 requests from
the Azure traces released with Splitwise/DynamoLLM to set arrival times and
input/generation lengths.  Those traces show bursty arrivals (coefficient
of variation well above 1) with log-normal-ish length marginals; we
generate the same shape with Gamma-distributed interarrival gaps.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError
from repro.serving.request import Request
from repro.workloads.datasets import DatasetProfile, LMSYS_LIKE, make_dataset


@dataclass(frozen=True)
class AzureTraceConfig:
    """Arrival-process knobs for an online trace."""

    num_requests: int = 64
    mean_interarrival_seconds: float = 2.0
    burstiness_cv: float = 2.0
    """Coefficient of variation of interarrival gaps (>1 = bursty)."""

    def validate(self) -> None:
        """Raise :class:`ConfigError` on out-of-range knobs."""
        if self.num_requests < 1:
            raise ConfigError("num_requests must be >= 1")
        if self.mean_interarrival_seconds <= 0:
            raise ConfigError("mean_interarrival_seconds must be > 0")
        if self.burstiness_cv <= 0:
            raise ConfigError("burstiness_cv must be > 0")


def make_azure_trace(
    config: AzureTraceConfig = AzureTraceConfig(),
    profile: DatasetProfile = LMSYS_LIKE,
    seed: int = 0,
    start_id: int = 0,
) -> list[Request]:
    """Sample a bursty online trace; requests sorted by arrival time."""
    config.validate()
    rng = np.random.default_rng(seed)
    requests = make_dataset(
        profile, config.num_requests, seed=seed + 1, start_id=start_id
    )
    # Gamma interarrivals: shape k = 1/cv^2 reproduces the requested CV.
    shape = 1.0 / config.burstiness_cv**2
    scale = config.mean_interarrival_seconds / shape
    gaps = rng.gamma(shape, scale, size=config.num_requests)
    arrivals = np.cumsum(gaps)
    arrivals -= arrivals[0]  # first request arrives at t=0
    return [
        replace(req, arrival_time=float(arrivals[i]))
        for i, req in enumerate(requests)
    ]
