"""Workload generators standing in for the paper's datasets and traces.

- :mod:`repro.workloads.datasets` — synthetic prompt corpora shaped like
  LMSYS-Chat-1M and ShareGPT (topic clusters with Zipf popularity,
  log-normal prompt/output lengths).
- :mod:`repro.workloads.azure` — bursty online arrival traces shaped like
  the Microsoft Azure LLM inference traces used for Fig. 10.
- :mod:`repro.workloads.traffic` — multi-tenant diurnal traffic: lazy
  heap-merged per-tenant streams with SLO tiers, for million-user days.
- :mod:`repro.workloads.split` — the paper's 7:3 warm/test split.
"""

from repro.workloads.datasets import (
    DatasetProfile,
    LMSYS_LIKE,
    SHAREGPT_LIKE,
    DATASET_PROFILES,
    get_dataset_profile,
    make_dataset,
)
from repro.workloads.azure import AzureTraceConfig, make_azure_trace
from repro.workloads.split import warm_test_split
from repro.workloads.tracefile import read_trace_csv, write_trace_csv
from repro.workloads.traffic import (
    TIER_NAMES,
    TIER_PRIORITY,
    TenantSpec,
    TrafficConfig,
    TrafficCensus,
    arrival_chunks,
    default_storm_traffic,
    materialize_traffic,
    stream_traffic,
    tenant_arrivals,
    traffic_census,
)

__all__ = [
    "DatasetProfile",
    "LMSYS_LIKE",
    "SHAREGPT_LIKE",
    "DATASET_PROFILES",
    "get_dataset_profile",
    "make_dataset",
    "AzureTraceConfig",
    "make_azure_trace",
    "warm_test_split",
    "read_trace_csv",
    "write_trace_csv",
    "TIER_NAMES",
    "TIER_PRIORITY",
    "TenantSpec",
    "TrafficConfig",
    "TrafficCensus",
    "arrival_chunks",
    "default_storm_traffic",
    "materialize_traffic",
    "stream_traffic",
    "tenant_arrivals",
    "traffic_census",
]
