"""Validation harness: tiers, monitored runs, and mutant detection.

``validate_world`` is the entry point behind ``repro validate``: it runs
invariant-monitored simulations (offline, online with shedding, and — on
the full tier — faulted, continuous-batching, and cluster runs), then
evaluates the metamorphic laws, and finally turns the mutant registry
loose to prove the whole apparatus can actually catch a broken
simulator.  Everything folds into a :class:`ValidationReport` with a
stable JSON shape for CI and sweep tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError, ReproError, ValidationError
from repro.experiments.common import (
    ExperimentConfig,
    build_world,
    make_engine,
)
from repro.serving.faults import (
    DeviceFailure,
    FaultConfig,
    FaultSchedule,
    SLOConfig,
)
from repro.validate.laws import (
    FAST_LAWS,
    FULL_LAWS,
    CheckResult,
    LawContext,
    run_laws,
)
from repro.validate.monitors import MonitorSuite
from repro.validate.mutants import MUTANTS, Mutant

TIERS = ("fast", "full")

#: Models ``repro validate`` exercises when none are named.
DEFAULT_VALIDATE_MODELS = ("mixtral-8x7b", "qwen1.5-moe")

#: Canonical sizing for validation worlds: small enough for CI, large
#: enough that every system sees real eviction pressure.
VALIDATE_NUM_REQUESTS = 14
VALIDATE_NUM_TEST_REQUESTS = 3

#: The subset of laws the mutant detector re-evaluates per mutant (the
#: differential reference is the designated behavioral-mutant catcher;
#: invariant monitors cover the physics-level ones).
DETECTION_LAWS = tuple(
    law for law in FAST_LAWS if law.name == "law:differential-reference"
)


@dataclass
class MutantResult:
    """Whether one registered mutant was flagged, and by what."""

    name: str
    flagged: bool
    detectors: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-serializable form of this detection result."""
        return {
            "name": self.name,
            "flagged": self.flagged,
            "detectors": list(self.detectors),
        }


@dataclass
class ValidationReport:
    """All checks (and mutant detections) for one validated world."""

    model: str
    dataset: str
    tier: str
    checks: list[CheckResult] = field(default_factory=list)
    mutants: list[MutantResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks) and all(
            m.flagged for m in self.mutants
        )

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    @property
    def undetected_mutants(self) -> list[str]:
        return [m.name for m in self.mutants if not m.flagged]

    def to_dict(self) -> dict:
        """JSON-serializable form with the stable CI report shape."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "tier": self.tier,
            "passed": self.passed,
            "checks": [c.to_dict() for c in self.checks],
            "mutants": [m.to_dict() for m in self.mutants],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialized :meth:`to_dict` (what ``repro validate --json`` writes)."""
        return json.dumps(self.to_dict(), indent=indent)


def validation_config(
    model_name: str,
    dataset: str = "lmsys-chat-1m",
    num_requests: int = VALIDATE_NUM_REQUESTS,
    num_test_requests: int = VALIDATE_NUM_TEST_REQUESTS,
    seed: int = 0,
) -> ExperimentConfig:
    """The canonical config one validation world is built from."""
    return ExperimentConfig(
        model_name=model_name,
        dataset=dataset,
        num_requests=num_requests,
        num_test_requests=num_test_requests,
        seed=seed,
    )


def _arrivals(world, gap: float = 0.3):
    """The world's test set respaced into an online arrival trace."""
    return [
        replace(r, arrival_time=i * gap)
        for i, r in enumerate(world.test_requests)
    ]


def monitored_run(
    ctx: LawContext,
    label: str,
    system: str,
    requests=None,
    **kwargs,
) -> CheckResult:
    """One engine run with every invariant monitor attached."""
    suite = MonitorSuite()
    served = requests if requests is not None else ctx.world.test_requests
    name = f"invariant:{label}"
    try:
        report = ctx.run(system, monitor=suite, requests=requests, **kwargs)
    except ReproError as exc:
        return CheckResult(
            name, False, f"crashed mid-run: {type(exc).__name__}: {exc}"
        )
    suite.finish(report, admitted=len(served))
    return CheckResult(name, suite.ok, suite.summary() if not suite.ok else "")


def _faulted_check(ctx: LawContext) -> CheckResult:
    """Invariants must survive transfer faults, stragglers, and device loss."""
    faults = FaultSchedule(
        FaultConfig(
            seed=ctx.config.seed + 7,
            transfer_failure_prob=0.05,
            pcie_degradation_prob=0.3,
            straggler_prob=0.2,
            device_failures=(DeviceFailure(time=1.0, device=1),),
        )
    )
    return monitored_run(
        ctx,
        "fmoe-faulted",
        "fmoe",
        faults=faults,
        slo=SLOConfig(),
    )


def _continuous_check(ctx: LawContext) -> CheckResult:
    """Invariants must hold under continuous batching too."""
    suite = MonitorSuite()
    name = "invariant:fmoe-continuous"
    trace = _arrivals(ctx.world, gap=0.5)
    try:
        engine = make_engine(ctx.world, "fmoe")
        hook = ctx.mutate_hook("fmoe")
        if hook is not None:
            hook(engine)
        suite.bind(engine)
        engine.policy.warm(ctx.world.warm_traces)
        report = engine.run_continuous(trace, max_batch_size=2)
    except ReproError as exc:
        return CheckResult(
            name, False, f"crashed mid-run: {type(exc).__name__}: {exc}"
        )
    suite.finish(report, admitted=len(trace))
    return CheckResult(name, suite.ok, suite.summary() if not suite.ok else "")


def _cluster_check(ctx: LawContext) -> CheckResult:
    """Per-replica invariants plus fleet conservation on a 2-replica run."""
    from repro.cluster.config import ClusterSpec
    from repro.cluster.driver import run_cluster

    name = "invariant:cluster"
    try:
        run_cluster(
            ctx.world,
            "fmoe",
            ClusterSpec(replicas=2, router="semantic-affinity"),
            requests=_arrivals(ctx.world, gap=0.4),
            validate=True,
        )
    except ValidationError as exc:
        return CheckResult(name, False, str(exc))
    except ReproError as exc:
        return CheckResult(
            name, False, f"crashed mid-run: {type(exc).__name__}: {exc}"
        )
    return CheckResult(name, True)


def _fleet_spec():
    """The heterogeneous 2-replica fleet the placement checks run on."""
    from repro.cluster.config import ClusterSpec, get_profile

    return ClusterSpec(
        replicas=2,
        profiles=(get_profile("baseline"), get_profile("spot-small")),
    )


def _placement_check(ctx: LawContext) -> CheckResult:
    """Placement plans on a heterogeneous fleet must pass the validity
    audit: within capacity, duplicate-free, hill-climb no worse than the
    greedy seed, and every demanded expert either resident somewhere or
    accounted for as an on-demand fetch (``unplaced``)."""
    from repro.cluster.placement import (
        build_plan,
        check_plan,
        demand_from_traces,
    )

    name = "invariant:placement-plan"
    spec = _fleet_spec()
    budget = ctx.base_budget()
    demanded = set()
    for demand in demand_from_traces(ctx.world.warm_traces):
        demanded.update(demand.expert_set())
    failures: list[str] = []
    for strategy in ("uniform", "cost-aware"):
        try:
            plan = build_plan(
                strategy,
                ctx.world.warm_traces,
                spec,
                ctx.world.model_config,
                ctx.config.hardware,
                budget,
            )
        except ReproError as exc:
            failures.append(
                f"{strategy}: crashed: {type(exc).__name__}: {exc}"
            )
            continue
        failures.extend(f"{strategy}: {v}" for v in check_plan(plan))
        if plan.cost > plan.seed_cost + 1e-9:
            failures.append(
                f"{strategy}: hill-climb worsened the seed cost "
                f"({plan.seed_cost:.4f} -> {plan.cost:.4f})"
            )
        missing = demanded - plan.resident_anywhere() - set(plan.unplaced)
        if missing:
            failures.append(
                f"{strategy}: {len(missing)} demanded experts neither "
                "resident nor accounted as unplaced"
            )
    if failures:
        return CheckResult(name, False, "; ".join(failures))
    return CheckResult(name, True)


def _detect_placement_mutant(world, mutant: Mutant) -> MutantResult:
    """Screen a plan-level mutant through the plan validity audit."""
    from repro.cluster.placement import build_plan, check_plan

    healthy = build_plan(
        "cost-aware",
        world.warm_traces,
        _fleet_spec(),
        world.model_config,
        world.config.hardware,
        world.config.resolve_budget(world.model_config),
    )
    mutated = mutant.apply(healthy)
    detectors = (
        ["invariant:placement-plan"] if check_plan(mutated) else []
    )
    return MutantResult(
        name=mutant.name, flagged=bool(detectors), detectors=detectors
    )


def _storm_overload_trace(seed: int):
    """A dense two-tier arrival burst that forces admission shedding."""
    from repro.workloads.traffic import (
        TenantSpec,
        TrafficConfig,
        materialize_traffic,
    )

    traffic = TrafficConfig(
        tenants=(
            TenantSpec(
                name="prem",
                num_requests=8,
                mean_interarrival_seconds=0.05,
                burstiness_cv=1.0,
                tier="premium",
            ),
            TenantSpec(
                name="bulk",
                num_requests=8,
                mean_interarrival_seconds=0.05,
                burstiness_cv=1.0,
                tier="batch",
            ),
        ),
        seed=seed,
    )
    return materialize_traffic(traffic)


def _detect_driver_mutant(world, mutant: Mutant) -> MutantResult:
    """Replay a two-tier overload through the sabotaged driver class.

    The healthy :class:`ClusterDriver` must survive the validated run
    (premium bypasses the tight admission bucket, batch absorbs the
    shed); the mutated subclass must trip the tenancy monitors.  Both
    legs matter — a monitor that flags the healthy run too has gone
    trigger-happy, not grown teeth.
    """
    from repro.cluster.config import ClusterSpec, ResilienceConfig
    from repro.cluster.driver import ClusterDriver
    from repro.workloads.traffic import PREMIUM_PRIORITY

    trace = _storm_overload_trace(world.config.seed)
    spec = ClusterSpec(
        replicas=1,
        resilience=ResilienceConfig(
            admission_rate=2.0,
            admission_burst=1,
            priority_bypass_level=PREMIUM_PRIORITY,
        ),
    )

    def run_with(driver_cls) -> None:
        driver_cls(world, "fmoe", spec, validate=True).run(trace)

    detector = "invariant:tenancy"
    try:
        run_with(ClusterDriver)
    except ReproError:
        # The healthy driver must pass clean; a flag here is a false
        # positive, not a detection.
        return MutantResult(name=mutant.name, flagged=False, detectors=[])
    try:
        run_with(mutant.apply(ClusterDriver))
    except ValidationError:
        return MutantResult(
            name=mutant.name, flagged=True, detectors=[detector]
        )
    except ReproError as exc:
        return MutantResult(
            name=mutant.name,
            flagged=True,
            detectors=[f"crash:{type(exc).__name__}"],
        )
    return MutantResult(name=mutant.name, flagged=False, detectors=[])


def detect_mutant(world, mutant: Mutant) -> MutantResult:
    """Inject ``mutant`` and record which validators (if any) flag it."""
    if mutant.target == "placement":
        return _detect_placement_mutant(world, mutant)
    if mutant.target == "driver":
        return _detect_driver_mutant(world, mutant)
    ctx = LawContext(world=world, mutant=mutant)
    checks = [monitored_run(ctx, "fmoe-offline", "fmoe")]
    checks.extend(run_laws(ctx, DETECTION_LAWS))
    detectors = [c.name for c in checks if not c.passed]
    return MutantResult(
        name=mutant.name, flagged=bool(detectors), detectors=detectors
    )


def validate_world(
    world,
    tier: str = "fast",
    jobs: int = 1,
    include_mutants: bool | None = None,
) -> ValidationReport:
    """Run one world through the validation tier and collect the report.

    ``include_mutants`` defaults to the tier's convention: the full tier
    always proves the validators' teeth, the fast tier skips that to
    stay cheap (CI smoke covers it separately).
    """
    if tier not in TIERS:
        raise ConfigError(f"tier must be one of {TIERS} (got {tier!r})")
    thorough = tier == "full"
    if include_mutants is None:
        include_mutants = thorough
    ctx = LawContext(world=world, jobs=jobs)
    checks = [
        monitored_run(ctx, "fmoe-offline", "fmoe"),
        monitored_run(ctx, "moe-infinity-offline", "moe-infinity"),
        monitored_run(
            ctx,
            "fmoe-online-shedding",
            "fmoe",
            requests=_arrivals(world),
            respect_arrivals=True,
            slo=SLOConfig(queue_delay_budget_seconds=2.0),
        ),
        _placement_check(ctx),
    ]
    if thorough:
        for system in (
            "promoe",
            "deepspeed-inference",
            "mixtral-offloading",
            "oracle",
        ):
            checks.append(monitored_run(ctx, f"{system}-offline", system))
        checks.append(_faulted_check(ctx))
        checks.append(_continuous_check(ctx))
        checks.append(_cluster_check(ctx))
    checks.extend(
        run_laws(ctx, FULL_LAWS if thorough else FAST_LAWS, thorough)
    )
    mutants = (
        [detect_mutant(world, m) for m in MUTANTS]
        if include_mutants
        else []
    )
    return ValidationReport(
        model=world.config.model_name,
        dataset=world.config.dataset,
        tier=tier,
        checks=checks,
        mutants=mutants,
    )


def validate_model(
    config: ExperimentConfig,
    tier: str = "fast",
    jobs: int = 1,
    include_mutants: bool | None = None,
) -> ValidationReport:
    """Build the world for ``config`` and validate it (see
    :func:`validate_world`)."""
    return validate_world(
        build_world(config),
        tier=tier,
        jobs=jobs,
        include_mutants=include_mutants,
    )
