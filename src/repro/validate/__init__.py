"""Simulator validation: invariant monitors, metamorphic laws, mutants.

Three layers of defense against a silently wrong simulator:

- :mod:`repro.validate.monitors` — runtime invariant monitors riding the
  engine's event stream (clock causality, VRAM ledger, cache coherence,
  conservation, kv-cache hygiene, fault accounting);
- :mod:`repro.validate.laws` — metamorphic laws between runs (budget and
  bandwidth monotonicity, the oracle bound, cluster/jobs parity, the
  differential reference);
- :mod:`repro.validate.mutants` — intentionally-broken engine mutants
  the other two layers must flag, proving the validators have teeth.

:mod:`repro.validate.harness` ties them into the ``repro validate`` CLI
tiers and the runner's ``--validate`` mode.
"""

from repro.validate.harness import (
    DEFAULT_VALIDATE_MODELS,
    TIERS,
    MutantResult,
    ValidationReport,
    detect_mutant,
    monitored_run,
    validate_model,
    validate_world,
    validation_config,
)
from repro.validate.laws import (
    FAST_LAWS,
    FULL_LAWS,
    CheckResult,
    Law,
    LawContext,
    run_laws,
)
from repro.validate.monitors import (
    BudgetMonitor,
    ClockMonitor,
    CoherenceMonitor,
    ConservationMonitor,
    FaultAccountingMonitor,
    InvariantMonitor,
    KVMonitor,
    MonitorSuite,
    Violation,
    check_cluster_report,
    default_monitors,
)
from repro.validate.mutants import MUTANTS, Mutant, get_mutant

__all__ = [
    "BudgetMonitor",
    "CheckResult",
    "ClockMonitor",
    "CoherenceMonitor",
    "ConservationMonitor",
    "DEFAULT_VALIDATE_MODELS",
    "FAST_LAWS",
    "FULL_LAWS",
    "FaultAccountingMonitor",
    "InvariantMonitor",
    "KVMonitor",
    "Law",
    "LawContext",
    "MUTANTS",
    "MonitorSuite",
    "Mutant",
    "MutantResult",
    "TIERS",
    "ValidationReport",
    "Violation",
    "check_cluster_report",
    "default_monitors",
    "detect_mutant",
    "get_mutant",
    "monitored_run",
    "run_laws",
    "validate_model",
    "validate_world",
    "validation_config",
]
