"""Intentionally-broken simulator mutants: proof the validators have teeth.

Each mutant installs one targeted defect into a freshly built engine —
an eviction policy running backwards, a byte ledger that leaks, a cache
that lies about readiness.  The differential harness then demands that
*every* registered mutant is flagged by at least one invariant monitor or
metamorphic law; a mutant that sails through means a validator has gone
soft, exactly like a surviving mutant in mutation testing.

Mutants patch instances (never classes), so a mutated engine poisons
nothing beyond itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.engine import ServingEngine


@dataclass(frozen=True)
class Mutant:
    """One registered defect to inject into a fresh engine (or plan).

    ``target`` names the surface the defect lives on: ``"engine"``
    mutants patch a freshly built :class:`ServingEngine` in place;
    ``"placement"`` mutants transform a healthy
    :class:`~repro.cluster.placement.PlacementPlan` and return the
    broken copy (the harness screens it through ``check_plan``);
    ``"driver"`` mutants take the :class:`~repro.cluster.driver
    .ClusterDriver` class and return a sabotaged subclass (the harness
    replays a two-tier overload through it and expects the tenancy
    monitors to object).
    """

    name: str
    description: str
    #: Which invariant family is expected to flag it (documentation).
    expected_detector: str
    apply: Callable[["ServingEngine"], None]
    target: str = "engine"


def _budget_overcommit(engine: "ServingEngine") -> None:
    """``_make_space`` claims success without evicting anything."""
    pool = engine.pool
    pool._make_space = lambda device, needed, now, urgent=False: True


def _eviction_leak(engine: "ServingEngine") -> None:
    """Evictions drop the expert but never return its bytes."""
    pool = engine.pool
    original = pool.evict

    def leaky_evict(expert):
        device = pool._home_of(expert) if expert in pool._tasks else None
        original(expert)
        if device is not None:
            # Re-charge the bytes the real evict just freed: the ledger
            # now leaks one expert per eviction.
            device.used_bytes += pool.model.expert_bytes

    pool.evict = leaky_evict


def _phantom_ready(engine: "ServingEngine") -> None:
    """The cache vouches for experts it never loaded."""
    pool = engine.pool
    pool.is_ready = lambda expert, now: True
    # The columnar engine asks for readiness in one batched call; the lie
    # must cover both query forms or the mutant only fools the scalar path.
    pool.ready_flags = lambda experts, now: [True] * len(experts)


def _clock_rewind(engine: "ServingEngine") -> None:
    """On-demand loads report completion before they were issued."""
    pool = engine.pool
    original = pool.load_on_demand

    def rewinding_load(expert, now):
        original(expert, now)
        return now - 1e-3

    pool.load_on_demand = rewinding_load


class _HottestFirstOracle:
    """Inverts the attached policy's eviction order: hottest goes first."""

    def __init__(self, policy) -> None:
        self._policy = policy

    def eviction_priority(self, expert, now):
        return -self._policy.eviction_priority(expert, now)


def _evict_hottest(engine: "ServingEngine") -> None:
    engine.pool.set_eviction_oracle(_HottestFirstOracle(engine.policy))


class _PrefetchStripper:
    """Delegates every policy hook but discards prefetch instructions."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.name = inner.name

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def _strip(self, action):
        if action is not None:
            action.prefetch = []
            action.prefetch_block = None
        return action

    def on_iteration_start(self, ctx):
        return self._strip(self._inner.on_iteration_start(ctx))

    def on_gate_output(self, ctx, layer):
        return self._strip(self._inner.on_gate_output(ctx, layer))

    def on_iteration_end(self, ctx):
        return self._strip(self._inner.on_iteration_end(ctx))


def _ignore_prefetch(engine: "ServingEngine") -> None:
    engine.policy = _PrefetchStripper(engine.policy)


def _placement_overcommit(plan):
    """Every replica claims every demanded expert, VRAM caps be damned.

    The classic placement-optimizer bug: the residency builder forgets
    the per-replica capacity clamp, so the plan promises more resident
    experts than the scaled cache budget holds slots for.
    """
    import dataclasses

    everything: set = set(plan.unplaced)
    for experts in plan.residency:
        everything.update(experts)
    ordered = tuple(sorted(everything, key=lambda e: (e.layer, e.expert)))
    return dataclasses.replace(
        plan,
        residency=tuple(ordered for _ in plan.residency),
        unplaced=(),
    )


def _priority_inversion(driver_cls):
    """Admission bypass flipped: batch skips the gate, premium pays it.

    The priority scheduler's one job is protecting premium traffic when
    the ladder sheds; this subclass inverts the single decision point
    (:meth:`ClusterDriver._admission_bypass`) so low-priority requests
    bypass admission control while premium requests get shed first —
    the classic sign-flip bug in a priority comparison.  The tenancy
    tier-conservation monitor must flag the resulting shed-rate
    inversion.
    """

    class PriorityInvertedDriver(driver_cls):
        def _admission_bypass(self, request) -> bool:
            cfg = self.resilience
            if cfg is None or cfg.priority_bypass_level is None:
                return False
            return request.priority < cfg.priority_bypass_level

    PriorityInvertedDriver.__name__ = f"PriorityInverted{driver_cls.__name__}"
    return PriorityInvertedDriver


MUTANTS: tuple[Mutant, ...] = (
    Mutant(
        name="budget-overcommit",
        description="_make_space reports success without freeing bytes, "
        "so reservations sail past the VRAM budget",
        expected_detector="budget monitor",
        apply=_budget_overcommit,
    ),
    Mutant(
        name="eviction-leak",
        description="evictions free the slot but leak the byte ledger",
        expected_detector="coherence monitor",
        apply=_eviction_leak,
    ),
    Mutant(
        name="phantom-ready",
        description="is_ready returns True for experts never loaded",
        expected_detector="coherence monitor",
        apply=_phantom_ready,
    ),
    Mutant(
        name="clock-rewind",
        description="on-demand loads complete before they were issued",
        expected_detector="clock monitor",
        apply=_clock_rewind,
    ),
    Mutant(
        name="evict-hottest",
        description="eviction order inverted: the hottest expert goes "
        "first",
        expected_detector="differential-reference law",
        apply=_evict_hottest,
    ),
    Mutant(
        name="ignore-prefetch",
        description="all prefetch instructions silently discarded",
        expected_detector="differential-reference law",
        apply=_ignore_prefetch,
    ),
    Mutant(
        name="placement-overcommit",
        description="the placement plan pins every demanded expert on "
        "every replica, ignoring per-replica VRAM capacity",
        expected_detector="placement plan check",
        apply=_placement_overcommit,
        target="placement",
    ),
    Mutant(
        name="priority-inversion",
        description="admission bypass comparison flipped: batch traffic "
        "skips the gate while premium requests shed first",
        expected_detector="tenancy tier-conservation monitor",
        apply=_priority_inversion,
        target="driver",
    ),
)


def get_mutant(name: str) -> Mutant:
    """Look up a registered mutant by name."""
    for mutant in MUTANTS:
        if mutant.name == name:
            return mutant
    known = ", ".join(m.name for m in MUTANTS)
    raise KeyError(f"unknown mutant {name!r} (known: {known})")
