"""Metamorphic laws: relations between runs that must hold by design.

No single simulation output is "obviously correct", but *pairs* of runs
are constrained by the physics the simulator claims to model (the laws
formalized by the caching/pre-fetching analyses the paper builds on):

- more cache can never lose hits (budget monotonicity, §6 / Fig. 11);
- a faster PCIe link can never slow serving down (bandwidth
  monotonicity);
- hindsight-optimal prefetching lower-bounds every policy's miss count
  on the same world (oracle bound);
- a 1-replica cluster is the same machine as a bare engine;
- a parallel fan-out (``jobs=N``) reproduces sequential results byte for
  byte;
- re-running a system on the same world reproduces the report byte for
  byte (the *differential reference*: with a mutant injected into the
  subject run, any deviation from the healthy reference flags it).

Each law returns a :class:`CheckResult`; the harness aggregates them and
the mutant registry proves they have teeth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.experiments.common import (
    ExperimentConfig,
    World,
    run_system,
)
from repro.serving.export import report_to_json
from repro.validate.mutants import Mutant


@dataclass
class CheckResult:
    """Outcome of one invariant run or law evaluation."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form of this check outcome."""
        return {
            "name": self.name,
            "passed": self.passed,
            "detail": self.detail,
        }


@dataclass
class LawContext:
    """Everything a law needs: a world, budgets, and an optional mutant.

    ``mutant`` (when set) is injected into every run of
    ``mutant_target`` — except runs a law explicitly requests as the
    healthy reference (``mutated=False``).
    """

    world: World
    jobs: int = 1
    mutant: Mutant | None = None
    mutant_target: str = "fmoe"

    @property
    def config(self) -> ExperimentConfig:
        return self.world.config

    def base_budget(self) -> int:
        """The default cache budget this world's config resolves to."""
        return self.config.resolve_budget(self.world.model_config)

    def scaled_budget(self, factor: float) -> int:
        """``factor`` × the default budget, floored at one expert/GPU."""
        model = self.world.model_config
        floor = self.config.hardware.num_gpus * model.expert_bytes
        return max(int(self.base_budget() * factor), floor)

    def bandwidth_world(self, factor: float) -> World:
        """This world with the PCIe link scaled by ``factor``."""
        if factor == 1.0:
            return self.world
        hardware = dataclasses.replace(
            self.config.hardware,
            pcie_bandwidth_bps=self.config.hardware.pcie_bandwidth_bps
            * factor,
        )
        return dataclasses.replace(
            self.world, config=self.config.with_(hardware=hardware)
        )

    def mutate_hook(self, system: str):
        """The mutant's apply hook — only for runs of ``mutant_target``."""
        if self.mutant is not None and system == self.mutant_target:
            return self.mutant.apply
        return None

    def run(
        self,
        system: str,
        budget: int | None = None,
        bandwidth_factor: float = 1.0,
        mutated: bool = True,
        **kwargs,
    ):
        """One engine run under this context's world (and mutant)."""
        return run_system(
            self.bandwidth_world(bandwidth_factor),
            system,
            cache_budget_bytes=(
                budget if budget is not None else self.base_budget()
            ),
            mutate=self.mutate_hook(system) if mutated else None,
            **kwargs,
        )


@dataclass(frozen=True)
class Law:
    """One registered metamorphic law."""

    name: str
    description: str
    check: Callable[[LawContext, bool], CheckResult]


def _result(name: str, failures: list[str], detail: str = "") -> CheckResult:
    if failures:
        return CheckResult(name, False, "; ".join(failures))
    return CheckResult(name, True, detail)


def law_budget_monotonicity(
    ctx: LawContext, thorough: bool
) -> CheckResult:
    """Cache budget up ⇒ hit count monotone non-decreasing."""
    systems = ("fmoe", "moe-infinity") if thorough else ("fmoe",)
    factors = (0.5, 1.0, 1.5, 2.0) if thorough else (0.5, 1.0, 1.5)
    failures = []
    observed = []
    for system in systems:
        hits = [
            ctx.run(system, budget=ctx.scaled_budget(f)).hits
            for f in factors
        ]
        observed.append(f"{system}: {hits}")
        for lo, hi, f_lo, f_hi in zip(
            hits, hits[1:], factors, factors[1:]
        ):
            if lo > hi:
                failures.append(
                    f"{system} lost hits growing the budget "
                    f"{f_lo}x -> {f_hi}x ({lo} -> {hi})"
                )
    return _result(
        "law:budget-monotonicity", failures, "; ".join(observed)
    )


def law_bandwidth_monotonicity(
    ctx: LawContext, thorough: bool
) -> CheckResult:
    """PCIe bandwidth up ⇒ total end-to-end latency monotone down."""
    systems = ("fmoe", "moe-infinity") if thorough else ("fmoe",)
    factors = (0.5, 1.0, 2.0)
    failures = []
    for system in systems:
        totals = [
            float(
                ctx.run(system, bandwidth_factor=f).e2e_latencies().sum()
            )
            for f in factors
        ]
        for slow, fast, f_lo, f_hi in zip(
            totals, totals[1:], factors, factors[1:]
        ):
            if fast > slow + 1e-9:
                failures.append(
                    f"{system} got slower on a faster link "
                    f"{f_lo}x -> {f_hi}x ({slow:.6f}s -> {fast:.6f}s)"
                )
    return _result("law:bandwidth-monotonicity", failures)


def law_oracle_bound(ctx: LawContext, thorough: bool) -> CheckResult:
    """Hindsight-optimal prefetching lower-bounds every miss count."""
    systems = ["fmoe", "moe-infinity", "deepspeed-inference"]
    if thorough:
        systems += ["promoe", "mixtral-offloading"]
    oracle_misses = ctx.run("oracle", mutated=False).misses
    failures = []
    for system in systems:
        misses = ctx.run(system).misses
        if misses < oracle_misses:
            failures.append(
                f"{system} beat the oracle ({misses} < {oracle_misses} "
                "misses)"
            )
    return _result(
        "law:oracle-bound", failures, f"oracle misses={oracle_misses}"
    )


def law_fleet_bandwidth_monotonicity(
    ctx: LawContext, thorough: bool
) -> CheckResult:
    """One replica's PCIe link up ⇒ fleet mean TTFT monotone non-increasing.

    The fleet analogue of :func:`law_bandwidth_monotonicity`: under a
    round-robin router (feedback-free, so the request→replica assignment
    cannot shift with hardware speed) making one replica's link faster can
    only speed up the requests that replica serves and leave the rest
    untouched.  The cluster side always runs healthy engines, so this law
    pins the :class:`~repro.cluster.config.ReplicaProfile` plumbing, not
    the mutant surface.
    """
    from repro.cluster.config import ClusterSpec, ReplicaProfile
    from repro.cluster.driver import run_cluster

    factors = (1.0, 2.0, 4.0) if thorough else (1.0, 2.0)
    means = []
    for factor in factors:
        fast = ReplicaProfile(name="fast-link", pcie_scale=factor)
        report = run_cluster(
            ctx.world,
            "fmoe",
            ClusterSpec(
                replicas=2,
                router="round-robin",
                profiles=(fast, ReplicaProfile()),
            ),
        )
        means.append(report.mean_ttft())
    failures = []
    for slow, fast_mean, f_lo, f_hi in zip(
        means, means[1:], factors, factors[1:]
    ):
        if fast_mean > slow + 1e-9:
            failures.append(
                "fleet mean TTFT worsened after speeding up replica 0's "
                f"link {f_lo}x -> {f_hi}x ({slow:.6f}s -> {fast_mean:.6f}s)"
            )
    return _result(
        "law:fleet-bandwidth-monotonicity",
        failures,
        "mean TTFT " + " -> ".join(f"{m:.6f}s" for m in means),
    )


def law_cluster_parity(ctx: LawContext, thorough: bool) -> CheckResult:
    """A 1-replica round-robin cluster == the bare engine, byte for byte.

    The cluster side always runs healthy (its engines are built
    internally), so under an injected mutant this law doubles as a
    differential detector.
    """
    from repro.cluster.config import ClusterSpec
    from repro.cluster.driver import run_cluster

    systems = ("fmoe", "moe-infinity") if thorough else ("fmoe",)
    failures = []
    for system in systems:
        bare = run_system(
            ctx.world,
            system,
            respect_arrivals=True,
            mutate=ctx.mutate_hook(system),
        )
        cluster = run_cluster(
            ctx.world,
            system,
            ClusterSpec(replicas=1, router="round-robin"),
        )
        if report_to_json(cluster.aggregate) != report_to_json(bare):
            failures.append(
                f"{system}: 1-replica cluster diverged from the bare "
                "engine"
            )
    return _result("law:cluster-parity", failures)


def law_jobs_parity(ctx: LawContext, thorough: bool) -> CheckResult:
    """``run_cells(jobs=2)`` reproduces ``jobs=1`` byte for byte."""
    from repro.experiments.runner import SimCell, run_cells

    if ctx.mutant is not None:
        # Mutants patch live objects and cannot cross the process
        # boundary; the in-process laws carry the detection burden.
        return CheckResult(
            "law:jobs-parity", True, "skipped under mutant injection"
        )
    cells = [
        SimCell(
            config=ctx.config,
            system=system,
            cache_budget_bytes=ctx.scaled_budget(factor),
        )
        for system in ("fmoe", "moe-infinity")
        for factor in ((1.0, 1.5) if thorough else (1.0,))
    ]
    sequential = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=2)
    failures = []
    for cell, seq, par in zip(cells, sequential, parallel):
        if report_to_json(seq) != report_to_json(par):
            failures.append(
                f"{cell.system} @ {cell.cache_budget_bytes}B diverged "
                "between jobs=1 and jobs=2"
            )
    return _result("law:jobs-parity", failures)


def law_differential_reference(
    ctx: LawContext, thorough: bool
) -> CheckResult:
    """The subject run reproduces the healthy reference byte for byte.

    Without a mutant this pins determinism (same world, same report);
    with one it is the differential oracle — the unmutated simulator —
    that behavioral mutants (wrong eviction order, dropped prefetches)
    cannot hide from even when they violate no single-run invariant.
    """
    failures = []
    subject = ctx.run("fmoe")
    reference = ctx.run("fmoe", mutated=False)
    if report_to_json(subject) != report_to_json(reference):
        failures.append(
            "fmoe diverged from the healthy reference "
            f"(hits {subject.hits} vs {reference.hits}, "
            f"misses {subject.misses} vs {reference.misses})"
        )
    return _result("law:differential-reference", failures)


#: Laws evaluated by the fast tier (and, with ``thorough=True``, the full
#: tier).  ``law_jobs_parity`` is full-tier only: forking a process pool
#: per validation run is the one genuinely expensive law.
FAST_LAWS: tuple[Law, ...] = (
    Law(
        "law:budget-monotonicity",
        "cache budget up => hits monotone non-decreasing",
        law_budget_monotonicity,
    ),
    Law(
        "law:bandwidth-monotonicity",
        "PCIe bandwidth up => total latency monotone non-increasing",
        law_bandwidth_monotonicity,
    ),
    Law(
        "law:oracle-bound",
        "oracle misses lower-bound every system's misses",
        law_oracle_bound,
    ),
    Law(
        "law:fleet-bandwidth-monotonicity",
        "one replica's PCIe up => fleet mean TTFT monotone non-increasing",
        law_fleet_bandwidth_monotonicity,
    ),
    Law(
        "law:cluster-parity",
        "1-replica cluster == bare engine, byte for byte",
        law_cluster_parity,
    ),
    Law(
        "law:differential-reference",
        "subject run == healthy reference, byte for byte",
        law_differential_reference,
    ),
)

FULL_LAWS: tuple[Law, ...] = FAST_LAWS + (
    Law(
        "law:jobs-parity",
        "run_cells(jobs=2) == run_cells(jobs=1), byte for byte",
        law_jobs_parity,
    ),
)


def run_laws(
    ctx: LawContext, laws: tuple[Law, ...], thorough: bool = False
) -> list[CheckResult]:
    """Evaluate ``laws`` under ``ctx``; a crash is a failed check."""
    results = []
    for law in laws:
        try:
            results.append(law.check(ctx, thorough))
        except ReproError as exc:
            results.append(
                CheckResult(
                    law.name, False, f"crashed: {type(exc).__name__}: {exc}"
                )
            )
    return results
