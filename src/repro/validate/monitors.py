"""Runtime invariant monitors for the serving simulator.

A :class:`MonitorSuite` implements the event-sink protocol and rides the
engine's existing recorder plumbing: every event the engine emits is
checked, in place, against the simulation's own physics —

- **clock causality** — event timestamps never move backwards;
- **VRAM ledger** — per-device and total reservations stay within budget,
  and the byte ledger always equals ``residents × expert_bytes``;
- **cache coherence** — a served *hit* must be backed by a tracked expert
  whose transfer has actually landed (belief == residency);
- **conservation** — event counts reconcile with report counters, layer
  histograms sum to totals, and ``served + shed == admitted``;
- **kv-cache hygiene** — all sessions release their blocks by run end;
- **fault accounting** — failure/failover/eviction events reconcile with
  the pool's counters and the report.

Monitors only observe: they never advance the virtual clock or touch any
state, so an instrumented run produces byte-identical reports to an
uninstrumented one (asserted by the telemetry-neutrality tests).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.obs.sinks import TeeSink
from repro.serving.events import Event, EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.metrics import ClusterReport
    from repro.serving.engine import ServingEngine
    from repro.serving.metrics import ServingReport

_EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach, stamped with the virtual time it surfaced."""

    monitor: str
    message: str
    time: float = 0.0

    def __str__(self) -> str:
        return f"[{self.monitor}] t={self.time:.6f}: {self.message}"


class InvariantMonitor:
    """One invariant; subclasses override the hooks they need."""

    name = "invariant"

    def bind(self, engine: "ServingEngine") -> None:
        """Snapshot whatever baseline state the checks compare against."""

    def on_event(
        self, engine: "ServingEngine", event: Event, suite: "MonitorSuite"
    ) -> None:
        """Check one emitted event (and the engine state behind it)."""

    def on_run_end(
        self,
        engine: "ServingEngine",
        report: "ServingReport",
        admitted: int | None,
        suite: "MonitorSuite",
    ) -> None:
        """Check end-of-run conservation against the finalized report."""


class ClockMonitor(InvariantMonitor):
    """Virtual time is monotone along the engine's event lane."""

    name = "clock"

    def bind(self, engine: "ServingEngine") -> None:
        self._last = -math.inf

    def on_event(self, engine, event, suite) -> None:
        if event.time < self._last - _EPS:
            suite.record(
                self.name,
                f"clock rewound: {event.kind.value} at {event.time:.9f} "
                f"after {self._last:.9f}",
                event.time,
            )
        self._last = max(self._last, event.time)


class BudgetMonitor(InvariantMonitor):
    """VRAM reservations never exceed the configured budgets."""

    name = "budget"

    def on_event(self, engine, event, suite) -> None:
        pool = engine.pool
        total = pool.used_bytes()
        if total > pool.cache_budget_bytes:
            suite.record(
                self.name,
                f"total reservations {total} exceed cache budget "
                f"{pool.cache_budget_bytes}",
                event.time,
            )
        for device in pool.devices:
            if device.used_bytes > device.budget_bytes:
                suite.record(
                    self.name,
                    f"GPU {device.index} ledger {device.used_bytes} "
                    f"exceeds its budget {device.budget_bytes}",
                    event.time,
                )
            if device.used_bytes < 0:
                suite.record(
                    self.name,
                    f"GPU {device.index} ledger went negative "
                    f"({device.used_bytes})",
                    event.time,
                )


class CoherenceMonitor(InvariantMonitor):
    """Pool residency, the byte ledger, and served hits agree.

    Hits are checked against the raw tracking tables (``arrival_time``),
    not the policy-facing ``is_ready`` — a broken readiness predicate must
    not be able to vouch for itself.
    """

    name = "coherence"

    def on_event(self, engine, event, suite) -> None:
        pool = engine.pool
        expert_bytes = pool.model.expert_bytes
        union: set = set()
        for device in pool.devices:
            union |= device.resident
            expected = len(device.resident) * expert_bytes
            if device.used_bytes != expected:
                suite.record(
                    self.name,
                    f"GPU {device.index} ledger {device.used_bytes} != "
                    f"{len(device.resident)} residents x {expert_bytes}",
                    event.time,
                )
        tracked = pool.resident_experts()
        if union != tracked:
            drift = union.symmetric_difference(tracked)
            suite.record(
                self.name,
                f"residency drift: {len(drift)} experts tracked on one "
                f"side only (e.g. {sorted(drift)[:3]})",
                event.time,
            )
        if event.kind is EventKind.EXPERT_HIT and event.expert is not None:
            arrival = pool.arrival_time(event.expert)
            if arrival is None:
                suite.record(
                    self.name,
                    f"hit on untracked expert {event.expert}",
                    event.time,
                )
            elif arrival > event.time + _EPS:
                suite.record(
                    self.name,
                    f"hit on in-flight expert {event.expert} "
                    f"(arrives {arrival:.9f} > now {event.time:.9f})",
                    event.time,
                )


class ConservationMonitor(InvariantMonitor):
    """Requests, tokens, and hit/miss counts are conserved."""

    name = "conservation"

    def bind(self, engine: "ServingEngine") -> None:
        self._starts = 0
        self._ends = 0
        self._hits = 0
        self._misses = 0
        self._shed = 0

    def on_event(self, engine, event, suite) -> None:
        if event.kind is EventKind.ITERATION_START:
            self._starts += 1
        elif event.kind is EventKind.ITERATION_END:
            self._ends += 1
        elif event.kind is EventKind.EXPERT_HIT:
            self._hits += 1
        elif event.kind is EventKind.EXPERT_MISS:
            self._misses += 1
        elif event.kind is EventKind.REQUEST_SHED:
            self._shed += 1
        if self._starts - self._ends not in (0, 1):
            suite.record(
                self.name,
                f"unbalanced iterations: {self._starts} starts vs "
                f"{self._ends} ends",
                event.time,
            )

    def on_run_end(self, engine, report, admitted, suite) -> None:
        checks = [
            (self._starts == self._ends == report.iterations,
             f"iteration events ({self._starts}/{self._ends}) disagree "
             f"with report.iterations ({report.iterations})"),
            (self._hits == report.hits,
             f"{self._hits} hit events vs report.hits {report.hits}"),
            (self._misses == report.misses,
             f"{self._misses} miss events vs report.misses "
             f"{report.misses}"),
            (sum(report.layer_hits.values()) == report.hits,
             "layer_hits histogram does not sum to report.hits"),
            (sum(report.layer_misses.values()) == report.misses,
             "layer_misses histogram does not sum to report.misses"),
            (self._shed == report.shed_requests == len(
                report.shed_request_ids),
             f"{self._shed} shed events vs counter "
             f"{report.shed_requests} vs "
             f"{len(report.shed_request_ids)} recorded ids"),
        ]
        if admitted is not None:
            checks.append(
                (len(report.requests) + report.shed_requests == admitted,
                 f"served ({len(report.requests)}) + shed "
                 f"({report.shed_requests}) != admitted ({admitted})"))
        attributed = sum(r.hits for r in report.requests)
        checks.append(
            (math.isclose(attributed, report.hits,
                          rel_tol=1e-6, abs_tol=1e-6),
             f"per-request attributed hits {attributed} drifted from "
             f"report.hits {report.hits}"))
        for ok, message in checks:
            if not ok:
                suite.record(self.name, message, engine.now)


class KVMonitor(InvariantMonitor):
    """Every admitted session releases its kv-cache blocks by run end."""

    name = "kvcache"

    def on_run_end(self, engine, report, admitted, suite) -> None:
        leaked = engine.kv_tracker.current_bytes()
        if leaked != 0:
            suite.record(
                self.name,
                f"{leaked} kv-cache bytes still held at run end",
                engine.now,
            )
        if report.peak_kv_bytes != engine.kv_tracker.peak_bytes:
            suite.record(
                self.name,
                f"report peak_kv_bytes {report.peak_kv_bytes} != tracker "
                f"peak {engine.kv_tracker.peak_bytes}",
                engine.now,
            )


class FaultAccountingMonitor(InvariantMonitor):
    """Failure/failover/eviction events reconcile with pool counters."""

    name = "faults"

    def bind(self, engine: "ServingEngine") -> None:
        self._stats0 = dataclasses.replace(engine.pool.stats)
        self._failures = 0
        self._failovers = 0
        self._evictions = 0
        self._ondemand = 0
        self._prefetch_issued = 0

    def on_event(self, engine, event, suite) -> None:
        if event.kind is EventKind.DEVICE_FAILURE:
            self._failures += 1
        elif event.kind is EventKind.FAILOVER:
            self._failovers += int(event.detail or 0)
        elif event.kind is EventKind.EVICTION:
            self._evictions += 1
        elif event.kind is EventKind.ONDEMAND_LOAD:
            self._ondemand += 1
        elif event.kind is EventKind.PREFETCH_ISSUED:
            self._prefetch_issued += int(event.detail or 0)

    def on_run_end(self, engine, report, admitted, suite) -> None:
        stats, stats0 = engine.pool.stats, self._stats0
        checks = [
            (self._failures == report.device_failures ==
             stats.devices_lost - stats0.devices_lost,
             f"{self._failures} failure events vs report "
             f"{report.device_failures} vs pool "
             f"{stats.devices_lost - stats0.devices_lost}"),
            (self._failovers == report.failovers ==
             stats.failovers - stats0.failovers,
             f"{self._failovers} failover events vs report "
             f"{report.failovers} vs pool "
             f"{stats.failovers - stats0.failovers}"),
            (self._evictions == stats.evictions - stats0.evictions,
             f"{self._evictions} eviction events vs pool "
             f"{stats.evictions - stats0.evictions}"),
            (self._ondemand == stats.ondemand_loads - stats0.ondemand_loads,
             f"{self._ondemand} on-demand events vs pool "
             f"{stats.ondemand_loads - stats0.ondemand_loads}"),
            # Failover re-placements go through pool.prefetch but are
            # announced as FAILOVER events, so they count toward the
            # event-side total.
            (self._prefetch_issued + self._failovers ==
             stats.prefetch_issued - stats0.prefetch_issued,
             f"{self._prefetch_issued} prefetch-issued + "
             f"{self._failovers} failover events vs pool "
             f"{stats.prefetch_issued - stats0.prefetch_issued}"),
        ]
        for ok, message in checks:
            if not ok:
                suite.record(self.name, message, engine.now)


def default_monitors() -> list[InvariantMonitor]:
    """One fresh instance of every invariant monitor."""
    return [
        ClockMonitor(),
        BudgetMonitor(),
        CoherenceMonitor(),
        ConservationMonitor(),
        KVMonitor(),
        FaultAccountingMonitor(),
    ]


class MonitorSuite:
    """All invariant monitors behind one event sink.

    Satisfies the sink protocol (``emit`` / ``close`` / ``dropped``), so
    :meth:`bind` can attach it through ``engine.set_recorder`` — tee'd
    with any recorder the caller already installed, preserving that
    sink's stream and drop accounting byte for byte.
    """

    #: Sink protocol: monitors check every event, none are ever dropped.
    dropped = 0

    def __init__(
        self,
        monitors: list[InvariantMonitor] | None = None,
        max_recorded: int = 50,
    ) -> None:
        self.monitors = (
            list(monitors) if monitors is not None else default_monitors()
        )
        self.max_recorded = max_recorded
        self.violations: list[Violation] = []
        self.total_violations = 0
        self.engine: "ServingEngine | None" = None
        self._finished = False

    # ------------------------------------------------------------------ #
    # Attachment and the sink protocol
    # ------------------------------------------------------------------ #

    def bind(self, engine: "ServingEngine") -> "MonitorSuite":
        """Attach to ``engine``'s event stream (idempotent per engine)."""
        self.engine = engine
        for monitor in self.monitors:
            monitor.bind(engine)
        existing = engine._recorder
        engine.set_recorder(
            self if existing is None else TeeSink(existing, self)
        )
        return self

    def emit(self, event: Event) -> None:
        """Sink protocol: fan one event out to every monitor's checks."""
        assert self.engine is not None, "suite not bound to an engine"
        for monitor in self.monitors:
            monitor.on_event(self.engine, event, self)

    def close(self) -> None:
        """Sink protocol; monitors hold no resources."""

    # ------------------------------------------------------------------ #
    # Violations
    # ------------------------------------------------------------------ #

    def record(self, monitor: str, message: str, time: float) -> None:
        """Register one violation (kept up to ``max_recorded``)."""
        self.total_violations += 1
        if len(self.violations) < self.max_recorded:
            self.violations.append(Violation(monitor, message, time))

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def finish(
        self, report: "ServingReport", admitted: int | None = None
    ) -> list[Violation]:
        """Run end-of-run conservation checks; returns all violations.

        ``admitted`` is the number of requests handed to the engine
        (served + shed must partition it).  Safe to call once per run.
        """
        assert self.engine is not None, "suite not bound to an engine"
        if not self._finished:
            self._finished = True
            for monitor in self.monitors:
                monitor.on_run_end(self.engine, report, admitted, self)
        return self.violations

    def summary(self, limit: int = 5) -> str:
        """Human-readable digest of the recorded violations."""
        if self.ok:
            return "no invariant violations"
        lines = [str(v) for v in self.violations[:limit]]
        hidden = self.total_violations - len(lines)
        if hidden > 0:
            lines.append(f"... and {hidden} more")
        return "\n".join(lines)

    def raise_if_violated(self, context: str = "") -> None:
        """Raise :class:`ValidationError` when any invariant broke."""
        if self.ok:
            return
        prefix = f"{context}: " if context else ""
        raise ValidationError(
            f"{prefix}{self.total_violations} invariant violation(s)\n"
            + self.summary()
        )


def check_cluster_report(report: "ClusterReport") -> list[Violation]:
    """Cluster-level conservation checks over a finalized report.

    The per-replica invariants are covered by each replica's own
    :class:`MonitorSuite`; this reconciles the fleet bookkeeping — routing
    counters, scale events, and the aggregate fold.  Resilient runs (any
    run with a :class:`~repro.cluster.metrics.ResilienceReport`) swap the
    legacy served+shed==routed identity for outcome-level conservation
    and add the resilience invariants: the retry budget is never
    exceeded, no request is ever dispatched to a replica whose breaker
    was open, hedge winners are counted exactly once, and requests are
    conserved across crash/recovery.
    """
    violations: list[Violation] = []

    def record(message: str) -> None:
        violations.append(Violation("cluster", message))

    assigned = sum(r.assigned for r in report.replicas)
    aggregate = report.aggregate
    if report.resilience is None:
        if assigned != report.routed:
            record(
                f"replica assignments ({assigned}) != routed "
                f"({report.routed})"
            )
        served = len(aggregate.requests)
        if served + aggregate.shed_requests != report.routed:
            record(
                f"served ({served}) + shed ({aggregate.shed_requests}) "
                f"!= routed ({report.routed})"
            )
    else:
        violations.extend(_check_resilience(report, assigned))
    if report.affinity_routed + report.fallback_routed > report.routed:
        record("affinity + fallback routing counters exceed routed total")
    for event in report.scale_events:
        if event.action == "retire" and event.outstanding != 0:
            record(
                f"replica {event.replica_id} retired with "
                f"{event.outstanding} in-flight request(s)"
            )
    ups = sum(1 for e in report.scale_events if e.action == "up")
    downs = sum(1 for e in report.scale_events if e.action == "drain")
    if ups != report.scale_ups or downs != report.scale_downs:
        record(
            f"scale events ({ups} up / {downs} drain) disagree with "
            f"counters ({report.scale_ups} / {report.scale_downs})"
        )
    for field_name in ("hits", "misses", "iterations", "shed_requests"):
        total = getattr(aggregate, field_name)
        folded = sum(getattr(r, field_name) for r in report.replica_reports)
        if total != folded:
            record(
                f"aggregate.{field_name} ({total}) != sum over replicas "
                f"({folded})"
            )
    for summary, replica_report in zip(
        report.replicas, report.replica_reports
    ):
        if summary.served != len(replica_report.requests):
            record(
                f"replica {summary.replica_id} summary served "
                f"({summary.served}) != report ({len(replica_report.requests)})"
            )
        if summary.served + summary.shed_requests != summary.assigned:
            record(
                f"replica {summary.replica_id}: served ({summary.served}) "
                f"+ shed ({summary.shed_requests}) != assigned "
                f"({summary.assigned})"
            )
    if report.tenancy is not None:
        violations.extend(_check_tenancy(report))
    return violations


def _check_tenancy(report: "ClusterReport") -> list[Violation]:
    """Tier-conservation invariants over a multi-tenant run's report.

    Two families: **conservation** — every tier's (and tenant's) offered
    requests resolve exactly once (admitted/served + shed + failed ==
    offered), and the per-tenant fold reproduces the per-tier fold — and
    **priority ordering** — under priority-aware shedding (a configured
    ``priority_bypass_level``), the premium tier's shed rate can never
    exceed the batch tier's: the bypass gate protects high priorities,
    so any inversion means the driver shed the wrong tier first (exactly
    what the ``priority-inversion`` mutant does).
    """
    violations: list[Violation] = []
    tenancy = report.tenancy

    def record(message: str) -> None:
        violations.append(Violation("tenancy", message))

    total_offered = 0
    for name, tier in sorted(tenancy.tiers.items()):
        total_offered += tier.offered
        if tier.served + tier.shed + tier.failed != tier.offered:
            record(
                f"tier {name}: served ({tier.served}) + shed "
                f"({tier.shed}) + failed ({tier.failed}) != offered "
                f"({tier.offered})"
            )
    if total_offered > report.routed:
        record(
            f"tier offered totals ({total_offered}) exceed routed "
            f"({report.routed})"
        )
    folded: dict[str, list[int]] = {}
    for name, tenant in sorted(tenancy.tenants.items()):
        if tenant.served + tenant.shed + tenant.failed != tenant.offered:
            record(
                f"tenant {name}: served ({tenant.served}) + shed "
                f"({tenant.shed}) + failed ({tenant.failed}) != offered "
                f"({tenant.offered})"
            )
        sums = folded.setdefault(tenant.tier, [0, 0, 0, 0])
        sums[0] += tenant.offered
        sums[1] += tenant.served
        sums[2] += tenant.shed
        sums[3] += tenant.failed
    for name, (offered, served, shed, failed) in sorted(folded.items()):
        tier = tenancy.tiers.get(name)
        if tier is None:
            record(f"tenants report tier {name} absent from tier sections")
            continue
        if (tier.offered, tier.served, tier.shed, tier.failed) != (
            offered,
            served,
            shed,
            failed,
        ):
            record(
                f"tier {name} counters "
                f"({tier.offered}/{tier.served}/{tier.shed}/{tier.failed}) "
                f"disagree with tenant fold "
                f"({offered}/{served}/{shed}/{failed})"
            )
    if tenancy.priority_aware:
        premium = tenancy.tiers.get("premium")
        batch = tenancy.tiers.get("batch")
        if (
            premium is not None
            and batch is not None
            and premium.offered > 0
            and batch.offered > 0
            and premium.shed_rate > batch.shed_rate + _EPS
        ):
            record(
                f"priority inversion: premium shed rate "
                f"({premium.shed_rate:.4f}) exceeds batch shed rate "
                f"({batch.shed_rate:.4f}) under priority-aware shedding"
            )
    return violations


def _check_resilience(
    report: "ClusterReport", assigned: int
) -> list[Violation]:
    """Resilience invariants over a tracked cluster run's logs.

    The dispatch log and breaker-transition journal share one global
    sequence counter, so the exact interleaving of placements and state
    changes replays from the finalized report alone — "never dispatched
    to an open breaker" is checked against the journal, not trusted from
    a counter.
    """
    violations: list[Violation] = []
    res = report.resilience

    def record(message: str) -> None:
        violations.append(Violation("resilience", message))

    # Request conservation: every routed request resolves exactly once.
    outcomes = report.outcomes
    if len(outcomes) != report.routed or res.admitted != report.routed:
        record(
            f"outcomes ({len(outcomes)}) / admitted ({res.admitted}) "
            f"disagree with routed ({report.routed})"
        )
    ids = [o.request_id for o in outcomes]
    if len(set(ids)) != len(ids):
        record("duplicate request ids in outcomes")
    pending = sum(1 for o in outcomes if o.outcome == "pending")
    if pending:
        record(f"{pending} outcome(s) still pending at run end")
    served = sum(1 for o in outcomes if o.outcome == "served")
    shed = sum(1 for o in outcomes if o.outcome == "shed")
    failed = sum(1 for o in outcomes if o.outcome == "failed")
    if served + shed + failed != report.routed:
        record(
            f"outcomes served ({served}) + shed ({shed}) + failed "
            f"({failed}) != routed ({report.routed})"
        )
    if shed != res.total_shed or failed != res.failed:
        record(
            f"outcome shed/failed ({shed}/{failed}) disagree with "
            f"counters ({res.total_shed}/{res.failed})"
        )
    # Every dispatch lands on a replica (assigned) exactly once.
    if assigned != len(report.dispatch_log):
        record(
            f"replica assignments ({assigned}) != dispatch log entries "
            f"({len(report.dispatch_log)})"
        )
    # Retry budget is a hard ceiling.
    retries = sum(1 for d in report.dispatch_log if d.kind == "retry")
    if retries != res.retry_dispatches:
        record(
            f"dispatch-log retries ({retries}) != counter "
            f"({res.retry_dispatches})"
        )
    if res.retry_dispatches > res.retry_budget_limit:
        record(
            f"retry dispatches ({res.retry_dispatches}) exceed budget "
            f"({res.retry_budget_limit})"
        )
    # Hedge accounting: winners counted once, fizzles never dispatch.
    hedges = sum(1 for d in report.dispatch_log if d.kind == "hedge")
    if hedges > res.hedges:
        record(
            f"dispatch-log hedges ({hedges}) exceed hedge counter "
            f"({res.hedges})"
        )
    if res.hedges > res.hedge_budget_limit:
        record(
            f"hedges ({res.hedges}) exceed budget "
            f"({res.hedge_budget_limit})"
        )
    hedge_won = sum(1 for o in outcomes if o.hedge_won)
    if hedge_won != res.hedge_wins or res.hedge_wins > res.hedges:
        record(
            f"hedge wins ({res.hedge_wins}, {hedge_won} on outcomes) "
            f"inconsistent with hedges ({res.hedges})"
        )
    if res.hedges_cancelled > res.hedges:
        record(
            f"hedges cancelled ({res.hedges_cancelled}) exceed hedges "
            f"({res.hedges})"
        )
    # Breaker journal replay: no dispatch to an open breaker; probes
    # only against half-open breakers.
    last_state: dict[int, str] = {}
    events: list[tuple[int, str, object]] = [
        (t.seq, "transition", t) for t in report.breaker_transitions
    ] + [(d.seq, "dispatch", d) for d in report.dispatch_log]
    events.sort(key=lambda item: item[0])
    for _, kind, item in events:
        if kind == "transition":
            last_state[item.replica_id] = item.state
            continue
        state = last_state.get(item.replica_id, "closed")
        if state == "open":
            record(
                f"request {item.request_id} dispatched to replica "
                f"{item.replica_id} while its breaker was open "
                f"(seq {item.seq})"
            )
        if item.probe and state != "half-open":
            record(
                f"probe dispatch {item.seq} to replica "
                f"{item.replica_id} whose breaker was {state}"
            )
    # Crash/recovery conservation.
    crash_events = sum(
        1 for e in report.scale_events if e.action == "crash"
    )
    crashed = sum(1 for r in report.replicas if r.crashed)
    if not (res.crashes == crash_events == crashed):
        record(
            f"crash counter ({res.crashes}), crash events "
            f"({crash_events}), and crashed replicas ({crashed}) disagree"
        )
    restart_events = sum(
        1 for e in report.scale_events if e.action == "restart"
    )
    if not (res.restarts == restart_events == len(report.recovery_events)):
        record(
            f"restart counter ({res.restarts}), restart events "
            f"({restart_events}), and recovery events "
            f"({len(report.recovery_events)}) disagree"
        )
    for outcome in outcomes:
        if outcome.outcome == "served" and (
            outcome.latency is None or outcome.ttft is None
        ):
            record(
                f"served outcome {outcome.request_id} missing "
                "latency/ttft"
            )
    return violations
