"""Targeted coverage of smaller branches across the package."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigError
from repro.moe.config import tiny_test_model
from repro.serving.hardware import HardwareConfig
from repro.serving.pool import ExpertPool
from repro.types import ExpertId

E = ExpertId


class KeepNothingOracle:
    def eviction_priority(self, expert, now):
        return 1.0


class TestInsertBlocking:
    @pytest.fixture
    def pool(self):
        config = tiny_test_model(num_layers=4, experts_per_layer=4)
        pool = ExpertPool(
            config,
            HardwareConfig(num_gpus=2, pcie_bandwidth_bps=1e6),
            cache_budget_bytes=4 * config.expert_bytes,
        )
        pool.set_eviction_oracle(KeepNothingOracle())
        return pool

    def test_insert_makes_resident_immediately(self, pool):
        assert pool.insert_blocking(E(0, 0), now=5.0)
        assert pool.is_ready(E(0, 0), 5.0)

    def test_insert_existing_is_noop(self, pool):
        pool.insert_blocking(E(0, 0), 1.0)
        used = pool.used_bytes()
        assert pool.insert_blocking(E(0, 0), 2.0)
        assert pool.used_bytes() == used

    def test_insert_evicts_when_full(self, pool):
        # Device 0 holds even-flat experts; fill its 2-expert budget.
        pool.insert_blocking(E(0, 0), 0.0)
        pool.insert_blocking(E(0, 2), 0.0)
        assert pool.insert_blocking(E(1, 0), 1.0)
        assert pool.stats.evictions == 1

    def test_insert_fails_when_all_protected(self, pool):
        pool.insert_blocking(E(0, 0), 0.0)
        pool.insert_blocking(E(0, 2), 0.0)
        pool.protected = {E(0, 0), E(0, 2)}
        assert not pool.insert_blocking(E(1, 0), 1.0)


class TestOverviewBranches:
    def test_overview_without_no_offload(self):
        from repro.experiments.common import ExperimentConfig, build_world
        from repro.experiments.overview import tradeoff_points

        world = build_world(
            ExperimentConfig(num_requests=8, num_test_requests=1)
        )
        points = tradeoff_points(
            world.config, include_no_offload=False, world=world
        )
        assert all(p.system != "no-offload" for p in points)


class TestStoreViews:
    def test_get_map_is_live_view(self, rng):
        from repro.core.store import ExpertMapStore
        from repro.moe.gating import softmax_rows

        store = ExpertMapStore(4, 3, 4, 8, prefetch_distance=1)
        grid = softmax_rows(rng.standard_normal((3, 4)))
        store.add(rng.standard_normal(8), grid)
        view = store.get_map(0)
        assert view.shape == (3, 4)
        assert np.allclose(view, grid, atol=1e-6)
        with pytest.raises(ConfigError):
            store.get_map(1)


class TestMoEInfinityColdPopularity:
    def test_no_popularity_no_initial_prefetch(
        self, tiny_config, small_hardware
    ):
        from repro.baselines import MoEInfinityPolicy
        from repro.moe.model import MoEModel
        from repro.serving.engine import ServingEngine
        from repro.serving.request import Request

        policy = MoEInfinityPolicy(prefetch_distance=2)
        engine = ServingEngine(
            MoEModel(tiny_config, seed=0),
            policy,
            cache_budget_bytes=12 * tiny_config.expert_bytes,
            hardware=small_hardware,
        )
        report = engine.run([Request(0, 0, 4, 2)])
        # Cold: no EAMs, no popularity — first request is all misses at
        # the gate, but completes.
        assert report.misses > 0


class TestTypes:
    def test_expert_id_is_hashable_tuple(self):
        assert E(1, 2) == (1, 2)
        assert len({E(1, 2), E(1, 2), E(2, 1)}) == 2
        assert str(E(3, 4)) == "E[3,4]"


class TestNoOffloadWithUnevenPlacement:
    def test_headroom_allows_full_preload(self):
        """Round-robin placement is uneven; no-offload must still fit."""
        from repro.experiments.common import ExperimentConfig, build_world, run_system

        world = build_world(
            ExperimentConfig(num_requests=8, num_test_requests=1)
        )
        report = run_system(world, "no-offload")
        assert report.hit_rate == 1.0
