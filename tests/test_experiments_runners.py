"""Smoke tests for every experiment module at miniature scale."""

import numpy as np
import pytest

from repro.experiments.common import ExperimentConfig
from repro.experiments.table1 import table1_rows

SMALL = ExperimentConfig(num_requests=10, num_test_requests=2)


class TestTable1:
    def test_three_models(self):
        rows = table1_rows()
        assert [r.name for r in rows] == [
            "mixtral-8x7b",
            "qwen1.5-moe",
            "phi-3.5-moe",
        ]
        for row in rows:
            assert row.active_params_b < row.total_params_b
            assert "experts" in row.format()


class TestOverview:
    def test_tradeoff_points(self):
        from repro.experiments.overview import tradeoff_points

        points = tradeoff_points(SMALL)
        names = {p.system for p in points}
        assert "fmoe" in names and "no-offload" in names
        no_offload = next(p for p in points if p.system == "no-offload")
        fmoe = next(p for p in points if p.system == "fmoe")
        # fMoE must use far less memory than keeping everything resident.
        assert fmoe.memory_gb < no_offload.memory_gb / 2


class TestEntropyMotivation:
    def test_rows_and_curves(self):
        from repro.experiments.entropy_motivation import (
            entropy_comparison,
            entropy_iteration_curves,
            heatmap_example,
        )

        rows = entropy_comparison(
            models=("mixtral-8x7b",),
            datasets=("lmsys-chat-1m",),
            num_requests=8,
        )
        assert rows[0].coarse_mean_entropy > rows[0].fine_mean_entropy
        curves = entropy_iteration_curves(
            models=("mixtral-8x7b",),
            datasets=("lmsys-chat-1m",),
            num_requests=8,
            max_iterations=8,
        )
        assert curves[0].entropy_by_iteration.size > 1
        coarse, fine = heatmap_example()
        assert coarse.shape == fine.shape


class TestOverall:
    def test_rows_for_two_systems(self):
        from repro.experiments.overall import overall_rows

        rows = overall_rows(
            models=("mixtral-8x7b",),
            datasets=("lmsys-chat-1m",),
            systems=("fmoe", "moe-infinity"),
            config=SMALL,
        )
        assert len(rows) == 2
        assert all(r.ttft_seconds > 0 for r in rows)

    def test_improvement_summary(self):
        from repro.experiments.overall import (
            OverallRow,
            improvement_summary,
        )

        rows = [
            OverallRow("m", "d", "fmoe", 1.0, 0.1, 0.9),
            OverallRow("m", "d", "moe-infinity", 2.0, 0.2, 0.45),
        ]
        summary = improvement_summary(rows)
        assert summary["moe-infinity"]["ttft"] == pytest.approx(0.5)
        assert summary["moe-infinity"]["tpot"] == pytest.approx(0.5)
        assert summary["moe-infinity"]["hit"] == pytest.approx(1.0)


class TestOnline:
    def test_cdfs(self):
        from repro.experiments.online import online_cdfs

        cdfs = online_cdfs(
            systems=("fmoe",),
            num_requests=4,
            config=SMALL,
        )
        assert len(cdfs) == 1
        assert cdfs[0].latencies.size == 4
        assert np.all(np.diff(cdfs[0].latencies) >= 0)
        assert cdfs[0].fractions[-1] == pytest.approx(1.0)
        assert cdfs[0].percentile(50) > 0


class TestCacheLimits:
    def test_tpot_improves_with_budget(self):
        from repro.experiments.cache_limits import tpot_vs_cache_limit

        rows = tpot_vs_cache_limit(
            systems=("fmoe",),
            limits_gb=(8, 64),
            config=SMALL,
        )
        small = next(r for r in rows if r.cache_gb == 8)
        large = next(r for r in rows if r.cache_gb == 64)
        assert large.tpot_seconds <= small.tpot_seconds
        assert large.hit_rate >= small.hit_rate


class TestAblation:
    def test_tracking_variants_ordered(self):
        from repro.experiments.ablation import tracking_ablation

        rows = tracking_ablation(num_requests=10, num_test=2)
        by_name = {r.variant: r.hit_rate for r in rows}
        assert set(by_name) == {
            "speculate",
            "hit-count",
            "map-T",
            "map-T+S",
            "map-T+S+delta",
        }
        # The paper's incremental claim: full map design beats hit counts.
        assert by_name["map-T+S+delta"] > by_name["hit-count"]

    def test_caching_variants(self):
        from repro.experiments.ablation import caching_ablation

        rows = caching_ablation(config=SMALL)
        by_name = {r.variant: r.hit_rate for r in rows}
        assert set(by_name) == {"lru", "lfu", "fmoe"}


class TestSensitivity:
    def test_distance_rows(self):
        from repro.experiments.sensitivity import (
            prefetch_distance_sensitivity,
        )

        rows = prefetch_distance_sensitivity(
            distances=(1, 3), config=SMALL
        )
        assert {r.distance for r in rows} == {1, 3}

    def test_capacity_scores_monotone(self):
        from repro.experiments.sensitivity import store_capacity_sensitivity

        rows = store_capacity_sensitivity(
            capacities=(16, 256), num_requests=16, num_test=2
        )
        assert rows[1].mean_semantic_score >= rows[0].mean_semantic_score

    def test_batch_rows(self):
        from repro.experiments.sensitivity import batch_size_sensitivity

        rows = batch_size_sensitivity(
            systems=("fmoe",), batch_sizes=(1, 2), config=SMALL
        )
        assert {r.batch_size for r in rows} == {1, 2}


class TestOverheads:
    def test_breakdown_rows(self):
        from repro.experiments.overheads import (
            latency_breakdown,
            synchronous_overhead_seconds,
        )

        rows = latency_breakdown(models=("mixtral-8x7b",), config=SMALL)
        components = {r.component for r in rows}
        assert "compute" in components
        assert "map_match" in components
        # fMoE-added synchronous overhead < 30 ms/iteration (paper §6.7).
        assert synchronous_overhead_seconds(rows, "mixtral-8x7b") < 0.03

    def test_store_memory_rows(self):
        from repro.experiments.overheads import store_memory_rows

        rows = store_memory_rows(capacities=(1024, 32768))
        qwen = [r for r in rows if r.model == "qwen1.5-moe"]
        mixtral = [r for r in rows if r.model == "mixtral-8x7b"]
        # Qwen's maps are larger (more experts per layer): Fig. 16.
        assert qwen[0].megabytes > mixtral[0].megabytes
        assert all(r.megabytes < 220 for r in rows)
