"""Tests for metrics aggregation."""

import numpy as np
import pytest

from repro.serving.metrics import (
    LatencyBreakdown,
    RequestMetrics,
    ServingReport,
)


def make_request_metrics(
    request_id=0, ttft=1.0, decode=(0.1, 0.2), arrival=0.0, finish=2.0
):
    return RequestMetrics(
        request_id=request_id,
        arrival_time=arrival,
        start_time=arrival,
        ttft=ttft,
        decode_latencies=list(decode),
        finish_time=finish,
    )


class TestLatencyBreakdown:
    def test_accumulation(self):
        breakdown = LatencyBreakdown()
        breakdown.add_sync("compute", 1.0)
        breakdown.add_sync("compute", 0.5)
        breakdown.add_async("prefetch", 2.0)
        assert breakdown.sync["compute"] == pytest.approx(1.5)
        assert breakdown.total_sync() == pytest.approx(1.5)
        assert breakdown.as_dict() == {
            "sync:compute": 1.5,
            "async:prefetch": 2.0,
        }

    def test_merge(self):
        a = LatencyBreakdown()
        a.add_sync("x", 1.0)
        b = LatencyBreakdown()
        b.add_sync("x", 2.0)
        b.add_async("y", 3.0)
        a.merge(b)
        assert a.sync["x"] == pytest.approx(3.0)
        assert a.asynchronous["y"] == pytest.approx(3.0)


class TestRequestMetrics:
    def test_tpot_mean(self):
        metrics = make_request_metrics(decode=(0.1, 0.3))
        assert metrics.tpot == pytest.approx(0.2)

    def test_tpot_empty(self):
        metrics = make_request_metrics(decode=())
        assert metrics.tpot == 0.0

    def test_e2e_latency(self):
        metrics = make_request_metrics(arrival=1.0, finish=4.5)
        assert metrics.e2e_latency == pytest.approx(3.5)


class TestServingReport:
    def test_hit_rate(self):
        report = ServingReport(hits=3, misses=1)
        assert report.hit_rate == pytest.approx(0.75)
        assert report.activations == 4

    def test_hit_rate_no_activations(self):
        assert ServingReport().hit_rate == 0.0

    def test_means(self):
        report = ServingReport(
            requests=[
                make_request_metrics(ttft=1.0, decode=(0.2,)),
                make_request_metrics(ttft=3.0, decode=(0.4,)),
            ]
        )
        assert report.mean_ttft() == pytest.approx(2.0)
        assert report.mean_tpot() == pytest.approx(0.3)

    def test_means_empty(self):
        report = ServingReport()
        assert report.mean_ttft() == 0.0
        assert report.mean_tpot() == 0.0

    def test_latency_cdf_monotonic(self):
        report = ServingReport(
            requests=[
                make_request_metrics(arrival=0.0, finish=float(i))
                for i in range(1, 11)
            ]
        )
        lat, frac = report.latency_cdf()
        assert np.all(np.diff(lat) >= 0)
        assert frac[-1] == pytest.approx(1.0)

    def test_latency_cdf_downsampling(self):
        report = ServingReport(
            requests=[
                make_request_metrics(arrival=0.0, finish=float(i))
                for i in range(1, 500)
            ]
        )
        lat, frac = report.latency_cdf(points=50)
        assert len(lat) == 50

    def test_latency_cdf_empty(self):
        lat, frac = ServingReport().latency_cdf()
        assert lat.size == 0 and frac.size == 0

    def test_percentile(self):
        report = ServingReport(
            requests=[
                make_request_metrics(arrival=0.0, finish=float(i))
                for i in range(1, 101)
            ]
        )
        assert report.percentile_latency(50) == pytest.approx(50.5)

    def test_mean_iteration_breakdown(self):
        report = ServingReport(iterations=4)
        report.breakdown.add_sync("compute", 2.0)
        per_iter = report.mean_iteration_breakdown()
        assert per_iter["sync:compute"] == pytest.approx(0.5)

    def test_mean_iteration_breakdown_no_iterations(self):
        assert ServingReport().mean_iteration_breakdown() == {}
