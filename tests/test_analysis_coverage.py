"""Tests for the §4.4 coverage analysis."""

import pytest

from repro.analysis.coverage import (
    CoveragePoint,
    coverage_curve,
    paper_capacity_bounds,
)
from repro.errors import ConfigError
from repro.moe.config import MIXTRAL_8X7B, tiny_test_model


class TestCapacityBounds:
    def test_formulas(self):
        import math

        config = tiny_test_model(num_layers=8, experts_per_layer=6)
        b75, b98 = paper_capacity_bounds(config)
        assert b75 == 2 * 48
        assert b98 == math.ceil(0.5 * 48 * math.log(48))

    def test_paper_scale_estimate(self):
        """§4.4: the maximal requirement stays below 50K maps."""
        _, b98 = paper_capacity_bounds(MIXTRAL_8X7B)
        assert b98 < 50_000


class TestCoverageCurve:
    @pytest.fixture(scope="class")
    def points(self):
        config = tiny_test_model(num_layers=6, experts_per_layer=4)
        return coverage_curve(config, (4, 16, 64), num_probes=32, seed=0)

    def test_returns_one_point_per_capacity(self, points):
        assert [p.capacity for p in points] == [4, 16, 64]
        assert all(isinstance(p, CoveragePoint) for p in points)

    def test_similarity_in_range(self, points):
        for p in points:
            assert -1.0 <= p.mean_best_similarity <= 1.0
            assert 0.0 <= p.fraction_above_75 <= 1.0
            assert 0.0 <= p.fraction_above_98 <= 1.0

    def test_coverage_improves_with_capacity(self, points):
        assert (
            points[-1].mean_best_similarity >= points[0].mean_best_similarity
        )

    def test_validation(self):
        config = tiny_test_model()
        with pytest.raises(ConfigError):
            coverage_curve(config, ())
        with pytest.raises(ConfigError):
            coverage_curve(config, (4,), num_probes=0)
