"""Differential parity: the columnar engine core vs the scalar reference.

The columnar rewrite of the serving hot loop is pinned three ways; this
suite is the differential leg.  ``columnar=False`` swaps in the scalar
reference interpreter (per-expert readiness probes, per-candidate
eviction scoring, naive full-prefix trajectory re-matching), and every
test here demands **byte-identical** serialized reports between the two
cores — on the committed golden corpus, on hypothesis-generated worlds
and arrival traces, through fault schedules, and through the cluster
driver.  The mutant screen re-runs through the columnar core to prove
the validators kept their teeth across the rewrite.
"""

from __future__ import annotations

import dataclasses
import inspect
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, run_cluster
from repro.experiments.common import run_system
from repro.serving.engine import ServingEngine
from repro.serving.export import report_to_dict, report_to_json
from repro.serving.faults import FaultConfig, FaultSchedule
from repro.validate.harness import detect_mutant
from repro.validate.mutants import MUTANTS

from tests._cluster_testkit import arrival_trace, tiny_world
from tests._strategies import fleet_shapes
from tests.golden.corpus import GOLDEN_CASES, load_golden

PARITY_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _bytes(report) -> str:
    return report_to_json(report)


class TestGoldenParity:
    """Both cores reproduce the committed golden corpus byte for byte."""

    @pytest.fixture(scope="class")
    def world_cache(self):
        from repro.experiments.runner import WorldCache

        return WorldCache()

    @pytest.mark.parametrize("case", GOLDEN_CASES, ids=lambda c: c.filename)
    def test_golden_equals_columnar_equals_scalar(self, case, world_cache):
        from repro.experiments.common import ExperimentConfig
        from tests.golden.corpus import (
            GOLDEN_NUM_REQUESTS,
            GOLDEN_NUM_TEST_REQUESTS,
            GOLDEN_SEED,
        )

        config = ExperimentConfig(
            model_name=case.model,
            dataset=case.dataset,
            num_requests=GOLDEN_NUM_REQUESTS,
            num_test_requests=GOLDEN_NUM_TEST_REQUESTS,
            seed=GOLDEN_SEED,
        )
        world = world_cache.get(config)
        golden = json.dumps(load_golden(case), sort_keys=True)
        columnar = json.dumps(
            report_to_dict(run_system(world, case.system)), sort_keys=True
        )
        scalar = json.dumps(
            report_to_dict(run_system(world, case.system, columnar=False)),
            sort_keys=True,
        )
        assert columnar == golden, f"{case.filename}: columnar core drifted"
        assert scalar == golden, f"{case.filename}: scalar reference drifted"


class TestPropertyParity:
    """Generated workloads serve identically through both cores."""

    @PARITY_SETTINGS
    @given(shape=fleet_shapes(max_replicas=1))
    def test_bare_engine_parity_over_arrival_traces(self, shape):
        world = tiny_world(shape["seed"])
        trace = arrival_trace(
            world, n=shape["n"], gap=shape["gap"], seed=shape["seed"]
        )
        kwargs = dict(requests=trace, respect_arrivals=True)
        assert _bytes(
            run_system(world, "fmoe", columnar=False, **kwargs)
        ) == _bytes(run_system(world, "fmoe", **kwargs))

    @PARITY_SETTINGS
    @given(
        seed=st.integers(0, 3),
        degradation=st.sampled_from((0.0, 0.5, 1.0)),
        failure=st.sampled_from((0.0, 0.05)),
        straggler=st.sampled_from((0.0, 0.5)),
    )
    def test_faulted_parity(self, seed, degradation, failure, straggler):
        """Fault schedules perturb both cores identically."""
        world = tiny_world(seed)
        config = FaultConfig(
            seed=seed,
            pcie_degradation_prob=degradation,
            transfer_failure_prob=failure,
            straggler_prob=straggler,
        )
        reports = [
            run_system(
                world,
                "fmoe",
                faults=FaultSchedule(config),
                columnar=columnar,
            )
            for columnar in (True, False)
        ]
        assert _bytes(reports[0]) == _bytes(reports[1])

    @PARITY_SETTINGS
    @given(shape=fleet_shapes())
    def test_cluster_parity(self, shape):
        """The cluster driver is core-agnostic, replica by replica."""
        world = tiny_world(shape["seed"])
        trace = arrival_trace(
            world, n=shape["n"], gap=shape["gap"], seed=shape["seed"]
        )
        spec = ClusterSpec(
            replicas=shape["replicas"], router=shape["router"]
        )
        columnar = run_cluster(world, "fmoe", spec, requests=trace)
        import repro.cluster.driver as driver
        import repro.experiments.common as common

        with pytest.MonkeyPatch.context() as mp:
            mp.setattr(
                driver,
                "make_engine",
                lambda *args, **kwargs: common.make_engine(
                    *args, columnar=False, **kwargs
                ),
            )
            scalar = run_cluster(world, "fmoe", spec, requests=trace)
        assert _bytes(columnar.aggregate) == _bytes(scalar.aggregate)


class TestMutantsThroughColumnarCore:
    """The batched core did not blunt the validators."""

    def test_columnar_is_the_default_core(self):
        signature = inspect.signature(ServingEngine.__init__)
        assert signature.parameters["columnar"].default is True

    @pytest.mark.parametrize("mutant", MUTANTS, ids=lambda m: m.name)
    def test_mutant_detected_through_batched_core(self, mutant):
        world = tiny_world()
        total = world.model_config.total_expert_bytes
        budget = (
            2
            * world.config.hardware.num_gpus
            * world.model_config.expert_bytes
        )
        pressured = dataclasses.replace(
            world, config=world.config.with_(cache_fraction=budget / total)
        )
        result = detect_mutant(pressured, mutant)
        assert result.flagged, (
            f"mutant {mutant.name!r} survived the columnar core "
            f"(expected detector: {mutant.expected_detector})"
        )
