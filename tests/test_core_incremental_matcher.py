"""Tests for the incremental (streaming) trajectory matcher."""

import numpy as np
import pytest

from repro.core.matcher import ExpertMapMatcher
from repro.core.store import ExpertMapStore
from repro.moe.gating import softmax_rows


@pytest.fixture
def loaded(rng):
    store = ExpertMapStore(
        capacity=32,
        num_layers=6,
        num_experts=4,
        embedding_dim=8,
        prefetch_distance=2,
    )
    for _ in range(12):
        emb = rng.standard_normal(8)
        store.add(emb, softmax_rows(rng.standard_normal((6, 4))))
    return ExpertMapMatcher(store), store


class TestEquivalence:
    def test_matches_full_recompute_layer_by_layer(self, loaded, rng):
        """Incremental scores must equal the O(C·l·J) full computation."""
        matcher, store = loaded
        query = softmax_rows(rng.standard_normal((2, 6, 4)))
        session = matcher.incremental_session(batch_size=2)
        for layer in range(6):
            incremental = session.observe_layer(query[:, layer, :])
            full = matcher.match_trajectory(query, layer + 1)
            assert incremental is not None and full is not None
            assert np.allclose(incremental.scores, full.scores, atol=1e-9)
            assert np.array_equal(incremental.indices, full.indices)

    def test_exact_prefix_scores_one(self, loaded):
        matcher, store = loaded
        target = store.get_map(5)[None, :, :].astype(np.float64)
        session = matcher.incremental_session(batch_size=1)
        for layer in range(6):
            result = session.observe_layer(target[:, layer, :])
        assert int(result.indices[0]) == 5
        assert result.scores[0] == pytest.approx(1.0, abs=1e-5)


class TestGuards:
    def test_empty_store_returns_none(self):
        store = ExpertMapStore(4, 6, 4, 8, 2)
        session = ExpertMapMatcher(store).incremental_session(1)
        assert session.observe_layer(np.ones((1, 4))) is None

    def test_batch_size_mismatch(self, loaded):
        matcher, _ = loaded
        session = matcher.incremental_session(batch_size=2)
        with pytest.raises(ValueError, match="expected batch"):
            session.observe_layer(np.ones((3, 4)))

    def test_too_many_layers(self, loaded, rng):
        matcher, _ = loaded
        session = matcher.incremental_session(batch_size=1)
        for _ in range(6):
            session.observe_layer(rng.random((1, 4)))
        with pytest.raises(ValueError, match="already observed"):
            session.observe_layer(rng.random((1, 4)))

    def test_invalid_batch_size(self, loaded):
        matcher, _ = loaded
        with pytest.raises(ValueError):
            matcher.incremental_session(0)


class TestPerformance:
    def test_incremental_is_faster_on_wide_models(self, rng):
        """The optimization target: Qwen-like shapes (24 × 60)."""
        import time

        store = ExpertMapStore(512, 24, 60, 64, prefetch_distance=3)
        for _ in range(512):
            store.add(
                rng.standard_normal(64),
                softmax_rows(rng.standard_normal((24, 60))),
            )
        matcher = ExpertMapMatcher(store)
        query = softmax_rows(rng.standard_normal((1, 24, 60)))

        start = time.perf_counter()
        for _ in range(5):
            session = matcher.incremental_session(1)
            for layer in range(24):
                session.observe_layer(query[:, layer, :])
        incremental_time = time.perf_counter() - start

        start = time.perf_counter()
        for _ in range(5):
            for layer in range(24):
                matcher.match_trajectory(query, layer + 1)
        full_time = time.perf_counter() - start

        assert incremental_time < full_time
