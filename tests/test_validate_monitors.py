"""Unit tests for the runtime invariant monitors.

Covers the three contracts the monitors promise: clean runs produce zero
violations, real breaches are recorded and surfaced, and attaching a
suite never changes a single byte of the run's report
(telemetry-neutrality).
"""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.experiments.common import make_engine, run_system
from repro.obs.sinks import RingBufferSink
from repro.serving.events import Event, EventKind
from repro.serving.export import report_to_json
from repro.serving.faults import (
    DeviceFailure,
    FaultConfig,
    FaultSchedule,
    SLOConfig,
)
from repro.validate.monitors import (
    ClockMonitor,
    MonitorSuite,
    Violation,
    check_cluster_report,
    default_monitors,
)

from tests._cluster_testkit import arrival_trace, tiny_world


def _monitored(system="fmoe", **kwargs):
    world = tiny_world()
    suite = MonitorSuite()
    report = run_system(world, system, monitor=suite, **kwargs)
    admitted = len(kwargs.get("requests") or world.test_requests)
    suite.finish(report, admitted=admitted)
    return suite, report


class TestCleanRuns:
    @pytest.mark.parametrize(
        "system", ["fmoe", "moe-infinity", "deepspeed-inference", "oracle"]
    )
    def test_offline_run_has_zero_violations(self, system):
        suite, _ = _monitored(system)
        assert suite.ok, suite.summary()
        assert suite.total_violations == 0

    def test_faulted_run_has_zero_violations(self):
        world = tiny_world()
        # Losing a device shrinks the fleet, so give the survivors room
        # (three experts per GPU) for the failed-over residents.
        budget = 3 * world.config.hardware.num_gpus * (
            world.model_config.expert_bytes
        )
        suite, _ = _monitored(
            "fmoe",
            requests=arrival_trace(world, n=6, gap=0.3),
            respect_arrivals=True,
            cache_budget_bytes=budget,
            faults=FaultSchedule(
                FaultConfig(
                    seed=3,
                    transfer_failure_prob=0.1,
                    straggler_prob=0.2,
                    device_failures=(DeviceFailure(time=0.5, device=1),),
                )
            ),
            slo=SLOConfig(),
        )
        assert suite.ok, suite.summary()

    def test_shedding_run_conserves_requests(self):
        world = tiny_world()
        trace = arrival_trace(world, n=8, gap=0.0)
        suite, report = _monitored(
            "fmoe",
            requests=trace,
            respect_arrivals=True,
            slo=SLOConfig(queue_delay_budget_seconds=0.5),
        )
        assert suite.ok, suite.summary()
        assert len(report.requests) + report.shed_requests == len(trace)


class TestTelemetryNeutrality:
    def test_monitored_report_is_byte_identical(self):
        world = tiny_world()
        plain = run_system(world, "fmoe")
        suite = MonitorSuite()
        monitored = run_system(world, "fmoe", monitor=suite)
        assert report_to_json(monitored) == report_to_json(plain)
        assert suite.ok

    def test_existing_recorder_keeps_its_stream(self):
        world = tiny_world()
        solo = RingBufferSink(4096)
        run_system(world, "fmoe", recorder=solo)
        tee = RingBufferSink(4096)
        run_system(world, "fmoe", recorder=tee, monitor=MonitorSuite())
        assert [e.to_dict() for e in tee.events] == [
            e.to_dict() for e in solo.events
        ]


class TestViolationPlumbing:
    def test_clock_monitor_flags_rewind(self):
        engine = make_engine(tiny_world(), "fmoe")
        suite = MonitorSuite(monitors=[ClockMonitor()])
        suite.bind(engine)
        suite.emit(Event(EventKind.ITERATION_START, time=1.0, iteration=0))
        suite.emit(Event(EventKind.ITERATION_END, time=0.5, iteration=0))
        assert not suite.ok
        assert suite.violations[0].monitor == "clock"
        with pytest.raises(ValidationError, match="clock"):
            suite.raise_if_violated("unit")

    def test_recording_caps_but_counts_everything(self):
        suite = MonitorSuite(monitors=[], max_recorded=3)
        for i in range(10):
            suite.record("unit", f"breach {i}", float(i))
        assert len(suite.violations) == 3
        assert suite.total_violations == 10
        assert "and 7 more" in suite.summary()

    def test_finish_is_idempotent(self):
        suite, report = _monitored("fmoe")
        before = suite.total_violations
        suite.finish(report, admitted=len(tiny_world().test_requests))
        assert suite.total_violations == before

    def test_default_monitors_are_fresh_instances(self):
        first, second = default_monitors(), default_monitors()
        assert {type(m) for m in first} == {type(m) for m in second}
        assert all(a is not b for a, b in zip(first, second))

    def test_violation_renders_with_time_and_monitor(self):
        text = str(Violation("budget", "over by 42 bytes", 1.5))
        assert "budget" in text and "over by 42 bytes" in text


class TestClusterChecks:
    def _report(self):
        from repro.cluster import ClusterSpec, run_cluster

        world = tiny_world()
        return run_cluster(
            world,
            "fmoe",
            ClusterSpec(replicas=2, router="round-robin"),
            requests=arrival_trace(world, n=6, gap=0.4),
        )

    def test_healthy_cluster_report_is_clean(self):
        assert check_cluster_report(self._report()) == []

    def test_tampered_routing_counter_is_flagged(self):
        report = self._report()
        report.routed += 1
        messages = [v.message for v in check_cluster_report(report)]
        assert any("routed" in m for m in messages)

    def test_tampered_aggregate_fold_is_flagged(self):
        report = self._report()
        report.aggregate.hits += 5
        messages = [v.message for v in check_cluster_report(report)]
        assert any("aggregate.hits" in m for m in messages)


class TestTenancyChecks:
    def _tenant_report(self):
        from repro.cluster import ClusterSpec, ResilienceConfig, run_cluster
        from repro.workloads.traffic import (
            PREMIUM_PRIORITY,
            TenantSpec,
            TrafficConfig,
            materialize_traffic,
        )

        world = tiny_world()
        trace = materialize_traffic(
            TrafficConfig(
                tenants=(
                    TenantSpec(
                        name="prem",
                        num_requests=6,
                        mean_interarrival_seconds=0.05,
                        burstiness_cv=1.0,
                        tier="premium",
                    ),
                    TenantSpec(
                        name="bulk",
                        num_requests=6,
                        mean_interarrival_seconds=0.05,
                        burstiness_cv=1.0,
                        tier="batch",
                    ),
                ),
                seed=0,
            )
        )
        return run_cluster(
            world,
            "fmoe",
            ClusterSpec(
                replicas=1,
                resilience=ResilienceConfig(
                    admission_rate=2.0,
                    admission_burst=1,
                    priority_bypass_level=PREMIUM_PRIORITY,
                ),
            ),
            requests=trace,
        )

    def test_healthy_tenancy_report_is_clean(self):
        report = self._tenant_report()
        assert report.tenancy is not None
        assert report.tenancy.priority_aware
        assert check_cluster_report(report) == []

    def test_tier_conservation_breach_is_flagged(self):
        report = self._tenant_report()
        report.tenancy.tiers["premium"].served += 1
        messages = [v.message for v in check_cluster_report(report)]
        assert any(
            "tier premium" in m and "offered" in m for m in messages
        )

    def test_tenant_fold_disagreement_is_flagged(self):
        report = self._tenant_report()
        tenant = report.tenancy.tenants["bulk"]
        tenant.served += 1
        tenant.offered += 1
        messages = [v.message for v in check_cluster_report(report)]
        assert any("disagree with tenant fold" in m for m in messages)

    def test_priority_inversion_is_flagged(self):
        report = self._tenant_report()
        tiers = report.tenancy.tiers
        tenants = report.tenancy.tenants
        assert tiers["batch"].shed > tiers["premium"].shed
        # Forge the inversion (swap the shed counts) while keeping every
        # conservation identity intact, so the ordering check fires alone.
        tiers["premium"].shed, tiers["batch"].shed = (
            tiers["batch"].shed,
            tiers["premium"].shed,
        )
        for tier_name, tenant_name in (
            ("premium", "prem"),
            ("batch", "bulk"),
        ):
            tier = tiers[tier_name]
            tier.served = tier.offered - tier.shed - tier.failed
            tenant = tenants[tenant_name]
            tenant.shed = tier.shed
            tenant.served = tier.served
            tenant.failed = tier.failed
        violations = check_cluster_report(report)
        messages = [v.message for v in violations]
        assert any("priority inversion" in m for m in messages)
        assert all("offered" not in m for m in messages)
