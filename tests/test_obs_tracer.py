"""Tests for the virtual-clock span tracer and its Chrome export."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.trace import (
    ENGINE_LANE,
    Span,
    Tracer,
    device_lane,
    request_lane,
)


class TestNesting:
    def test_begin_end_pairs_lifo(self):
        tracer = Tracer()
        tracer.begin("outer", 0.0)
        tracer.begin("inner", 1.0)
        inner = tracer.end(2.0)
        outer = tracer.end(3.0)
        assert inner.name == "inner" and inner.duration == 1.0
        assert outer.name == "outer" and outer.duration == 3.0
        assert tracer.open_depth() == 0

    def test_child_contained_in_parent(self):
        tracer = Tracer()
        tracer.begin("iteration", 0.0)
        tracer.begin("layer", 0.5)
        tracer.end(1.0)
        tracer.end(2.0)
        child, parent = tracer.spans
        assert parent.start <= child.start and child.end <= parent.end

    def test_lanes_nest_independently(self):
        tracer = Tracer()
        tracer.begin("engine", 5.0, tid=ENGINE_LANE)
        tracer.begin("xfer", 1.0, tid=device_lane(2))
        # Each lane keeps its own stack; out-of-order across lanes is fine.
        tracer.end(2.0, tid=device_lane(2))
        tracer.end(6.0, tid=ENGINE_LANE)
        assert {s.tid for s in tracer.spans} == {ENGINE_LANE, device_lane(2)}

    def test_end_without_begin_raises(self):
        with pytest.raises(TelemetryError, match="no open span"):
            Tracer().end(1.0)

    def test_child_before_parent_raises(self):
        tracer = Tracer()
        tracer.begin("outer", 2.0)
        with pytest.raises(TelemetryError, match="before its parent"):
            tracer.begin("inner", 1.0)

    def test_end_before_start_raises(self):
        tracer = Tracer()
        tracer.begin("span", 2.0)
        with pytest.raises(TelemetryError, match="before its start"):
            tracer.end(1.0)

    def test_negative_timestamp_raises(self):
        with pytest.raises(TelemetryError, match=">= 0"):
            Tracer().begin("span", -0.5)
        with pytest.raises(TelemetryError, match=">= 0"):
            Tracer().complete("span", -1.0, 0.0)

    def test_complete_does_not_touch_stack(self):
        tracer = Tracer()
        tracer.begin("outer", 0.0)
        tracer.complete("serve", 0.2, 0.4, layer=3)
        assert tracer.open_depth() == 1
        tracer.end(1.0)
        assert len(tracer.spans) == 2

    def test_end_args_merge_with_begin_args(self):
        tracer = Tracer()
        tracer.begin("iteration", 0.0, index=7)
        span = tracer.end(1.0, batch=2)
        assert span.args == {"index": 7, "batch": 2}


class TestLanes:
    def test_lane_helpers_disjoint(self):
        assert ENGINE_LANE == 0
        assert device_lane(0) != ENGINE_LANE
        assert request_lane(0) != device_lane(0)
        # Up to 9000 devices before lanes could collide with requests.
        assert device_lane(5) < request_lane(0)


class TestChromeExport:
    def make_trace(self):
        tracer = Tracer(process_name="test-proc")
        tracer.set_lane_name(ENGINE_LANE, "engine")
        tracer.begin("iteration", 0.0, category="iteration", index=0)
        tracer.complete(
            "serve", 0.25, 0.5, category="expert", layer=1, hit=True
        )
        tracer.end(1.0)
        tracer.instant("dispatch", 0.125, category="scheduler")
        return tracer

    def test_strict_export_rejects_open_spans(self):
        tracer = Tracer()
        tracer.begin("dangling", 0.0)
        with pytest.raises(TelemetryError, match="open spans"):
            tracer.to_chrome()
        # Non-strict export drops the unbalanced span instead of raising.
        assert tracer.to_chrome(strict=False)["traceEvents"]

    def test_schema_well_formed(self):
        payload = self.make_trace().to_chrome()
        assert set(payload) == {"traceEvents", "displayTimeUnit"}
        for event in payload["traceEvents"]:
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0

    def test_events_sorted_by_timestamp(self):
        payload = self.make_trace().to_chrome()
        stamps = [
            e["ts"] for e in payload["traceEvents"] if e["ph"] in ("X", "i")
        ]
        assert stamps == sorted(stamps)

    def test_timestamps_in_microseconds(self):
        tracer = Tracer()
        tracer.complete("span", 0.5, 1.5)
        (event,) = [
            e for e in tracer.to_chrome()["traceEvents"] if e["ph"] == "X"
        ]
        assert event["ts"] == 500_000.0
        assert event["dur"] == 1_000_000.0

    def test_golden_chrome_snippet(self):
        """The exact export of one tiny trace, frozen as a golden value."""
        tracer = Tracer(process_name="golden")
        tracer.set_lane_name(0, "engine")
        tracer.begin("iteration", 0.0, category="iteration", index=0)
        tracer.end(0.001)
        assert tracer.to_chrome() == {
            "traceEvents": [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"name": "golden"},
                },
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": 0,
                    "args": {"name": "engine"},
                },
                {
                    "name": "iteration",
                    "cat": "iteration",
                    "ph": "X",
                    "ts": 0.0,
                    "dur": 1000.0,
                    "pid": 0,
                    "tid": 0,
                    "args": {"index": 0},
                },
            ],
            "displayTimeUnit": "ms",
        }

    def test_write_chrome_round_trips(self, tmp_path):
        tracer = self.make_trace()
        path = tracer.write_chrome(tmp_path / "trace.json")
        assert json.loads(path.read_text()) == tracer.to_chrome()


class TestSpan:
    def test_duration(self):
        assert Span("s", 1.0, 3.5).duration == 2.5
