"""Repository hygiene: no build artifacts in the tracked tree.

``__pycache__`` directories are interpreter droppings; one once ended up
sitting in ``benchmarks/`` and shadowing review diffs.  The tracked file
list is the contract — anything a clone receives must be source, not
bytecode.
"""

from __future__ import annotations

import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    result = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        pytest.skip("not a git checkout")
    return result.stdout.splitlines()


def test_no_pycache_is_git_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if "__pycache__" in Path(path).parts
    ]
    assert not offenders, (
        "bytecode caches are tracked — `git rm -r --cached` them: "
        + ", ".join(offenders)
    )


def test_no_compiled_bytecode_is_git_tracked():
    offenders = [
        path
        for path in _tracked_files()
        if path.endswith((".pyc", ".pyo"))
    ]
    assert not offenders, "compiled bytecode is tracked: " + ", ".join(
        offenders
    )
