"""Documentation gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(
        repro.__path__, prefix="repro."
    )
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


def _inherits_doc(cls, method_name):
    """True when any ancestor documents a method of the same name.

    Policy hooks and tracker methods implement an interface documented at
    the base; overrides inherit that contract rather than restating it.
    """
    for ancestor in cls.__mro__[1:]:
        candidate = ancestor.__dict__.get(method_name)
        if candidate is not None and inspect.isfunction(candidate):
            if candidate.__doc__ and candidate.__doc__.strip():
                return True
    return False


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                if _inherits_doc(obj, method_name):
                    continue
                undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module_name}: {undocumented}"
