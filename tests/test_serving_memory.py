"""Tests for the PCIe transfer channel: queueing, pausing, cancelling."""

import pytest

from repro.errors import ConfigError
from repro.serving.memory import TransferChannel
from repro.types import ExpertId

E = ExpertId


class TestSchedule:
    def test_single_transfer_timing(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        task = channel.schedule(1.0, 50, E(0, 0))
        assert task.start == 1.0
        assert task.end == pytest.approx(1.5)

    def test_transfers_serialize(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        a = channel.schedule(0.0, 100, E(0, 0))
        b = channel.schedule(0.0, 100, E(0, 1))
        assert a.end == pytest.approx(1.0)
        assert b.start == pytest.approx(1.0)
        assert b.end == pytest.approx(2.0)

    def test_idle_gap_respected(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.schedule(0.0, 100, E(0, 0))
        late = channel.schedule(5.0, 100, E(0, 1))
        assert late.start == pytest.approx(5.0)

    def test_bytes_accounted(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.schedule(0.0, 100, E(0, 0))
        channel.schedule(0.0, 200, E(0, 1))
        assert channel.bytes_transferred == 300

    def test_invalid_bandwidth(self):
        with pytest.raises(ConfigError):
            TransferChannel(bandwidth_bps=0.0)


class TestUrgentLoad:
    def test_urgent_on_idle_channel(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        task = channel.load_urgent(2.0, 100, E(0, 0))
        assert task.start == 2.0
        assert task.end == pytest.approx(3.0)

    def test_urgent_waits_for_inflight_only(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        inflight = channel.schedule(0.0, 100, E(0, 0))  # 0..1
        queued = channel.schedule(0.0, 100, E(0, 1))  # 1..2 (queued)
        urgent = channel.load_urgent(0.5, 100, E(0, 2))
        # Urgent waits for the in-flight transfer, not the queued one.
        assert urgent.start == pytest.approx(inflight.end)
        assert urgent.end == pytest.approx(2.0)
        # The queued transfer was pushed back by the urgent duration.
        assert queued.start == pytest.approx(2.0)
        assert queued.end == pytest.approx(3.0)

    def test_urgent_pauses_multiple_queued(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        tasks = [channel.schedule(0.0, 100, E(0, j)) for j in range(3)]
        channel.load_urgent(0.2, 100, E(1, 0))
        # All not-yet-started transfers shift by 1 second.
        assert tasks[1].start == pytest.approx(2.0)
        assert tasks[2].start == pytest.approx(3.0)

    def test_urgent_counter(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.load_urgent(0.0, 100, E(0, 0))
        assert channel.urgent_loads == 1


class TestCancel:
    def test_cancel_queued_task(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.schedule(0.0, 100, E(0, 0))
        queued = channel.schedule(0.0, 100, E(0, 1))
        assert channel.cancel(queued, now=0.5)
        assert queued not in channel.pending_tasks(0.5)

    def test_cannot_cancel_inflight(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        inflight = channel.schedule(0.0, 100, E(0, 0))
        assert not channel.cancel(inflight, now=0.5)

    def test_cancel_refunds_bytes(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.schedule(0.0, 100, E(0, 0))
        queued = channel.schedule(0.0, 100, E(0, 1))
        channel.cancel(queued, now=0.5)
        assert channel.bytes_transferred == pytest.approx(100, abs=1)

    def test_cancel_twice_is_safe(self):
        channel = TransferChannel(bandwidth_bps=100.0)
        channel.schedule(0.0, 100, E(0, 0))
        queued = channel.schedule(0.0, 100, E(0, 1))
        assert channel.cancel(queued, now=0.5)
        assert not channel.cancel(queued, now=0.5)


class TestCompaction:
    def test_old_tasks_are_compacted(self):
        channel = TransferChannel(bandwidth_bps=1e6)
        for j in range(600):
            channel.load_urgent(float(j), 10, E(0, j % 8))
        assert len(channel.pending_tasks(1e9)) == 0
