"""Unit tests for the heterogeneous-fleet building blocks.

Covers the pieces the end-to-end suites exercise only indirectly: the
:class:`ReplicaProfile` hardware algebra, config validation, the
price-aware autoscaler drain policy, the cost-aware router's scoring
and fallback accounting, and the ``fleet`` report section.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    ClusterSpec,
    ReplicaProfile,
    cluster_report_to_json,
    get_profile,
    make_router,
    run_cluster,
)
from repro.errors import ConfigError
from repro.moe.config import tiny_test_model
from repro.serving.hardware import DEFAULT_HARDWARE
from repro.types import ExpertId

from tests._cluster_testkit import arrival_trace, fleet_spec, tiny_world


class TestReplicaProfile:
    def test_default_profile_is_identity(self):
        profile = ReplicaProfile()
        assert profile.is_default
        # Exact object identity: the homogeneous fleet derives the SAME
        # hardware, which is what makes byte parity hold by construction.
        assert profile.apply(DEFAULT_HARDWARE) is DEFAULT_HARDWARE
        assert profile.scale_budget(12345) == 12345

    def test_scales_apply_to_hardware(self):
        profile = ReplicaProfile(
            name="custom",
            pcie_scale=4.0,
            vram_scale=2.0,
            flops_scale=1.5,
            membw_scale=1.2,
        )
        hw = profile.apply(DEFAULT_HARDWARE)
        assert hw.pcie_bandwidth_bps == (
            DEFAULT_HARDWARE.pcie_bandwidth_bps * 4.0
        )
        assert hw.gpu_memory_bytes == int(
            DEFAULT_HARDWARE.gpu_memory_bytes * 2.0
        )
        assert hw.gpu_flops == DEFAULT_HARDWARE.gpu_flops * 1.5
        assert hw.gpu_memory_bandwidth_bps == (
            DEFAULT_HARDWARE.gpu_memory_bandwidth_bps * 1.2
        )
        assert profile.scale_budget(1000) == 2000

    def test_validation_rejects_bad_profiles(self):
        with pytest.raises(ConfigError):
            ReplicaProfile(pcie_scale=0.0)
        with pytest.raises(ConfigError):
            ReplicaProfile(vram_scale=-1.0)
        with pytest.raises(ConfigError):
            ReplicaProfile(dollars_per_hour=0.0)
        with pytest.raises(ConfigError):
            ReplicaProfile(name="")

    def test_registry_lookup(self):
        assert get_profile("baseline").is_default
        assert get_profile("spot-small").spot
        with pytest.raises(ConfigError):
            get_profile("h100-imaginary")

    def test_spec_profiles_cycle_and_validate(self):
        fast = get_profile("fast-nvlink")
        slow = get_profile("slow-pcie3")
        spec = ClusterSpec(replicas=5, profiles=(fast, slow))
        assert spec.profile_for(0) is fast
        assert spec.profile_for(1) is slow
        assert spec.profile_for(4) is fast
        # Without profiles every replica is the baseline.
        bare = ClusterSpec(replicas=2)
        assert bare.profile_for(1).is_default
        with pytest.raises(ConfigError):
            ClusterSpec(replicas=2, profiles=())
        with pytest.raises(ConfigError):
            ClusterSpec(replicas=2, placement="telepathic")
        with pytest.raises(ConfigError):
            AutoscalerConfig(ttft_good_seconds=0.0)


class _FakeReplica:
    """Just enough replica surface for autoscaler/router unit tests."""

    def __init__(self, replica_id, profile, tokens=0.0, engine=None):
        self.replica_id = replica_id
        self.profile = profile
        self._tokens = tokens
        self.engine = engine

    def outstanding_tokens(self, now):
        return self._tokens


class TestPriceAwareDrain:
    def _scaler(self):
        return Autoscaler(
            AutoscalerConfig(price_aware=True, ttft_good_seconds=1.0)
        )

    def test_drains_worst_slo_per_dollar(self):
        scaler = self._scaler()
        expensive = _FakeReplica(
            0, ReplicaProfile(name="big", dollars_per_hour=4.0)
        )
        cheap = _FakeReplica(
            1, ReplicaProfile(name="small", dollars_per_hour=0.5)
        )
        # The expensive box misses the TTFT target, the cheap one hits it:
        # worst goodness-per-dollar goes first.
        scaler.observe_ttft(2.0, replica_id=0)
        scaler.observe_ttft(3.0, replica_id=0)
        scaler.observe_ttft(0.4, replica_id=1)
        assert scaler.pick_drain_target(0.0, [expensive, cheap]) is expensive

    def test_unobserved_replica_gets_optimistic_prior(self):
        scaler = self._scaler()
        observed = _FakeReplica(
            0, ReplicaProfile(name="cheap", dollars_per_hour=0.5)
        )
        fresh = _FakeReplica(
            1, ReplicaProfile(name="pricey", dollars_per_hour=2.0)
        )
        scaler.observe_ttft(0.5, replica_id=0)
        # observed: 1.0/0.5 = 2.0; fresh prior: 1.0/2.0 = 0.5 — the
        # fresh-but-expensive box drains, not the proven cheap one.
        assert scaler.pick_drain_target(0.0, [observed, fresh]) is fresh

    def test_spot_breaks_ties_first(self):
        scaler = self._scaler()
        on_demand = _FakeReplica(0, ReplicaProfile(name="od"))
        spot = _FakeReplica(
            1, ReplicaProfile(name="spot", spot=True)
        )
        # Equal prices, both unobserved: the spot box is the capacity
        # you planned to give back.
        assert scaler.pick_drain_target(0.0, [on_demand, spot]) is spot

    def test_legacy_policy_drains_least_loaded(self):
        scaler = Autoscaler(AutoscalerConfig())
        busy = _FakeReplica(0, ReplicaProfile(), tokens=50.0)
        idle = _FakeReplica(1, ReplicaProfile(), tokens=0.0)
        assert scaler.pick_drain_target(0.0, [busy, idle]) is idle


class _FakePool:
    def __init__(self, resident):
        self.hardware = DEFAULT_HARDWARE
        self.model = tiny_test_model()
        self._resident = set(resident)

    def ready_flags(self, experts, now):
        return [e in self._resident for e in experts]


def _replica_with_pool(replica_id, resident, tokens=0.0):
    engine = SimpleNamespace(pool=_FakePool(resident))
    return _FakeReplica(
        replica_id, ReplicaProfile(), tokens=tokens, engine=engine
    )


class TestCostAwareRouter:
    DEMAND = {5: (ExpertId(0, 1), ExpertId(1, 2))}

    def test_resident_replica_wins(self):
        router = make_router("cost-aware", demand=self.DEMAND)
        warm = _replica_with_pool(0, self.DEMAND[5])
        cold = _replica_with_pool(1, ())
        decision = router.select(
            SimpleNamespace(cluster=5), None, [warm, cold], now=0.0
        )
        assert decision.replica is warm
        assert decision.reason == "cost-aware"
        assert router.cost_decisions == 1
        assert router.fallback_decisions == 0

    def test_queue_wait_can_outweigh_stall(self):
        router = make_router("cost-aware", demand=self.DEMAND)
        # The warm replica is buried in queued tokens; eating the two
        # expert fetches on the idle cold box is cheaper.
        warm = _replica_with_pool(0, self.DEMAND[5], tokens=10_000_000.0)
        cold = _replica_with_pool(1, ())
        decision = router.select(
            SimpleNamespace(cluster=5), None, [warm, cold], now=0.0
        )
        assert decision.replica is cold

    def test_unseen_cluster_falls_back_to_priced_queueing(self):
        router = make_router("cost-aware", demand=self.DEMAND)
        busy = _replica_with_pool(0, (), tokens=100.0)
        idle = _replica_with_pool(1, ())
        decision = router.select(
            SimpleNamespace(cluster=99), None, [busy, idle], now=0.0
        )
        assert decision.replica is idle
        assert decision.reason == "fallback"
        assert router.fallback_decisions == 1

    def test_make_router_ignores_demand_for_legacy_routers(self):
        router = make_router("round-robin", demand=self.DEMAND)
        assert router.name == "round-robin"


class TestFleetReportSection:
    def test_fleet_section_shape_and_prices(self):
        world = tiny_world()
        spec = fleet_spec(
            "mixed-bandwidth", router="cost-aware", placement="cost-aware"
        )
        report = run_cluster(
            world, "fmoe", spec, requests=arrival_trace(world, n=6)
        )
        payload = json.loads(cluster_report_to_json(report))
        fleet = payload["fleet"]
        assert fleet["placement"] == "cost-aware"
        assert fleet["placement_cost"] <= fleet["placement_seed_cost"]
        assert [r["profile"] for r in fleet["profiles"]] == [
            "fast-nvlink",
            "baseline",
            "slow-pcie3",
        ]
        assert fleet["dollars_per_hour"] == pytest.approx(
            sum(p.dollars_per_hour for p in spec.profiles)
        )
        assert len(fleet["residency_sizes"]) == 3
        assert all(r["preloaded"] > 0 for r in fleet["profiles"])
        # SLO-per-dollar divides attainment by the fleet price; a lax
        # deadline makes attainment 1.0 exactly.
        lax = 1e9
        assert report.slo_attainment(lax) == 1.0
        assert report.slo_per_dollar(lax) == pytest.approx(
            1.0 / fleet["dollars_per_hour"]
        )

    def test_legacy_report_has_no_fleet_key(self):
        world = tiny_world()
        report = run_cluster(
            world,
            "fmoe",
            ClusterSpec(replicas=2),
            requests=arrival_trace(world, n=4),
        )
        assert report.fleet is None
        assert report.slo_per_dollar(1e9) == 0.0
        assert "fleet" not in json.loads(cluster_report_to_json(report))
