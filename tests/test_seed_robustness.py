"""Seed robustness: the headline ordering is not a one-seed artifact."""

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    build_world,
    run_system,
)


@pytest.mark.parametrize("seed", [7, 2026])
def test_fmoe_beats_moe_infinity_across_seeds(seed):
    world = build_world(
        ExperimentConfig(num_requests=24, num_test_requests=4, seed=seed)
    )
    fmoe = run_system(world, "fmoe")
    moe_infinity = run_system(world, "moe-infinity")
    assert fmoe.mean_tpot() < moe_infinity.mean_tpot()
    assert fmoe.hit_rate > moe_infinity.hit_rate


@pytest.mark.parametrize("seed", [7, 2026])
def test_fmoe_beats_speculation_across_seeds(seed):
    world = build_world(
        ExperimentConfig(num_requests=24, num_test_requests=4, seed=seed)
    )
    fmoe = run_system(world, "fmoe")
    mixtral_offloading = run_system(world, "mixtral-offloading")
    assert fmoe.mean_tpot() < mixtral_offloading.mean_tpot()
    assert fmoe.mean_ttft() < mixtral_offloading.mean_ttft()
