"""Tests for per-layer hit accounting."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.metrics import ServingReport


class TestLayerHitRates:
    def test_rates_computed_per_layer(self):
        report = ServingReport()
        report.layer_hits.update({0: 3, 1: 1})
        report.layer_misses.update({0: 1, 1: 3})
        rates = report.layer_hit_rates(3)
        assert rates[0] == pytest.approx(0.75)
        assert rates[1] == pytest.approx(0.25)
        assert np.isnan(rates[2])

    def test_validation(self):
        with pytest.raises(ConfigError):
            ServingReport().layer_hit_rates(0)

    def test_engine_populates_all_layers(
        self, tiny_model, tiny_world, small_hardware
    ):
        from repro.core.policy import FMoEPolicy
        from repro.serving.engine import ServingEngine

        _, traces, test = tiny_world
        policy = FMoEPolicy(prefetch_distance=2)
        engine = ServingEngine(
            tiny_model,
            policy,
            cache_budget_bytes=12 * tiny_model.config.expert_bytes,
            hardware=small_hardware,
        )
        policy.warm(traces)
        report = engine.run(test[:2])
        rates = report.layer_hit_rates(tiny_model.config.num_layers)
        assert not np.isnan(rates).any()
        total = sum(report.layer_hits.values()) + sum(
            report.layer_misses.values()
        )
        assert total == report.activations
