"""Tests for the Azure-shaped online trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.azure import AzureTraceConfig, make_azure_trace


class TestAzureTrace:
    def test_sorted_arrivals_from_zero(self):
        trace = make_azure_trace(AzureTraceConfig(num_requests=32), seed=0)
        arrivals = [r.arrival_time for r in trace]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_request_count(self):
        trace = make_azure_trace(AzureTraceConfig(num_requests=64), seed=1)
        assert len(trace) == 64

    def test_mean_interarrival_approximate(self):
        config = AzureTraceConfig(
            num_requests=400, mean_interarrival_seconds=2.0
        )
        trace = make_azure_trace(config, seed=2)
        gaps = np.diff([r.arrival_time for r in trace])
        assert np.mean(gaps) == pytest.approx(2.0, rel=0.3)

    def test_burstiness(self):
        bursty = make_azure_trace(
            AzureTraceConfig(num_requests=400, burstiness_cv=3.0), seed=3
        )
        smooth = make_azure_trace(
            AzureTraceConfig(num_requests=400, burstiness_cv=0.3), seed=3
        )
        cv = lambda xs: np.std(xs) / np.mean(xs)
        bursty_gaps = np.diff([r.arrival_time for r in bursty])
        smooth_gaps = np.diff([r.arrival_time for r in smooth])
        assert cv(bursty_gaps) > cv(smooth_gaps) * 2

    def test_deterministic(self):
        a = make_azure_trace(seed=9)
        b = make_azure_trace(seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigError):
            AzureTraceConfig(num_requests=0).validate()
        with pytest.raises(ConfigError):
            AzureTraceConfig(mean_interarrival_seconds=0).validate()
        with pytest.raises(ConfigError):
            AzureTraceConfig(burstiness_cv=0).validate()
