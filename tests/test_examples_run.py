"""Every example script must run end-to-end at reduced scale."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestExamples:
    def test_offline_comparison(self):
        result = run_example(
            "offline_comparison.py",
            "--requests", "10",
            "--test-requests", "1",
        )
        assert result.returncode == 0, result.stderr
        assert "fMoE relative to each baseline" in result.stdout

    def test_online_azure_replay(self):
        result = run_example(
            "online_azure_replay.py", "--requests", "4"
        )
        assert result.returncode == 0, result.stderr
        assert "p50" in result.stdout

    def test_custom_policy(self):
        result = run_example("custom_policy.py")
        assert result.returncode == 0, result.stderr
        assert "sticky-topk" in result.stdout
        assert "oracle" in result.stdout

    def test_miss_analysis(self):
        result = run_example(
            "miss_analysis.py", "--requests", "10", "--budget-gb", "10"
        )
        assert result.returncode == 0, result.stderr
        assert "miss causes" in result.stdout

    def test_capacity_planning(self):
        result = run_example("capacity_planning.py", "--requests", "10")
        assert result.returncode == 0, result.stderr
        assert "fleet ceiling" in result.stdout

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "expert hit rate" in result.stdout

    def test_chaos_replay(self):
        result = run_example("chaos_replay.py", "--requests", "10")
        assert result.returncode == 0, result.stderr
        assert "degraded_tokens" in result.stdout
        assert "replay identical: True" in result.stdout

    def test_cluster_demo(self):
        result = run_example(
            "cluster_demo.py", "--requests", "8", "--replicas", "2"
        )
        assert result.returncode == 0, result.stderr
        assert "semantic-affinity" in result.stdout
        assert "affinity routing hit-rate delta" in result.stdout

    def test_resilience_demo(self):
        result = run_example(
            "resilience_demo.py",
            "--requests", "10",
            "--replicas", "2",
            "--crash-time", "4",
        )
        assert result.returncode == 0, result.stderr
        assert "resilience off" in result.stdout
        assert "resilience on" in result.stdout
        assert "restart: replica" in result.stdout
        assert "re-warmed" in result.stdout

    def test_trace_a_run(self, tmp_path):
        result = run_example(
            "trace_a_run.py",
            "--requests", "8",
            "--test-requests", "1",
            "--out-dir", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "stall attribution" in result.stdout
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "metrics.prom").exists()
