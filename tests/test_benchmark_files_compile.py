"""Guard against bitrot: every bench file must at least compile, and every
experiment module must import cleanly."""

import importlib
import py_compile
from pathlib import Path

import pytest

BENCHMARKS = sorted(
    (Path(__file__).parent.parent / "benchmarks").glob("*.py")
)

EXPERIMENT_MODULES = [
    "repro.experiments.table1",
    "repro.experiments.overview",
    "repro.experiments.entropy_motivation",
    "repro.experiments.prefetch_distance",
    "repro.experiments.pearson",
    "repro.experiments.overall",
    "repro.experiments.online",
    "repro.experiments.cache_limits",
    "repro.experiments.ablation",
    "repro.experiments.sensitivity",
    "repro.experiments.overheads",
    "repro.experiments.scaling",
    "repro.experiments.heterogeneity",
    "repro.experiments.grid",
    "repro.experiments.report",
]


@pytest.mark.parametrize("path", BENCHMARKS, ids=lambda p: p.name)
def test_benchmark_file_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("module", EXPERIMENT_MODULES)
def test_experiment_module_imports(module):
    importlib.import_module(module)


def test_every_paper_artifact_has_a_bench():
    """DESIGN.md's experiment index must be fully backed by bench files."""
    names = {p.stem for p in BENCHMARKS}
    required = {
        "test_table1_models",
        "test_fig1b_tradeoff",
        "test_fig3a_heatmaps",
        "test_fig3b_entropy",
        "test_fig3c_entropy_iters",
        "test_fig4_hitrate_distance",
        "test_fig8_pearson",
        "test_fig9_overall",
        "test_fig10_online_cdf",
        "test_fig11_cache_limits",
        "test_fig12a_ablation_tracking",
        "test_fig12b_ablation_caching",
        "test_fig13_prefetch_distance",
        "test_fig14a_store_capacity",
        "test_fig14b_batch_size",
        "test_fig15_latency_breakdown",
        "test_fig16_store_memory",
    }
    missing = required - names
    assert not missing, missing
