"""Golden cluster trace: lane structure and span nesting of one run.

A tiny seeded cluster run is exported to Chrome trace-event JSON and the
structure is asserted: the cluster lane carries one enclosing span plus a
route instant per dispatched request, each replica lane carries the serve
spans of exactly the requests routed to it, and every serve span nests
inside the cluster span's bounds.
"""

from __future__ import annotations

from repro.cluster import ClusterSpec, run_cluster
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import CLUSTER_LANE, Tracer, replica_lane

from tests._cluster_testkit import arrival_trace, tiny_world


def _run_traced(tracer, metrics=None, replicas=2):
    world = tiny_world()
    trace = arrival_trace(world, n=6, gap=0.4)
    report = run_cluster(
        world,
        "fmoe",
        ClusterSpec(replicas=replicas, router="round-robin"),
        requests=trace,
        tracer=tracer,
        metrics=metrics,
    )
    return report, trace


class TestClusterTraceStructure:
    def test_lane_names_and_metadata(self):
        tracer = Tracer()
        _run_traced(tracer, replicas=2)
        chrome = tracer.to_chrome()
        names = {
            e["tid"]: e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert names[CLUSTER_LANE] == "cluster"
        assert names[replica_lane(0)] == "replica 0"
        assert names[replica_lane(1)] == "replica 1"

    def test_cluster_span_encloses_all_serve_spans(self):
        tracer = Tracer()
        report, _ = _run_traced(tracer)
        cluster_spans = [
            s for s in tracer.spans if s.tid == CLUSTER_LANE
        ]
        assert len(cluster_spans) == 1
        enclosing = cluster_spans[0]
        assert enclosing.name == "cluster"
        serve_spans = [
            s
            for s in tracer.spans
            if s.tid in (replica_lane(0), replica_lane(1))
        ]
        assert len(serve_spans) == len(report.aggregate.requests)
        for span in serve_spans:
            assert enclosing.start <= span.start
            assert span.end <= enclosing.end

    def test_one_route_instant_per_request(self):
        tracer = Tracer()
        report, trace = _run_traced(tracer)
        routes = [
            i
            for i in tracer.instants
            if i.tid == CLUSTER_LANE and i.name == "route"
        ]
        assert len(routes) == report.routed == len(trace)
        # Round-robin alternates replicas 0, 1, 0, 1, ...
        assert [r.args["replica"] for r in routes] == [
            i % 2 for i in range(len(trace))
        ]
        # Instants land at the dispatch times, in arrival order.
        assert [r.ts for r in routes] == sorted(
            r.arrival_time for r in trace
        )

    def test_serve_spans_match_per_replica_assignment(self):
        tracer = Tracer()
        report, _ = _run_traced(tracer)
        for summary in report.replicas:
            spans = [
                s
                for s in tracer.spans
                if s.tid == replica_lane(summary.replica_id)
            ]
            assert len(spans) == summary.served

    def test_strict_export_has_no_open_spans(self):
        tracer = Tracer()
        _run_traced(tracer)
        chrome = tracer.to_chrome(strict=True)
        assert any(
            e.get("ph") == "X" for e in chrome["traceEvents"]
        )


class TestClusterMetricsRegistry:
    def test_routing_counters_and_replica_gauge(self):
        registry = MetricsRegistry()
        report, _ = _run_traced(Tracer(), metrics=registry)
        routed = registry.counter("repro_cluster_routed_total")
        total = sum(
            routed.value(**dict(key))
            for key in routed.label_keys()
        )
        assert total == report.routed
        gauge = registry.gauge("repro_cluster_replicas")
        assert gauge.value() == report.final_replicas
