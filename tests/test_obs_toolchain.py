"""End-to-end tests of the trace toolchain: telemetry, CLI, trace files.

These cover the contract the ``repro trace`` / ``repro inspect`` pair must
keep: a traced run writes a valid Chrome trace plus Prometheus metrics,
``inspect`` summarizes it, and — critically — attaching telemetry never
changes the simulated latency results.
"""

import json

import pytest

from repro.cli import main
from repro.core.policy import FMoEPolicy
from repro.moe.model import MoEModel
from repro.obs.inspect import inspect_path, load_trace_events
from repro.obs.sinks import RingBufferSink
from repro.obs.telemetry import Telemetry
from repro.serving.engine import ServingEngine
from repro.serving.events import EventKind


def run_tiny(tiny_config, tiny_world, small_hardware, telemetry=None):
    _, traces, test = tiny_world
    policy = FMoEPolicy(prefetch_distance=2)
    engine = ServingEngine(
        MoEModel(tiny_config, seed=0),
        policy,
        cache_budget_bytes=8 * tiny_config.expert_bytes,
        hardware=small_hardware,
    )
    if telemetry is not None:
        engine.set_telemetry(telemetry)
    policy.warm(traces)
    report = engine.run(test[:2])
    if telemetry is not None:
        telemetry.finalize(engine.now)
    return report


class TestTelemetryNeutrality:
    def test_results_identical_with_and_without_telemetry(
        self, tiny_config, tiny_world, small_hardware
    ):
        """Telemetry observes through the virtual clock; it must never
        perturb what the simulation computes."""
        plain = run_tiny(tiny_config, tiny_world, small_hardware)
        telemetry = Telemetry(sink=RingBufferSink())
        traced = run_tiny(
            tiny_config, tiny_world, small_hardware, telemetry=telemetry
        )
        assert traced.iterations == plain.iterations
        assert traced.hits == plain.hits
        assert traced.misses == plain.misses
        assert [r.ttft for r in traced.requests] == [
            r.ttft for r in plain.requests
        ]
        assert [r.decode_latencies for r in traced.requests] == [
            r.decode_latencies for r in plain.requests
        ]


class TestTelemetryIntegration:
    @pytest.fixture
    def traced(self, tiny_config, tiny_world, small_hardware):
        telemetry = Telemetry(sink=RingBufferSink())
        report = run_tiny(
            tiny_config, tiny_world, small_hardware, telemetry=telemetry
        )
        return telemetry, report, tiny_config

    def test_span_counts_match_report(self, traced):
        telemetry, report, config = traced
        by_cat = {}
        for span in telemetry.tracer.spans:
            by_cat.setdefault(span.category, []).append(span)
        assert len(by_cat["iteration"]) == report.iterations
        assert len(by_cat["layer"]) == report.iterations * config.num_layers
        assert len(by_cat["expert"]) == report.hits + report.misses
        assert len(by_cat["request"]) == len(report.requests)

    def test_expert_spans_inside_iterations(self, traced):
        telemetry, _, _ = traced
        iterations = [
            s for s in telemetry.tracer.spans if s.category == "iteration"
        ]
        for span in telemetry.tracer.spans:
            if span.category != "expert":
                continue
            assert any(
                i.start <= span.start and span.end <= i.end
                for i in iterations
            )

    def test_event_counters_derived_centrally(self, traced):
        telemetry, report, _ = traced
        hits = sum(
            telemetry.metrics.counter("repro_expert_hits_total").value(
                layer=str(layer)
            )
            for layer in range(64)
        )
        assert hits == report.hits
        sink = telemetry.sink
        assert len(sink.of_kind(EventKind.ITERATION_START)) <= len(sink)

    def test_transfer_spans_flushed_at_finalize(self, traced):
        telemetry, _, _ = traced
        transfers = [
            s for s in telemetry.tracer.spans if s.category == "transfer"
        ]
        assert transfers, "tiny cache must force transfers"
        for span in transfers:
            assert span.end >= span.start
            assert span.args["bytes"] > 0

    def test_finalize_idempotent(self, traced):
        telemetry, _, _ = traced
        spans_before = len(telemetry.tracer.spans)
        telemetry.finalize(1e9)
        assert len(telemetry.tracer.spans) == spans_before


class TestTraceCli:
    @pytest.fixture(scope="class")
    def trace_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace_out")
        code = main(
            [
                "trace",
                "--policy", "fmoe",
                "--model", "mixtral",  # prefix must resolve to mixtral-8x7b
                "--requests", "10",
                "--test-requests", "1",
                "--out-dir", str(out),
            ]
        )
        assert code == 0
        return out

    def test_outputs_written(self, trace_dir):
        for name in (
            "trace.json",
            "metrics.prom",
            "metrics.jsonl",
            "events.jsonl",
            "report.json",
        ):
            assert (trace_dir / name).exists(), name

    def test_trace_is_valid_chrome_json(self, trace_dir):
        events = load_trace_events(trace_dir / "trace.json")
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            if event["ph"] in ("X", "i"):
                assert event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 0
        stamps = [e["ts"] for e in events if e["ph"] in ("X", "i")]
        assert stamps == sorted(stamps)

    def test_metrics_prometheus_format(self, trace_dir):
        text = (trace_dir / "metrics.prom").read_text()
        assert "# TYPE repro_expert_hits_total counter" in text
        assert "# TYPE repro_iteration_seconds histogram" in text
        assert 'repro_iteration_seconds_bucket{le="+Inf"}' in text

    def test_metrics_series_jsonl(self, trace_dir):
        rows = [
            json.loads(line)
            for line in (trace_dir / "metrics.jsonl").read_text().splitlines()
        ]
        assert rows
        assert all(
            {"metric", "labels", "time", "value"} <= set(r) for r in rows
        )
        assert any(r["metric"] == "repro_cache_used_bytes" for r in rows)

    def test_report_counts_consistent_with_trace(self, trace_dir):
        report = json.loads((trace_dir / "report.json").read_text())
        events = load_trace_events(trace_dir / "trace.json")
        iterations = [
            e
            for e in events
            if e["ph"] == "X" and e.get("cat") == "iteration"
        ]
        assert len(iterations) == report["iterations"]
        assert report["events_dropped"] == 0

    def test_inspect_renders_sections(self, trace_dir, capsys):
        assert main(["inspect", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "slowest iterations" in out
        assert "stall attribution" in out
        assert "per-layer table" in out
        assert "per-device PCIe table" in out
        assert "compute+overheads" in out

    def test_inspect_accepts_trace_file(self, trace_dir):
        text = inspect_path(trace_dir / "trace.json", top=2)
        assert "stall attribution" in text

    def test_inspect_rejects_non_trace(self, tmp_path):
        bad = tmp_path / "not_a_trace.json"
        bad.write_text('{"foo": 1}')
        with pytest.raises(Exception, match="not a Chrome trace"):
            inspect_path(bad)

    def test_ambiguous_model_prefix_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "trace",
                    "--policy", "m",  # mixtral-offloading vs moe-infinity
                    "--out-dir", str(tmp_path),
                ]
            )
