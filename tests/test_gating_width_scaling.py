"""Tests for the wide-layer noise normalization and logit gain."""

import numpy as np
import pytest

from repro.moe.config import tiny_test_model
from repro.moe.gating import SyntheticGate


def gate_for(experts, top_k=2):
    return SyntheticGate(
        tiny_test_model(experts_per_layer=experts, top_k=top_k), seed=0
    )


class TestWidthFactor:
    def test_eight_experts_is_unit(self):
        assert gate_for(8)._width_factor() == pytest.approx(1.0)

    def test_wider_layers_get_less_noise(self):
        assert gate_for(60, top_k=4)._width_factor() < gate_for(
            16
        )._width_factor() < 1.0 + 1e-9

    def test_narrower_layers_get_more(self):
        assert gate_for(4)._width_factor() > 1.0


class TestLogitGain:
    def test_eight_experts_is_unit(self):
        assert gate_for(8)._logit_gain() == pytest.approx(1.0)

    def test_wider_layers_sharper(self):
        assert gate_for(60, top_k=4)._logit_gain() > 1.0

    def test_gain_preserves_activation_choices(self, rng):
        """Scaling all logits must not change which experts win."""
        gate = gate_for(16)
        sample = gate.sample_decode(0, 0, np.random.default_rng(5))
        # Recompute top-k from distributions vs from raw logits.
        for layer in range(gate.config.num_layers):
            from repro.moe.gating import top_k_indices

            from_dist = top_k_indices(sample.distributions[layer], 2)
            from_logits = top_k_indices(sample.logits[layer], 2)
            assert np.array_equal(from_dist, from_logits)


class TestNumPaths:
    def test_at_least_top_k(self):
        assert gate_for(60, top_k=4)._num_paths() >= 4
        assert gate_for(8, top_k=2)._num_paths() >= 2

    def test_path_logits_decay(self):
        gate = gate_for(60, top_k=4)
        heights = [gate._path_logit(r) for r in range(gate._num_paths())]
        assert heights == sorted(heights, reverse=True)
        assert heights[0] == pytest.approx(
            gate.config.routing.peak_logit
        )
        assert heights[1] == pytest.approx(
            gate.config.routing.second_logit
        )
