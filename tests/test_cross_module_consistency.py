"""Cross-module consistency: clocks, breakdowns, and counters agree."""

import pytest

from repro.core.policy import FMoEPolicy
from repro.moe.model import MoEModel
from repro.serving.engine import ServingEngine
from repro.serving.request import Request


@pytest.fixture
def run(tiny_config, tiny_world, small_hardware):
    _, traces, test = tiny_world
    policy = FMoEPolicy(prefetch_distance=2)
    engine = ServingEngine(
        MoEModel(tiny_config, seed=0),
        policy,
        cache_budget_bytes=12 * tiny_config.expert_bytes,
        hardware=small_hardware,
    )
    policy.warm(traces)
    report = engine.run(test[:4])
    return engine, report, policy


class TestClockConsistency:
    def test_engine_clock_matches_last_finish(self, run):
        engine, report, _ = run
        assert engine.now == pytest.approx(
            max(m.finish_time for m in report.requests)
        )

    def test_sync_breakdown_bounded_by_wall_time(self, run):
        engine, report, _ = run
        # Critical-path components can never exceed total virtual time.
        assert report.breakdown.total_sync() <= engine.now + 1e-9

    def test_request_intervals_are_disjoint_in_order(self, run):
        _, report, _ = run
        ordered = sorted(report.requests, key=lambda m: m.start_time)
        for earlier, later in zip(ordered, ordered[1:]):
            # Sequential offline serving: no overlap between requests.
            assert later.start_time >= earlier.finish_time - 1e-9


class TestCounterConsistency:
    def test_pool_stats_vs_report(self, run):
        engine, report, _ = run
        stats = engine.pool.stats
        # Every on-demand load corresponds to a miss (the converse is not
        # true: in-flight stalls are misses without loads).
        assert stats.ondemand_loads <= report.misses
        assert (
            stats.ondemand_loads + report.prefetch_stall_misses
            <= report.misses + stats.ondemand_loads
        )

    def test_layer_counters_sum_to_totals(self, run):
        _, report, _ = run
        assert sum(report.layer_hits.values()) == report.hits
        assert sum(report.layer_misses.values()) == report.misses

    def test_store_growth_matches_iterations(self, run):
        _, report, policy = run
        # Online updates add one map per request per iteration (batch 1)
        # on top of the warmed history, bounded by capacity.
        warm_maps = policy.store.total_added - report.iterations
        assert warm_maps > 0
        assert len(policy.store) == min(
            policy.store.capacity, policy.store.total_added
        )

    def test_channel_bytes_match_transfer_counts(self, run):
        engine, _, _ = run
        config = engine.config
        total_bytes = sum(
            d.channel.bytes_transferred for d in engine.pool.devices
        )
        total_copies = (
            engine.pool.stats.prefetch_issued
            + engine.pool.stats.ondemand_loads
            - engine.pool.stats.prefetch_cancelled
        )
        assert total_bytes == total_copies * config.expert_bytes


class TestBreakdownComposition:
    def test_overheads_present_only_when_configured(
        self, tiny_config, tiny_world, small_hardware
    ):
        from repro.core.overheads import OverheadModel

        _, traces, test = tiny_world
        policy = FMoEPolicy(
            prefetch_distance=2,
            overheads=OverheadModel(
                context_collect_seconds=0.0,
                map_match_base_seconds=0.0,
                map_match_per_record_seconds=0.0,
                map_update_seconds=0.0,
            ),
        )
        engine = ServingEngine(
            MoEModel(tiny_config, seed=0),
            policy,
            cache_budget_bytes=12 * tiny_config.expert_bytes,
            hardware=small_hardware,
        )
        policy.warm(traces)
        report = engine.run(test[:2])
        assert report.breakdown.sync.get("context_collect", 0.0) == 0.0
        assert report.breakdown.asynchronous.get("map_match", 0.0) == 0.0
